#ifndef VELOCE_SERVERLESS_CLUSTER_H_
#define VELOCE_SERVERLESS_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "admission/controller.h"
#include "billing/meter.h"
#include "obs/metrics.h"
#include "obs/obs_context.h"
#include "obs/trace.h"
#include "serverless/autoscaler.h"
#include "serverless/kube_sim.h"
#include "serverless/node_pool.h"
#include "serverless/proxy.h"
#include "sim/sim_executor.h"
#include "tenant/controller.h"

namespace veloce::serverless {

/// Facade wiring the whole Serverless deployment of one region (Fig 4):
/// the shared KV cluster, the tenant control plane, KubeSim, the warm SQL
/// node pool, the proxy, and the autoscaler — all driven by one simulated
/// event loop. Examples and benches build on this.
class ServerlessCluster {
 public:
  struct Options {
    kv::KVClusterOptions kv;
    KubeSim::Options kube;
    SqlNodePool::Options pool;
    Proxy::Options proxy;
    Autoscaler::Options autoscaler;
    /// Proxy connection re-balance cadence (Section 4.2.2). 0 disables the
    /// periodic task (the default here, because a perpetual timer keeps the
    /// sim event queue non-empty; scale events still rebalance eagerly).
    Nanos proxy_rebalance_interval = 0;
    /// Telemetry injection. Null metrics/traces = the cluster owns a
    /// private MetricsRegistry and TraceCollector (see metrics()/traces()).
    /// The resolved context (clock = the sim loop's clock) is threaded into
    /// every layer: KV nodes + engines, SQL nodes, pool, proxy, billing.
    obs::ObsContext obs;
    /// Per-KV-node admission control, attached as a KV batch interceptor
    /// (synchronous AdmitSync path — no background tasks, so loop().Run()
    /// still drains). obs/instance/background_tasks are overridden per node.
    admission::NodeAdmissionController::Options admission;
    bool enable_admission = true;
    /// Master randomness seed. Sub-seeds for every stochastic component
    /// (KubeSim pod jitter, pool stamp jitter, proxy failover jitter) are
    /// derived per stream via common/random.h DeriveSeed, so one seed
    /// reproduces the cluster's whole event trace. Scenario runs
    /// (src/scenario) set this from the scenario seed.
    uint64_t seed = 0xC0FFEE;
  };

  ServerlessCluster() : ServerlessCluster(Options()) {}
  explicit ServerlessCluster(Options options);

  sim::EventLoop* loop() { return &loop_; }

  // --- observability -------------------------------------------------------
  /// The shared registry every layer registers into (never null).
  obs::MetricsRegistry* metrics() { return obs_.metrics; }
  /// The shared request-trace ring buffer (never null).
  obs::TraceCollector* traces() { return obs_.traces; }
  /// The resolved telemetry context (sim clock + registry + collector);
  /// hand this to workloads/benches running against the cluster.
  const obs::ObsContext& obs() const { return obs_; }

  // --- admission -----------------------------------------------------------
  /// The admission controller guarding KV node `id` (null when admission is
  /// disabled or the node was added after construction).
  admission::NodeAdmissionController* admission(kv::NodeId id) {
    auto it = admission_.find(id);
    return it == admission_.end() ? nullptr : it->second.get();
  }
  /// Feeds every node's fresh engine counters into its write token bucket
  /// (the paper's 15 s stats cadence, pull-based here so the sim event
  /// queue can drain).
  void CalibrateAdmission();

  kv::KVCluster* kv_cluster() { return kv_.get(); }
  tenant::TenantController* tenants() { return controller_.get(); }
  tenant::AuthorizedKvService* kv_service() { return service_.get(); }
  KubeSim* kube() { return &kube_; }
  SqlNodePool* pool() { return pool_.get(); }
  Proxy* proxy() { return proxy_.get(); }
  Autoscaler* autoscaler() { return autoscaler_.get(); }

  /// Creates a virtual cluster and registers it with the autoscaler.
  StatusOr<tenant::TenantMetadata> CreateTenant(const std::string& name);

  /// Synchronous convenience: connects through the proxy and runs the sim
  /// loop until the connection (incl. any cold start) completes.
  StatusOr<Proxy::Connection*> ConnectSync(kv::TenantId tenant,
                                           const std::string& client_ip = "10.0.0.1");

  // --- fault hooks (docs/ROBUSTNESS.md) ------------------------------------
  /// Synchronous convenience around Proxy::ExecuteWithFailover: runs the sim
  /// loop until the statement (incl. any failover backoff + node reacquire)
  /// completes. Pass idempotent=false for statements unsafe to replay.
  StatusOr<sql::ResultSet> ExecuteSync(Proxy::Connection* conn,
                                       const std::string& sql,
                                       bool idempotent = true);
  /// Abruptly kills the SQL node's pod mid-workload (fault injection). The
  /// proxy's connections on it fail over on their next ExecuteWithFailover.
  void KillSqlNode(sql::SqlNode* node) { pool_->KillNode(node); }
  /// Simulated KV node crash-restart: tears the node's engine down without
  /// flushing and reopens it against the same Env, recovering state from
  /// the WALs. Acked (synced) writes must survive.
  Status CrashAndRestartKvNode(kv::NodeId id);

  /// Reports the tenant's current SQL CPU usage to the autoscaler's scrape
  /// path. Benches inject synthetic load curves here.
  void SetTenantCpuUsage(kv::TenantId tenant, double vcpus) {
    cpu_usage_[tenant] = vcpus;
  }

  // --- billing -------------------------------------------------------------
  billing::TenantMeter* meter() { return &meter_; }
  /// Scrapes every ready SQL node's feature counters and measured SQL CPU
  /// into the meter (resets the node-local counters).
  void HarvestUsage();
  /// Convenience: harvest, then the tenant's usage in the open interval.
  billing::UsageReport TenantUsage(kv::TenantId tenant) {
    HarvestUsage();
    return meter_.Current(tenant);
  }

 private:
  Options options_;
  sim::EventLoop loop_;
  // Telemetry plumbing: declared before (so destroyed after) every
  // component that registers series or collect callbacks against it.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  std::unique_ptr<obs::TraceCollector> owned_traces_;
  obs::ObsContext obs_;  // resolved: sim clock + registry + collector
  /// Deterministic background flush/compaction for every KV engine: work
  /// runs as discrete events on loop_. Declared before kv_ so engines are
  /// destroyed first.
  std::unique_ptr<sim::SimExecutor> storage_executor_;
  std::unique_ptr<kv::KVCluster> kv_;
  tenant::CertificateAuthority ca_;
  std::unique_ptr<tenant::TenantController> controller_;
  std::unique_ptr<tenant::AuthorizedKvService> service_;
  KubeSim kube_;
  std::unique_ptr<SqlNodePool> pool_;
  std::unique_ptr<Proxy> proxy_;
  std::unique_ptr<Autoscaler> autoscaler_;
  billing::TenantMeter meter_;
  /// One simulated CPU + admission controller per KV node (Section 5.1),
  /// attached via the KV batch interceptor.
  std::vector<std::unique_ptr<sim::VirtualCpu>> admission_cpus_;
  std::map<kv::NodeId, std::unique_ptr<admission::NodeAdmissionController>> admission_;
  std::unique_ptr<sim::PeriodicTask> rebalancer_;
  std::map<kv::TenantId, double> cpu_usage_;
  std::map<uint64_t, Nanos> harvested_sql_cpu_;  // node id -> already-billed
};

}  // namespace veloce::serverless

#endif  // VELOCE_SERVERLESS_CLUSTER_H_
