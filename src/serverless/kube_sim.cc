#include "serverless/kube_sim.h"

namespace veloce::serverless {

Nanos KubeSim::Jittered(Nanos base) {
  if (options_.latency_jitter <= 0) return base;
  return base + static_cast<Nanos>(
                    rng_.Uniform(static_cast<uint64_t>(options_.latency_jitter)));
}

void KubeSim::CreatePod(std::function<void(PodId)> on_ready) {
  const PodId id = next_pod_id_++;
  pods_[id] = Pod{id, /*vm=*/(id - 1) / static_cast<uint64_t>(options_.pods_per_vm),
                  /*process_running=*/false};
  loop_->Schedule(Jittered(options_.pod_create_latency),
                  [id, cb = std::move(on_ready)] { cb(id); });
}

void KubeSim::StartProcess(PodId pod, std::function<void()> on_started) {
  loop_->Schedule(Jittered(options_.process_start_latency), [this, pod, cb = std::move(on_started)] {
    auto it = pods_.find(pod);
    if (it != pods_.end()) it->second.process_running = true;
    cb();
  });
}

void KubeSim::DeletePod(PodId pod) { pods_.erase(pod); }

void KubeSim::KillPod(PodId pod) {
  auto it = pods_.find(pod);
  if (it == pods_.end()) return;
  pods_.erase(it);
  if (failure_listener_) failure_listener_(pod);
}

bool KubeSim::ProcessRunning(PodId pod) const {
  auto it = pods_.find(pod);
  return it != pods_.end() && it->second.process_running;
}

}  // namespace veloce::serverless
