#include "serverless/node_pool.h"

#include "common/logging.h"

namespace veloce::serverless {

SqlNodePool::SqlNodePool(sim::EventLoop* loop, KubeSim* kube,
                         tenant::AuthorizedKvService* service,
                         kv::KVCluster* cluster, tenant::TenantController* controller,
                         Options options)
    : loop_(loop),
      kube_(kube),
      service_(service),
      cluster_(cluster),
      controller_(controller),
      options_(options),
      rng_(options.seed) {
  InitMetrics();
  kube_->SetPodFailureListener([this](PodId pod) { OnPodFailure(pod); });
  Replenish();
}

void SqlNodePool::InitMetrics() {
  metrics_ = options_.obs.metrics;
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  pod_starts_c_ = metrics_->counter("veloce_serverless_pod_starts_total");
  node_failures_c_ = metrics_->counter("veloce_serverless_node_failures_total");
  acquire_drain_c_ =
      metrics_->counter("veloce_serverless_acquires_total", {{"path", "drain"}});
  acquire_warm_c_ =
      metrics_->counter("veloce_serverless_acquires_total", {{"path", "warm"}});
  acquire_cold_c_ =
      metrics_->counter("veloce_serverless_acquires_total", {{"path", "cold"}});
  acquire_warm_h_ =
      metrics_->histogram("veloce_serverless_acquire_ns", {{"path", "warm"}});
  acquire_cold_h_ =
      metrics_->histogram("veloce_serverless_acquire_ns", {{"path", "cold"}});
  stage_pod_create_h_ = metrics_->histogram("veloce_serverless_cold_start_stage_ns",
                                            {{"stage", "pod_create"}});
  stage_process_start_h_ = metrics_->histogram(
      "veloce_serverless_cold_start_stage_ns", {{"stage", "process_start"}});
  stage_stamp_h_ = metrics_->histogram("veloce_serverless_cold_start_stage_ns",
                                       {{"stage", "stamp"}});
  gauge_cb_ = metrics_->AddCollectCallback([this] {
    metrics_->gauge("veloce_serverless_warm_available")
        ->Set(static_cast<double>(warm_.size()));
    metrics_->gauge("veloce_serverless_ready_nodes")
        ->Set(static_cast<double>(num_ready_nodes()));
    metrics_->gauge("veloce_serverless_active_nodes")
        ->Set(static_cast<double>(active_.size()));
    // Connections (sessions) per SQL node — the proxy's balancing signal.
    for (const auto& [node, managed] : active_) {
      metrics_
          ->gauge("veloce_serverless_node_sessions",
                  {{"sql_node", std::to_string(node->id())}})
          ->Set(static_cast<double>(node->num_sessions()));
    }
  });
}

void SqlNodePool::Replenish() {
  while (warm_.size() + static_cast<size_t>(replenish_inflight_) <
         options_.warm_pool_target) {
    ++replenish_inflight_;
    pod_starts_c_->Inc();
    kube_->CreatePod([this](PodId pod) {
      auto finish = [this, pod]() {
        auto managed = std::make_unique<ManagedNode>();
        managed->pod = pod;
        managed->node = std::make_unique<sql::SqlNode>(
            next_node_id_++, options_.node_options, loop_->clock());
        if (options_.prewarm_process) {
          // Optimized flow: the process boots *before* a tenant is known.
          VELOCE_CHECK_OK(managed->node->StartProcess());
        }
        warm_.push_back(std::move(managed));
        --replenish_inflight_;
      };
      if (options_.prewarm_process) {
        kube_->StartProcess(pod, finish);
      } else {
        finish();
      }
    });
  }
}

Nanos SqlNodePool::StampLatency() {
  Nanos latency = options_.stamp_latency;
  if (options_.stamp_jitter > 0) {
    latency += static_cast<Nanos>(
        rng_.Uniform(static_cast<uint64_t>(options_.stamp_jitter)));
  }
  return latency;
}

void SqlNodePool::Acquire(kv::TenantId tenant,
                          std::function<void(StatusOr<sql::SqlNode*>)> on_ready) {
  // (1) Un-drain a draining node of this tenant.
  for (auto& [node, managed] : active_) {
    if (managed->draining && node->tenant_id() == tenant &&
        node->state() == sql::SqlNode::State::kDraining) {
      managed->draining = false;
      node->Undrain();
      acquire_drain_c_->Inc();
      loop_->Schedule(0, [node = node, cb = std::move(on_ready)]() mutable { cb(node); });
      return;
    }
  }

  // (2) Pre-warmed node.
  if (!warm_.empty()) {
    acquire_warm_c_->Inc();
    const Nanos t0 = loop_->Now();
    std::unique_ptr<ManagedNode> managed = std::move(warm_.front());
    warm_.pop_front();
    Replenish();
    ManagedNode* raw = managed.get();
    sql::SqlNode* node = raw->node.get();
    active_[node] = std::move(managed);
    if (options_.prewarm_process) {
      // Certificate write + fs watch + KV init.
      loop_->Schedule(StampLatency(), [this, raw, tenant, t0,
                                               cb = std::move(on_ready)]() mutable {
        stage_stamp_h_->Record(loop_->Now() - t0);
        acquire_warm_h_->Record(loop_->Now() - t0);
        FinishStamp(raw, tenant, std::move(cb));
      });
    } else {
      // Unoptimized: boot the process now, plus the TCP-reset retry
      // penalty (the proxy's connection attempts bounce until the
      // listener opens, roughly doubling observed startup).
      const Nanos penalty = kube_->options().process_start_latency;
      kube_->StartProcess(raw->pod, [this, raw, tenant, penalty, t0,
                                     cb = std::move(on_ready)]() mutable {
        VELOCE_CHECK_OK(raw->node->StartProcess());
        stage_process_start_h_->Record(loop_->Now() - t0);
        const Nanos t_proc = loop_->Now();
        loop_->Schedule(penalty + StampLatency(),
                        [this, raw, tenant, t0, t_proc, cb = std::move(cb)]() mutable {
                          stage_stamp_h_->Record(loop_->Now() - t_proc);
                          acquire_warm_h_->Record(loop_->Now() - t0);
                          FinishStamp(raw, tenant, std::move(cb));
                        });
      });
    }
    return;
  }

  // (3) Pool empty: create a cold pod end to end.
  acquire_cold_c_->Inc();
  pod_starts_c_->Inc();
  const Nanos t0 = loop_->Now();
  kube_->CreatePod([this, tenant, t0, cb = std::move(on_ready)](PodId pod) mutable {
    stage_pod_create_h_->Record(loop_->Now() - t0);
    const Nanos t_pod = loop_->Now();
    kube_->StartProcess(pod, [this, pod, tenant, t0, t_pod,
                              cb = std::move(cb)]() mutable {
      stage_process_start_h_->Record(loop_->Now() - t_pod);
      auto managed = std::make_unique<ManagedNode>();
      managed->pod = pod;
      managed->node = std::make_unique<sql::SqlNode>(next_node_id_++,
                                                     options_.node_options,
                                                     loop_->clock());
      VELOCE_CHECK_OK(managed->node->StartProcess());
      ManagedNode* raw = managed.get();
      active_[raw->node.get()] = std::move(managed);
      const Nanos t_proc = loop_->Now();
      loop_->Schedule(StampLatency(),
                      [this, raw, tenant, t0, t_proc, cb = std::move(cb)]() mutable {
                        stage_stamp_h_->Record(loop_->Now() - t_proc);
                        acquire_cold_h_->Record(loop_->Now() - t0);
                        FinishStamp(raw, tenant, std::move(cb));
                      });
    });
  });
}

void SqlNodePool::FinishStamp(ManagedNode* managed, kv::TenantId tenant,
                              std::function<void(StatusOr<sql::SqlNode*>)> on_ready) {
  auto cert_or = controller_->IssueCert(tenant);
  if (!cert_or.ok()) {
    on_ready(cert_or.status());
    return;
  }
  Status s = managed->node->StampTenant(service_, cluster_, *cert_or);
  if (!s.ok()) {
    on_ready(s);
    return;
  }
  on_ready(managed->node.get());
}

void SqlNodePool::StartDraining(sql::SqlNode* node) {
  auto it = active_.find(node);
  if (it == active_.end()) return;
  it->second->draining = true;
  it->second->drain_started = loop_->Now();
  node->StartDraining();
  // Poll until sessions are gone or the drain timeout passes; a reused
  // (un-drained) or removed node cancels the poll implicitly.
  const Nanos deadline = loop_->Now() + options_.drain_timeout;
  loop_->Schedule(10 * kSecond, [this, node, deadline] { DrainPoll(node, deadline); });
}

void SqlNodePool::DrainPoll(sql::SqlNode* node, Nanos deadline) {
  auto it = active_.find(node);
  if (it == active_.end() || !it->second->draining) return;
  if (node->num_sessions() == 0 || loop_->Now() >= deadline) {
    Remove(node);
    return;
  }
  loop_->Schedule(10 * kSecond, [this, node, deadline] { DrainPoll(node, deadline); });
}

void SqlNodePool::KillNode(sql::SqlNode* node) {
  auto it = active_.find(node);
  if (it == active_.end()) return;
  kube_->KillPod(it->second->pod);  // fires OnPodFailure synchronously
}

void SqlNodePool::OnPodFailure(PodId pod) {
  // A warm (tenant-less) node dying is just pool shrinkage; replenish.
  for (auto it = warm_.begin(); it != warm_.end(); ++it) {
    if ((*it)->pod == pod) {
      node_failures_c_->Inc();
      (*it)->node->Stop();
      graveyard_.push_back(std::move(*it));
      warm_.erase(it);
      Replenish();
      return;
    }
  }
  for (auto it = active_.begin(); it != active_.end(); ++it) {
    if (it->second->pod != pod) continue;
    node_failures_c_->Inc();
    sql::SqlNode* node = it->first;
    VLOG_WARN << "serverless: SQL node " << node->id() << " (pod " << pod
              << ") died";
    node->Stop();  // sessions are gone; state -> kStopped
    // Keep the dead node's memory alive: proxy connections still hold raw
    // SqlNode* and will inspect its state while failing over.
    graveyard_.push_back(std::move(it->second));
    active_.erase(it);
    if (node_failure_listener_) node_failure_listener_(node);
    Replenish();
    return;
  }
}

void SqlNodePool::Remove(sql::SqlNode* node) {
  auto it = active_.find(node);
  if (it == active_.end()) return;
  kube_->DeletePod(it->second->pod);
  node->Stop();
  active_.erase(it);
}

std::vector<sql::SqlNode*> SqlNodePool::NodesForTenant(kv::TenantId tenant) const {
  std::vector<sql::SqlNode*> out;
  for (const auto& [node, managed] : active_) {
    if (node->tenant_id() == tenant && !managed->draining &&
        node->state() == sql::SqlNode::State::kReady) {
      out.push_back(node);
    }
  }
  return out;
}

size_t SqlNodePool::num_ready_nodes() const {
  size_t count = 0;
  for (const auto& [node, managed] : active_) {
    if (node->state() == sql::SqlNode::State::kReady && !managed->draining) ++count;
  }
  return count;
}

}  // namespace veloce::serverless
