#ifndef VELOCE_SERVERLESS_PROXY_H_
#define VELOCE_SERVERLESS_PROXY_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "serverless/node_pool.h"

namespace veloce::serverless {

/// The routing proxy (Section 4.2.2). Clients connect here; the proxy
/// identifies the tenant from the startup message, enforces IP allow/deny
/// lists and auth-failure throttling, picks a SQL node by least
/// connections (resuming suspended tenants through the warm pool), and
/// transparently migrates idle sessions between nodes for rebalancing and
/// drains (Section 4.2.4).
class Proxy {
 public:
  struct Options {
    /// Failed-auth throttling: exponential backoff starting here.
    Nanos auth_backoff_base = kSecond;
    int auth_failures_before_throttle = 3;

    // ---- Failover policy (docs/ROBUSTNESS.md) ----
    /// Node-failure retries per ExecuteWithFailover call before giving up.
    int failover_max_attempts = 4;
    /// Backoff between failover attempts: exponential from the base, capped
    /// at the max, plus uniform jitter of `failover_jitter` x backoff so a
    /// node death does not produce a synchronized retry stampede.
    Nanos failover_backoff_base = 50 * kMilli;
    Nanos failover_backoff_max = 2 * kSecond;
    double failover_jitter = 0.5;
    /// Per-tenant retry budget (token bucket a la Finagle): every
    /// successful execute earns `retry_budget_ratio` tokens up to the cap,
    /// every failover retry spends one, and an empty budget fails fast —
    /// one tenant's dying node cannot retry-storm the region.
    double retry_budget_ratio = 0.1;
    double retry_budget_cap = 10.0;
    /// Tokens a tenant starts with (so its very first failure can retry).
    double retry_budget_initial = 5.0;
    /// Pause before redirecting after a lease-epoch-mismatch / stale-range
    /// rejection. These are definitive pre-apply rejections — the cluster
    /// names a new leaseholder as soon as liveness expires the old lease —
    /// so the redirect needs only enough delay for a heartbeat tick, not
    /// the full failover backoff, and spends no retry-budget tokens.
    Nanos redirect_backoff = 5 * kMilli;

    /// Proxy telemetry (connections, migrations, security rejections).
    /// Null metrics = private registry.
    obs::ObsContext obs;

    /// Seeds the proxy's RNG (failover jitter, revival tokens). Scenarios
    /// derive this from one scenario seed (common/random.h DeriveSeed) so
    /// identical seeds replay identical failover traces.
    uint64_t seed = 0xFACADE;
  };

  /// One proxied client connection. The session pointer moves when the
  /// proxy migrates the connection; clients keep using the Connection.
  struct Connection {
    uint64_t id = 0;
    kv::TenantId tenant = 0;
    sql::SqlNode* node = nullptr;
    sql::Session* session = nullptr;
    uint64_t migrations = 0;
  };

  Proxy(sim::EventLoop* loop, SqlNodePool* pool) : Proxy(loop, pool, Options()) {}
  Proxy(sim::EventLoop* loop, SqlNodePool* pool, Options options);

  /// Client connect: `client_ip` feeds the allow/deny and throttle checks.
  /// If the tenant has no SQL nodes (suspended / scaled to zero), the
  /// proxy triggers the cold-start flow through the pool.
  void Connect(kv::TenantId tenant, const std::string& client_ip,
               std::function<void(StatusOr<Connection*>)> on_connected);

  Status Disconnect(uint64_t connection_id);

  // --- failure handling -----------------------------------------------------
  /// Executes `sql` on the connection's current node. If the node has died
  /// (or an idempotent request fails with a transient Unavailable), the
  /// proxy fails over: jittered exponential backoff, reacquire a healthy
  /// node for the tenant (cold-starting one through the pool if none is
  /// left), open a fresh session, retry — bounded by failover_max_attempts
  /// and the tenant's retry budget. `done` fires exactly once. Asynchronous;
  /// callers pump the event loop.
  void ExecuteWithFailover(Connection* conn, const std::string& sql,
                           bool idempotent,
                           std::function<void(StatusOr<sql::ResultSet>)> done);

  /// SqlNodePool failure hook: invalidates the sessions of every connection
  /// that lived on the dead node (they fail over on their next execute).
  void OnNodeFailure(sql::SqlNode* node);

  /// Remaining failover tokens for the tenant (tests/introspection).
  double RetryBudget(kv::TenantId tenant) const;

  // --- security controls ---------------------------------------------------
  /// Empty allowlist = all IPs allowed.
  void SetAllowlist(kv::TenantId tenant, std::vector<std::string> ips);
  void AddToDenylist(kv::TenantId tenant, const std::string& ip);
  /// Reported by the backend on bad credentials; throttles the origin.
  void RecordAuthFailure(const std::string& client_ip);
  void RecordAuthSuccess(const std::string& client_ip);
  bool IsThrottled(const std::string& client_ip) const;

  // --- migration & balancing ------------------------------------------------
  /// Migrates one idle connection to `target`. Busy sessions (open txn)
  /// are skipped (returns Unavailable); callers retry when idle.
  Status MigrateConnection(Connection* conn, sql::SqlNode* target);
  /// Moves connections off draining nodes and evens out counts across the
  /// tenant's ready nodes. Returns the number of migrations performed.
  int RebalanceTenant(kv::TenantId tenant);
  /// Rebalances every tenant that has proxied connections (the proxy's
  /// periodic re-balance pass, Section 4.2.2).
  int RebalanceAll();

  size_t ConnectionsForTenant(kv::TenantId tenant) const;
  size_t ConnectionsOnNode(const sql::SqlNode* node) const;
  uint64_t total_migrations() const { return total_migrations_; }
  uint64_t total_connections_served() const { return next_connection_id_ - 1; }

 private:
  sql::SqlNode* PickLeastConnections(const std::vector<sql::SqlNode*>& nodes) const;
  Status FinishConnect(kv::TenantId tenant, sql::SqlNode* node,
                       std::function<void(StatusOr<Connection*>)>& on_connected);
  /// One execute attempt; `attempt` counts failovers already taken. Looks
  /// the connection up by id because it can be closed across async hops.
  void ExecuteAttempt(uint64_t conn_id, const std::string& sql, bool idempotent,
                      int attempt,
                      std::function<void(StatusOr<sql::ResultSet>)> done);
  double& BudgetRef(kv::TenantId tenant);
  void EarnRetryBudget(kv::TenantId tenant);
  bool SpendRetryBudget(kv::TenantId tenant);

  sim::EventLoop* loop_;
  SqlNodePool* pool_;
  Options options_;
  Random rng_;
  std::map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_connection_id_ = 1;
  uint64_t total_migrations_ = 0;

  std::map<kv::TenantId, std::set<std::string>> allowlists_;
  std::map<kv::TenantId, std::set<std::string>> denylists_;
  struct ThrottleState {
    int failures = 0;
    Nanos blocked_until = 0;
  };
  std::map<std::string, ThrottleState> throttle_;
  std::map<kv::TenantId, double> retry_budget_;

  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Counter* connections_c_ = nullptr;
  obs::Counter* migrations_c_ = nullptr;
  obs::Counter* rejected_c_ = nullptr;       ///< allow/deny list rejections
  obs::Counter* auth_throttled_c_ = nullptr; ///< connects refused by backoff
  obs::Counter* failovers_c_ = nullptr;          ///< successful re-attaches
  obs::Counter* failover_retries_c_ = nullptr;   ///< retry attempts taken
  obs::Counter* budget_exhausted_c_ = nullptr;   ///< fails fast on empty budget
  obs::Counter* lease_redirects_c_ = nullptr;    ///< stale-lease/range redirects
  obs::HistogramMetric* failover_backoff_h_ = nullptr;
  /// Declared last: unregisters before the state it reads is destroyed.
  obs::MetricsRegistry::CallbackToken gauge_cb_;
};

}  // namespace veloce::serverless

#endif  // VELOCE_SERVERLESS_PROXY_H_
