#ifndef VELOCE_SERVERLESS_PROXY_H_
#define VELOCE_SERVERLESS_PROXY_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "serverless/node_pool.h"

namespace veloce::serverless {

/// The routing proxy (Section 4.2.2). Clients connect here; the proxy
/// identifies the tenant from the startup message, enforces IP allow/deny
/// lists and auth-failure throttling, picks a SQL node by least
/// connections (resuming suspended tenants through the warm pool), and
/// transparently migrates idle sessions between nodes for rebalancing and
/// drains (Section 4.2.4).
class Proxy {
 public:
  struct Options {
    /// Failed-auth throttling: exponential backoff starting here.
    Nanos auth_backoff_base = kSecond;
    int auth_failures_before_throttle = 3;
    /// Proxy telemetry (connections, migrations, security rejections).
    /// Null metrics = private registry.
    obs::ObsContext obs;
  };

  /// One proxied client connection. The session pointer moves when the
  /// proxy migrates the connection; clients keep using the Connection.
  struct Connection {
    uint64_t id = 0;
    kv::TenantId tenant = 0;
    sql::SqlNode* node = nullptr;
    sql::Session* session = nullptr;
    uint64_t migrations = 0;
  };

  Proxy(sim::EventLoop* loop, SqlNodePool* pool) : Proxy(loop, pool, Options()) {}
  Proxy(sim::EventLoop* loop, SqlNodePool* pool, Options options);

  /// Client connect: `client_ip` feeds the allow/deny and throttle checks.
  /// If the tenant has no SQL nodes (suspended / scaled to zero), the
  /// proxy triggers the cold-start flow through the pool.
  void Connect(kv::TenantId tenant, const std::string& client_ip,
               std::function<void(StatusOr<Connection*>)> on_connected);

  Status Disconnect(uint64_t connection_id);

  // --- security controls ---------------------------------------------------
  /// Empty allowlist = all IPs allowed.
  void SetAllowlist(kv::TenantId tenant, std::vector<std::string> ips);
  void AddToDenylist(kv::TenantId tenant, const std::string& ip);
  /// Reported by the backend on bad credentials; throttles the origin.
  void RecordAuthFailure(const std::string& client_ip);
  void RecordAuthSuccess(const std::string& client_ip);
  bool IsThrottled(const std::string& client_ip) const;

  // --- migration & balancing ------------------------------------------------
  /// Migrates one idle connection to `target`. Busy sessions (open txn)
  /// are skipped (returns Unavailable); callers retry when idle.
  Status MigrateConnection(Connection* conn, sql::SqlNode* target);
  /// Moves connections off draining nodes and evens out counts across the
  /// tenant's ready nodes. Returns the number of migrations performed.
  int RebalanceTenant(kv::TenantId tenant);
  /// Rebalances every tenant that has proxied connections (the proxy's
  /// periodic re-balance pass, Section 4.2.2).
  int RebalanceAll();

  size_t ConnectionsForTenant(kv::TenantId tenant) const;
  size_t ConnectionsOnNode(const sql::SqlNode* node) const;
  uint64_t total_migrations() const { return total_migrations_; }
  uint64_t total_connections_served() const { return next_connection_id_ - 1; }

 private:
  sql::SqlNode* PickLeastConnections(const std::vector<sql::SqlNode*>& nodes) const;
  Status FinishConnect(kv::TenantId tenant, sql::SqlNode* node,
                       std::function<void(StatusOr<Connection*>)>& on_connected);

  sim::EventLoop* loop_;
  SqlNodePool* pool_;
  Options options_;
  Random rng_{0xFACADE};
  std::map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_connection_id_ = 1;
  uint64_t total_migrations_ = 0;

  std::map<kv::TenantId, std::set<std::string>> allowlists_;
  std::map<kv::TenantId, std::set<std::string>> denylists_;
  struct ThrottleState {
    int failures = 0;
    Nanos blocked_until = 0;
  };
  std::map<std::string, ThrottleState> throttle_;

  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Counter* connections_c_ = nullptr;
  obs::Counter* migrations_c_ = nullptr;
  obs::Counter* rejected_c_ = nullptr;       ///< allow/deny list rejections
  obs::Counter* auth_throttled_c_ = nullptr; ///< connects refused by backoff
  /// Declared last: unregisters before the state it reads is destroyed.
  obs::MetricsRegistry::CallbackToken gauge_cb_;
};

}  // namespace veloce::serverless

#endif  // VELOCE_SERVERLESS_PROXY_H_
