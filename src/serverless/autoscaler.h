#ifndef VELOCE_SERVERLESS_AUTOSCALER_H_
#define VELOCE_SERVERLESS_AUTOSCALER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "serverless/node_pool.h"
#include "serverless/proxy.h"

namespace veloce::serverless {

/// The autoscaler (Section 4.2.3): assigns each tenant a number of SQL
/// nodes from its recent CPU usage. Target capacity is
///     max(4 x avg CPU over 5 min,  1.33 x peak CPU over 5 min)
/// rounded up to whole 4-vCPU nodes — a moving average for stability plus
/// an instantaneous maximum for responsiveness.
///
/// Metrics arrive by direct scrape every 3 seconds (the Section 4.3.2
/// optimization; the legacy Prometheus pipeline added 20-30 s of reaction
/// latency, reproducible via `scrape_interval`).
class Autoscaler {
 public:
  struct Options {
    Nanos scrape_interval = 3 * kSecond;
    Nanos window = 5 * kMinute;
    double avg_multiplier = 4.0;
    double peak_multiplier = 1.33;
    int node_vcpus = 4;
    /// Suspend (scale to zero) after this long with zero usage and no
    /// client connections.
    Nanos suspend_after = 5 * kMinute;

    // --- automatic KV node scaling (future work, off by default) ----------
    /// When enabled via EnableKvScaling, add a KV node once cluster-wide
    /// KV utilization stays above this for a full window.
    double kv_scale_up_utilization = 0.8;
    int max_kv_nodes = 16;
  };

  /// Returns the tenant's *current* total SQL CPU usage in vCPUs.
  using CpuUsageFn = std::function<double(kv::TenantId)>;

  Autoscaler(sim::EventLoop* loop, SqlNodePool* pool, Proxy* proxy,
             CpuUsageFn usage_fn)
      : Autoscaler(loop, pool, proxy, std::move(usage_fn), Options()) {}
  Autoscaler(sim::EventLoop* loop, SqlNodePool* pool, Proxy* proxy,
             CpuUsageFn usage_fn, Options options);

  void WatchTenant(kv::TenantId tenant);
  void UnwatchTenant(kv::TenantId tenant);

  /// Begins periodic scraping/reconciliation.
  void Start();
  void Stop();

  /// One scrape+reconcile step (exposed so benches can drive manually).
  void Tick();

  /// Enables automatic KV (storage) node scaling — the paper's first
  /// future-work item (Section 8). `utilization_fn` reports cluster-wide
  /// KV CPU utilization in [0, 1]; when it stays above the threshold for a
  /// full scrape window, a node is added and replicas/leases rebalance
  /// onto it. Off unless called.
  void EnableKvScaling(kv::KVCluster* cluster,
                       std::function<double()> utilization_fn);
  int kv_nodes_added() const { return kv_nodes_added_; }

  /// The node count the current window implies for `tenant`.
  int TargetNodes(kv::TenantId tenant) const;
  double AvgUsage(kv::TenantId tenant) const;
  double PeakUsage(kv::TenantId tenant) const;
  /// Ready (non-draining) nodes currently assigned.
  int CurrentNodes(kv::TenantId tenant) const;
  bool suspended(kv::TenantId tenant) const;

 private:
  struct TenantState {
    std::deque<std::pair<Nanos, double>> samples;  // (time, vCPUs used)
    Nanos zero_since = -1;  ///< start of the current all-zero stretch
    bool suspended = false;
    int acquisitions_inflight = 0;
  };

  void Reconcile(kv::TenantId tenant, TenantState* state);

  sim::EventLoop* loop_;
  SqlNodePool* pool_;
  Proxy* proxy_;
  CpuUsageFn usage_fn_;
  Options options_;
  std::map<kv::TenantId, TenantState> tenants_;
  std::unique_ptr<sim::PeriodicTask> scraper_;
  kv::KVCluster* kv_cluster_ = nullptr;
  std::function<double()> kv_utilization_fn_;
  int kv_hot_scrapes_ = 0;
  int kv_nodes_added_ = 0;
};

}  // namespace veloce::serverless

#endif  // VELOCE_SERVERLESS_AUTOSCALER_H_
