#ifndef VELOCE_SERVERLESS_MULTIREGION_H_
#define VELOCE_SERVERLESS_MULTIREGION_H_

#include <string>

#include "sim/region_topology.h"

namespace veloce::serverless {

/// How a tenant's system database is laid out across regions (Section
/// 3.2.5). The unoptimized configuration places every leaseholder in
/// `lease_region`; the region-aware configuration converts
/// system.descriptor-style tables to GLOBAL (consistent local reads
/// everywhere) and system.sql_instances-style tables to REGIONAL BY ROW
/// (local leaseholder for each node's own row).
struct SystemDatabaseConfig {
  bool region_aware = false;
  std::string lease_region = "asia-southeast1";
  /// Blocking reads of system tables during SQL node startup (descriptor,
  /// settings, users/auth, zone configs).
  int blocking_schema_reads = 4;
  /// Blocking writes (the node's system.sql_instances row).
  int blocking_instance_writes = 1;
};

/// Latency model for the network-bound part of a multi-region cold start
/// (Fig 10b): the blocking system-database accesses a starting SQL node
/// performs before it can serve its first query. META-range lookups use
/// follower reads and are always region-local in both configurations.
class ColdStartLatencyModel {
 public:
  ColdStartLatencyModel(const sim::RegionTopology* topology,
                        SystemDatabaseConfig config)
      : topology_(topology), config_(config) {}

  /// Network time for one schema read issued from `region`: GLOBAL tables
  /// serve consistent reads locally; otherwise a round trip to the
  /// leaseholder's region.
  Nanos SchemaReadLatency(const std::string& region) const {
    if (config_.region_aware) return topology_->Rtt(region, region);
    return topology_->Rtt(region, config_.lease_region);
  }

  /// Network time for the sql_instances row write: REGIONAL BY ROW places
  /// the row's leaseholder locally (quorum replication still crosses
  /// regions but commit waits only on the nearest quorum — approximated as
  /// one local round trip plus half the RTT to the nearest other region);
  /// otherwise the write round-trips to the lease region.
  Nanos InstanceWriteLatency(const std::string& region) const {
    if (!config_.region_aware) {
      return topology_->Rtt(region, config_.lease_region);
    }
    Nanos nearest = 0;
    bool found = false;
    for (const auto& other : topology_->regions()) {
      if (other == region) continue;
      const Nanos rtt = topology_->Rtt(region, other);
      if (!found || rtt < nearest) {
        nearest = rtt;
        found = true;
      }
    }
    return topology_->Rtt(region, region) + (found ? nearest / 2 : 0);
  }

  /// Follower read against the META range (always local).
  Nanos MetaLookupLatency(const std::string& region) const {
    return topology_->Rtt(region, region);
  }

  /// Total network-bound startup latency from `region`.
  Nanos TotalNetworkLatency(const std::string& region) const {
    return MetaLookupLatency(region) +
           config_.blocking_schema_reads * SchemaReadLatency(region) +
           config_.blocking_instance_writes * InstanceWriteLatency(region);
  }

  const SystemDatabaseConfig& config() const { return config_; }

 private:
  const sim::RegionTopology* topology_;
  SystemDatabaseConfig config_;
};

}  // namespace veloce::serverless

#endif  // VELOCE_SERVERLESS_MULTIREGION_H_
