#ifndef VELOCE_SERVERLESS_NODE_POOL_H_
#define VELOCE_SERVERLESS_NODE_POOL_H_

#include <deque>

#include "common/random.h"
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs_context.h"
#include "serverless/kube_sim.h"
#include "sql/sql_node.h"
#include "tenant/controller.h"

namespace veloce::serverless {

/// Manages the region's SQL nodes: the pre-warmed pool, tenant stamping,
/// draining, and reuse (Sections 4.2.3 and 4.3.1).
///
/// Acquisition latency depends on the pool state and configuration:
///  * optimized (prewarm_process=true): warm nodes already run their
///    process with the TCP listener open — stamping writes the tenant's
///    certificate, the file watch fires, and the node finishes KV
///    initialization. Sub-second.
///  * unoptimized: the pod exists but the process must boot first, and the
///    client's early TCP connection attempts are RST'd and retried with
///    exponential backoff, roughly doubling observed latency (Section
///    6.5.1). Modeled as an extra penalty equal to the process start time.
class SqlNodePool {
 public:
  struct Options {
    size_t warm_pool_target = 4;
    bool prewarm_process = true;
    /// Certificate write + filesystem watch + KV connect, excluding the
    /// schema warmup reads (those depend on the region topology).
    Nanos stamp_latency = 120 * kMilli;
    /// Uniform jitter on the stamp step (cert distribution, fs watch
    /// wakeup, and KV connect times vary).
    Nanos stamp_jitter = 0;
    /// Idle draining nodes shut down after this long (paper: 10 minutes).
    Nanos drain_timeout = 10 * kMinute;
    sql::SqlNode::Options node_options;
    /// Pool telemetry (pod starts, per-path acquire latency, cold-start
    /// stage timings, warm/ready gauges). Null metrics = private registry.
    /// Set node_options.obs as well to instrument the SQL nodes themselves.
    obs::ObsContext obs;
    /// Seeds the stamp-jitter RNG; scenarios derive this from one scenario
    /// seed.
    uint64_t seed = 0xB00157ED;
  };

  SqlNodePool(sim::EventLoop* loop, KubeSim* kube,
              tenant::AuthorizedKvService* service, kv::KVCluster* cluster,
              tenant::TenantController* controller, Options options);

  /// Asynchronously acquires a ready SQL node for `tenant`. Prefers (1) a
  /// draining node of the same tenant (cheapest — instant un-drain), then
  /// (2) a pre-warmed node, then (3) a cold pod. The pool replenishes
  /// itself in the background.
  void Acquire(kv::TenantId tenant,
               std::function<void(StatusOr<sql::SqlNode*>)> on_ready);

  /// Marks a node draining; it stops once its sessions are gone or the
  /// drain timeout passes. Draining nodes of the same tenant are reused by
  /// Acquire before warm ones.
  void StartDraining(sql::SqlNode* node);

  /// Immediately removes the node (rolling upgrade / scale-to-zero end).
  void Remove(sql::SqlNode* node);

  /// Fault hook: abruptly kills the node's pod (KubeSim::KillPod), as if
  /// the container crashed mid-request. The node object itself is kept
  /// alive in a graveyard — stopped, session-less — so raw pointers held
  /// by proxy connections stay valid while they fail over.
  void KillNode(sql::SqlNode* node);

  /// Invoked when a pod dies unexpectedly (KillPod), with the SQL node that
  /// was running in it. The proxy hooks this to invalidate the sessions it
  /// had on the node before retrying elsewhere.
  void SetNodeFailureListener(std::function<void(sql::SqlNode*)> listener) {
    node_failure_listener_ = std::move(listener);
  }

  std::vector<sql::SqlNode*> NodesForTenant(kv::TenantId tenant) const;
  size_t warm_available() const { return warm_.size(); }
  size_t num_ready_nodes() const;

  /// Refills the warm pool up to the target (runs automatically after each
  /// acquisition; exposed for tests).
  void Replenish();

 private:
  struct ManagedNode {
    std::unique_ptr<sql::SqlNode> node;
    PodId pod = 0;
    bool draining = false;
    Nanos drain_started = 0;
  };

  void FinishStamp(ManagedNode* managed, kv::TenantId tenant,
                   std::function<void(StatusOr<sql::SqlNode*>)> on_ready);
  void DrainPoll(sql::SqlNode* node, Nanos deadline);
  void OnPodFailure(PodId pod);
  Nanos StampLatency();
  void InitMetrics();

  sim::EventLoop* loop_;
  KubeSim* kube_;
  tenant::AuthorizedKvService* service_;
  kv::KVCluster* cluster_;
  tenant::TenantController* controller_;
  Options options_;
  Random rng_;
  uint64_t next_node_id_ = 1;
  std::deque<std::unique_ptr<ManagedNode>> warm_;
  std::map<sql::SqlNode*, std::unique_ptr<ManagedNode>> active_;
  /// Crashed nodes, kept (stopped) so outstanding raw pointers in proxy
  /// connections never dangle while their owners fail over.
  std::vector<std::unique_ptr<ManagedNode>> graveyard_;
  std::function<void(sql::SqlNode*)> node_failure_listener_;
  int replenish_inflight_ = 0;

  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Counter* pod_starts_c_ = nullptr;
  obs::Counter* node_failures_c_ = nullptr;
  obs::Counter* acquire_drain_c_ = nullptr;
  obs::Counter* acquire_warm_c_ = nullptr;
  obs::Counter* acquire_cold_c_ = nullptr;
  obs::HistogramMetric* acquire_warm_h_ = nullptr;  ///< warm-path latency
  obs::HistogramMetric* acquire_cold_h_ = nullptr;  ///< cold-path latency
  /// Cold-start stage breakdown (Section 4.3.1): pod create, process
  /// start, tenant stamp.
  obs::HistogramMetric* stage_pod_create_h_ = nullptr;
  obs::HistogramMetric* stage_process_start_h_ = nullptr;
  obs::HistogramMetric* stage_stamp_h_ = nullptr;
  /// Declared last: unregisters before the state it reads is destroyed.
  obs::MetricsRegistry::CallbackToken gauge_cb_;
};

}  // namespace veloce::serverless

#endif  // VELOCE_SERVERLESS_NODE_POOL_H_
