#include "serverless/cluster.h"

namespace veloce::serverless {

ServerlessCluster::ServerlessCluster(Options options)
    : options_(options),
      kube_(&loop_, options.kube),
      meter_(loop_.clock(), billing::EstimatedCpuModel::Default()) {
  options_.kv.clock = loop_.clock();
  kv_ = std::make_unique<kv::KVCluster>(options_.kv);
  controller_ = std::make_unique<tenant::TenantController>(kv_.get(), &ca_);
  service_ = std::make_unique<tenant::AuthorizedKvService>(kv_.get(), &ca_);
  pool_ = std::make_unique<SqlNodePool>(&loop_, &kube_, service_.get(), kv_.get(),
                                        controller_.get(), options_.pool);
  proxy_ = std::make_unique<Proxy>(&loop_, pool_.get(), options_.proxy);
  autoscaler_ = std::make_unique<Autoscaler>(
      &loop_, pool_.get(), proxy_.get(),
      [this](kv::TenantId tenant) {
        auto it = cpu_usage_.find(tenant);
        return it == cpu_usage_.end() ? 0.0 : it->second;
      },
      options_.autoscaler);
  // Let the warm pool finish its initial provisioning.
  loop_.Run();
  // The proxy's periodic connection re-balance pass (opt-in: it keeps the
  // event queue non-empty, so loop_.Run() callers must use RunFor/RunUntil).
  if (options_.proxy_rebalance_interval > 0) {
    rebalancer_ = std::make_unique<sim::PeriodicTask>(
        &loop_, options_.proxy_rebalance_interval,
        [this] { proxy_->RebalanceAll(); });
    rebalancer_->Start();
  }
}

void ServerlessCluster::HarvestUsage() {
  auto tenants = controller_->ListTenants();
  if (!tenants.ok()) return;
  for (const auto& meta : *tenants) {
    const kv::TenantId tenant = meta.id;
    for (sql::SqlNode* node : pool_->NodesForTenant(tenant)) {
      sql::KvConnector* connector = node->connector();
      if (connector == nullptr) continue;
      const Nanos total_sql = node->sql_cpu();
      Nanos& billed = harvested_sql_cpu_[node->id()];
      const double sql_secs = static_cast<double>(total_sql - billed) / 1e9;
      billed = total_sql;
      meter_.Record(tenant, connector->features(), sql_secs);
      connector->ResetFeatures();
    }
  }
}

StatusOr<tenant::TenantMetadata> ServerlessCluster::CreateTenant(
    const std::string& name) {
  VELOCE_ASSIGN_OR_RETURN(tenant::TenantMetadata meta,
                          controller_->CreateTenant(name));
  autoscaler_->WatchTenant(meta.id);
  return meta;
}

StatusOr<Proxy::Connection*> ServerlessCluster::ConnectSync(
    kv::TenantId tenant, const std::string& client_ip) {
  StatusOr<Proxy::Connection*> result = Status::DeadlineExceeded("connect never completed");
  bool done = false;
  proxy_->Connect(tenant, client_ip, [&](StatusOr<Proxy::Connection*> conn) {
    result = std::move(conn);
    done = true;
  });
  // Run the loop until the callback fires (bounded by a sim-time cap).
  const Nanos deadline = loop_.Now() + 10 * kMinute;
  while (!done && loop_.Now() < deadline && loop_.pending_events() > 0) {
    loop_.Step();
  }
  return result;
}

}  // namespace veloce::serverless
