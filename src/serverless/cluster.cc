#include "serverless/cluster.h"

namespace veloce::serverless {

namespace {
/// One master seed fans out into per-component streams (docs/SCENARIOS.md).
serverless::KubeSim::Options SeededKube(serverless::KubeSim::Options kube,
                                        uint64_t seed) {
  kube.seed = DeriveSeed(seed, "kube");
  return kube;
}
}  // namespace

ServerlessCluster::ServerlessCluster(Options options)
    : options_(options),
      owned_metrics_(options.obs.metrics == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr),
      owned_traces_(options.obs.traces == nullptr
                        ? std::make_unique<obs::TraceCollector>()
                        : nullptr),
      obs_{loop_.clock(),
           options.obs.metrics != nullptr ? options.obs.metrics
                                          : owned_metrics_.get(),
           options.obs.traces != nullptr ? options.obs.traces
                                         : owned_traces_.get()},
      kube_(&loop_, SeededKube(options.kube, options.seed)),
      meter_(loop_.clock(), billing::EstimatedCpuModel::Default(), obs_) {
  options_.kv.clock = loop_.clock();
  options_.kv.obs = obs_;
  options_.pool.seed = DeriveSeed(options_.seed, "pool");
  options_.proxy.seed = DeriveSeed(options_.seed, "proxy");
  // Storage background work (flushes, compactions) runs as loop events so
  // the whole cluster — including engine internals — replays exactly.
  storage_executor_ = std::make_unique<sim::SimExecutor>(&loop_);
  options_.kv.engine_options.background_executor = storage_executor_.get();
  kv_ = std::make_unique<kv::KVCluster>(options_.kv);
  controller_ = std::make_unique<tenant::TenantController>(kv_.get(), &ca_);
  service_ = std::make_unique<tenant::AuthorizedKvService>(kv_.get(), &ca_);
  options_.pool.obs = obs_;
  options_.pool.node_options.obs = obs_;
  pool_ = std::make_unique<SqlNodePool>(&loop_, &kube_, service_.get(), kv_.get(),
                                        controller_.get(), options_.pool);
  options_.proxy.obs = obs_;
  proxy_ = std::make_unique<Proxy>(&loop_, pool_.get(), options_.proxy);
  // Node deaths invalidate the proxy's sessions on the dead node before any
  // connection can touch a freed Session.
  pool_->SetNodeFailureListener(
      [this](sql::SqlNode* node) { proxy_->OnNodeFailure(node); });
  if (options_.enable_admission) {
    for (kv::NodeId id = 0; id < static_cast<kv::NodeId>(kv_->num_nodes()); ++id) {
      admission::NodeAdmissionController::Options opts = options_.admission;
      opts.obs = obs_;
      opts.instance = std::to_string(id);
      // Sync-only admission: no periodic tasks, so loop_.Run() still drains.
      opts.background_tasks = false;
      auto cpu = std::make_unique<sim::VirtualCpu>(&loop_, opts.vcpus, kMilli,
                                                   obs_, std::to_string(id));
      admission_[id] = std::make_unique<admission::NodeAdmissionController>(
          &loop_, cpu.get(), opts);
      admission_cpus_.push_back(std::move(cpu));
    }
    kv_->set_batch_interceptor(
        [this](kv::NodeId leaseholder, const kv::BatchRequest& req) {
          auto it = admission_.find(leaseholder);
          if (it == admission_.end()) return Status::OK();
          admission::KvWork work;
          work.tenant_id = req.tenant_id;
          work.is_write = !req.IsReadOnly();
          work.write_bytes = work.is_write ? req.PayloadBytes() : 0;
          // Rough per-request execution estimate feeding the slot model.
          work.cpu_cost = static_cast<Nanos>(req.requests.size()) * 20 * kMicro;
          work.trace = req.trace;
          it->second->AdmitSync(work);
          return Status::OK();
        });
  }
  autoscaler_ = std::make_unique<Autoscaler>(
      &loop_, pool_.get(), proxy_.get(),
      [this](kv::TenantId tenant) {
        auto it = cpu_usage_.find(tenant);
        return it == cpu_usage_.end() ? 0.0 : it->second;
      },
      options_.autoscaler);
  // Let the warm pool finish its initial provisioning.
  loop_.Run();
  // The proxy's periodic connection re-balance pass (opt-in: it keeps the
  // event queue non-empty, so loop_.Run() callers must use RunFor/RunUntil).
  if (options_.proxy_rebalance_interval > 0) {
    rebalancer_ = std::make_unique<sim::PeriodicTask>(
        &loop_, options_.proxy_rebalance_interval,
        [this] { proxy_->RebalanceAll(); });
    rebalancer_->Start();
  }
}

void ServerlessCluster::CalibrateAdmission() {
  for (auto& [id, ctrl] : admission_) {
    storage::Engine* engine = kv_->node(id)->engine();
    ctrl->UpdateWriteCapacity(engine->stats(), engine->NumFilesAtLevel(0));
  }
}

void ServerlessCluster::HarvestUsage() {
  auto tenants = controller_->ListTenants();
  if (!tenants.ok()) return;
  for (const auto& meta : *tenants) {
    const kv::TenantId tenant = meta.id;
    for (sql::SqlNode* node : pool_->NodesForTenant(tenant)) {
      sql::KvConnector* connector = node->connector();
      if (connector == nullptr) continue;
      const Nanos total_sql = node->sql_cpu();
      Nanos& billed = harvested_sql_cpu_[node->id()];
      const double sql_secs = static_cast<double>(total_sql - billed) / 1e9;
      billed = total_sql;
      meter_.Record(tenant, connector->features(), sql_secs);
      connector->ResetFeatures();
    }
  }
}

StatusOr<tenant::TenantMetadata> ServerlessCluster::CreateTenant(
    const std::string& name) {
  VELOCE_ASSIGN_OR_RETURN(tenant::TenantMetadata meta,
                          controller_->CreateTenant(name));
  autoscaler_->WatchTenant(meta.id);
  return meta;
}

StatusOr<Proxy::Connection*> ServerlessCluster::ConnectSync(
    kv::TenantId tenant, const std::string& client_ip) {
  StatusOr<Proxy::Connection*> result = Status::DeadlineExceeded("connect never completed");
  bool done = false;
  proxy_->Connect(tenant, client_ip, [&](StatusOr<Proxy::Connection*> conn) {
    result = std::move(conn);
    done = true;
  });
  // Run the loop until the callback fires (bounded by a sim-time cap).
  const Nanos deadline = loop_.Now() + 10 * kMinute;
  while (!done && loop_.Now() < deadline && loop_.pending_events() > 0) {
    loop_.Step();
  }
  return result;
}

StatusOr<sql::ResultSet> ServerlessCluster::ExecuteSync(Proxy::Connection* conn,
                                                        const std::string& sql,
                                                        bool idempotent) {
  StatusOr<sql::ResultSet> result =
      Status::DeadlineExceeded("execute never completed");
  bool done = false;
  proxy_->ExecuteWithFailover(conn, sql, idempotent,
                              [&](StatusOr<sql::ResultSet> r) {
                                result = std::move(r);
                                done = true;
                              });
  const Nanos deadline = loop_.Now() + 10 * kMinute;
  while (!done && loop_.Now() < deadline && loop_.pending_events() > 0) {
    loop_.Step();
  }
  return result;
}

Status ServerlessCluster::CrashAndRestartKvNode(kv::NodeId id) {
  kv::KVNode* node = kv_->node(id);
  if (node == nullptr) return Status::NotFound("no KV node " + std::to_string(id));
  const Status restarted = node->Restart();
  if (!restarted.ok()) {
    // The reboot failed (e.g. the disk fault persists): the node stays
    // down and sheds its leases; surviving replicas keep serving.
    kv_->SetNodeLive(id, false);
    return restarted;
  }
  // The reboot recovered only what its WALs held: replay whatever the
  // replication log committed while the node was down so it converges
  // with the leaseholder and counts toward quorum again.
  return kv_->CatchUpNode(id);
}

}  // namespace veloce::serverless
