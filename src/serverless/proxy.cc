#include "serverless/proxy.h"

#include <algorithm>

namespace veloce::serverless {

Proxy::Proxy(sim::EventLoop* loop, SqlNodePool* pool, Options options)
    : loop_(loop), pool_(pool), options_(options), rng_(options.seed) {
  metrics_ = options_.obs.metrics;
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  connections_c_ = metrics_->counter("veloce_serverless_connections_total");
  migrations_c_ = metrics_->counter("veloce_serverless_migrations_total");
  rejected_c_ = metrics_->counter("veloce_serverless_rejected_connects_total");
  auth_throttled_c_ = metrics_->counter("veloce_serverless_auth_throttled_total");
  failovers_c_ = metrics_->counter("veloce_serverless_failovers_total");
  failover_retries_c_ =
      metrics_->counter("veloce_serverless_failover_retries_total");
  budget_exhausted_c_ =
      metrics_->counter("veloce_serverless_retry_budget_exhausted_total");
  lease_redirects_c_ =
      metrics_->counter("veloce_serverless_lease_redirects_total");
  failover_backoff_h_ =
      metrics_->histogram("veloce_serverless_failover_backoff_ns");
  gauge_cb_ = metrics_->AddCollectCallback([this] {
    metrics_->gauge("veloce_serverless_open_connections")
        ->Set(static_cast<double>(connections_.size()));
  });
}

void Proxy::SetAllowlist(kv::TenantId tenant, std::vector<std::string> ips) {
  allowlists_[tenant] = std::set<std::string>(ips.begin(), ips.end());
}

void Proxy::AddToDenylist(kv::TenantId tenant, const std::string& ip) {
  denylists_[tenant].insert(ip);
}

void Proxy::RecordAuthFailure(const std::string& client_ip) {
  ThrottleState& state = throttle_[client_ip];
  ++state.failures;
  if (state.failures >= options_.auth_failures_before_throttle) {
    const int excess = state.failures - options_.auth_failures_before_throttle;
    const Nanos backoff = options_.auth_backoff_base
                          << std::min(excess, 16);  // exponential, capped
    state.blocked_until = loop_->Now() + backoff;
  }
}

void Proxy::RecordAuthSuccess(const std::string& client_ip) {
  throttle_.erase(client_ip);
}

bool Proxy::IsThrottled(const std::string& client_ip) const {
  auto it = throttle_.find(client_ip);
  return it != throttle_.end() && it->second.blocked_until > loop_->Now();
}

sql::SqlNode* Proxy::PickLeastConnections(
    const std::vector<sql::SqlNode*>& nodes) const {
  sql::SqlNode* best = nullptr;
  size_t best_count = 0;
  for (sql::SqlNode* node : nodes) {
    const size_t count = ConnectionsOnNode(node);
    if (best == nullptr || count < best_count) {
      best = node;
      best_count = count;
    }
  }
  return best;
}

Status Proxy::FinishConnect(kv::TenantId tenant, sql::SqlNode* node,
                            std::function<void(StatusOr<Connection*>)>& on_connected) {
  auto session_or = node->NewSession();
  if (!session_or.ok()) return session_or.status();
  auto conn = std::make_unique<Connection>();
  conn->id = next_connection_id_++;
  conn->tenant = tenant;
  conn->node = node;
  conn->session = *session_or;
  Connection* raw = conn.get();
  connections_[raw->id] = std::move(conn);
  connections_c_->Inc();
  on_connected(raw);
  return Status::OK();
}

void Proxy::Connect(kv::TenantId tenant, const std::string& client_ip,
                    std::function<void(StatusOr<Connection*>)> on_connected) {
  // Security gates first.
  if (IsThrottled(client_ip)) {
    auth_throttled_c_->Inc();
    on_connected(Status::ResourceExhausted("origin throttled after auth failures"));
    return;
  }
  auto deny = denylists_.find(tenant);
  if (deny != denylists_.end() && deny->second.count(client_ip)) {
    rejected_c_->Inc();
    on_connected(Status::Unauthorized("client IP denied"));
    return;
  }
  auto allow = allowlists_.find(tenant);
  if (allow != allowlists_.end() && !allow->second.empty() &&
      !allow->second.count(client_ip)) {
    rejected_c_->Inc();
    on_connected(Status::Unauthorized("client IP not in allowlist"));
    return;
  }

  const std::vector<sql::SqlNode*> nodes = pool_->NodesForTenant(tenant);
  if (!nodes.empty()) {
    sql::SqlNode* node = PickLeastConnections(nodes);
    Status s = FinishConnect(tenant, node, on_connected);
    if (!s.ok()) on_connected(s);
    return;
  }
  // Scale-from-zero: pull a node through the pool (the cold start path).
  pool_->Acquire(tenant, [this, tenant, on_connected = std::move(on_connected)](
                             StatusOr<sql::SqlNode*> node_or) mutable {
    if (!node_or.ok()) {
      on_connected(node_or.status());
      return;
    }
    Status s = FinishConnect(tenant, *node_or, on_connected);
    if (!s.ok()) on_connected(s);
  });
}

Status Proxy::Disconnect(uint64_t connection_id) {
  auto it = connections_.find(connection_id);
  if (it == connections_.end()) return Status::NotFound("no such connection");
  Connection* conn = it->second.get();
  if (conn->node != nullptr && conn->session != nullptr &&
      conn->node->state() != sql::SqlNode::State::kStopped) {
    (void)conn->node->CloseSession(conn->session->id());
  }
  connections_.erase(it);
  return Status::OK();
}

void Proxy::OnNodeFailure(sql::SqlNode* node) {
  // The node's sessions died with it; null them out so nothing (migration,
  // disconnect, execute) dereferences a freed Session.
  for (auto& [id, conn] : connections_) {
    if (conn->node == node) conn->session = nullptr;
  }
}

double& Proxy::BudgetRef(kv::TenantId tenant) {
  return retry_budget_.try_emplace(tenant, options_.retry_budget_initial)
      .first->second;
}

double Proxy::RetryBudget(kv::TenantId tenant) const {
  auto it = retry_budget_.find(tenant);
  return it == retry_budget_.end() ? options_.retry_budget_initial : it->second;
}

void Proxy::EarnRetryBudget(kv::TenantId tenant) {
  double& budget = BudgetRef(tenant);
  budget = std::min(options_.retry_budget_cap,
                    budget + options_.retry_budget_ratio);
}

bool Proxy::SpendRetryBudget(kv::TenantId tenant) {
  double& budget = BudgetRef(tenant);
  if (budget < 1.0) return false;
  budget -= 1.0;
  return true;
}

void Proxy::ExecuteWithFailover(Connection* conn, const std::string& sql,
                                bool idempotent,
                                std::function<void(StatusOr<sql::ResultSet>)> done) {
  ExecuteAttempt(conn->id, sql, idempotent, /*attempt=*/0, std::move(done));
}

void Proxy::ExecuteAttempt(uint64_t conn_id, const std::string& sql,
                           bool idempotent, int attempt,
                           std::function<void(StatusOr<sql::ResultSet>)> done) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) {
    done(Status::NotFound("connection closed during failover"));
    return;
  }
  Connection* conn = it->second.get();
  const bool node_alive = conn->session != nullptr && conn->node != nullptr &&
                          conn->node->state() == sql::SqlNode::State::kReady;
  if (node_alive) {
    auto result = conn->session->Execute(sql);
    if (result.ok()) {
      EarnRetryBudget(conn->tenant);
      done(std::move(result));
      return;
    }
    // Stale-lease (epoch mismatch) and stale-routing (range key mismatch)
    // rejections are emitted before the offending batch touches any
    // engine, so replaying them is safe even for non-idempotent work.
    // Redirect: short pause (enough for a liveness tick to move the lease
    // to a reachable replica), retry on the same session, no budget spent
    // — blind exponential backoff would punish the tenant for a
    // server-side routing change.
    const Code code = result.status().code();
    if ((code == Code::kLeaseEpochMismatch ||
         code == Code::kRangeKeyMismatch) &&
        attempt < options_.failover_max_attempts) {
      lease_redirects_c_->Inc();
      loop_->Schedule(options_.redirect_backoff,
                      [this, conn_id, sql, idempotent, attempt,
                       done = std::move(done)]() mutable {
                        ExecuteAttempt(conn_id, sql, idempotent, attempt + 1,
                                       std::move(done));
                      });
      return;
    }
    // A request that reached the node and failed may have partially run;
    // only idempotent work is safe to replay, and only transient failures
    // are worth it. (A node that died *before* the attempt never saw the
    // request, so the pre-attempt path below retries unconditionally.)
    if (!idempotent || code != Code::kUnavailable) {
      done(std::move(result));
      return;
    }
  }
  if (attempt >= options_.failover_max_attempts) {
    done(Status::Unavailable("failover attempts exhausted (" +
                             std::to_string(attempt) + ")"));
    return;
  }
  if (!SpendRetryBudget(conn->tenant)) {
    budget_exhausted_c_->Inc();
    done(Status::ResourceExhausted("per-tenant retry budget exhausted"));
    return;
  }
  failover_retries_c_->Inc();
  Nanos backoff = options_.failover_backoff_base;
  for (int i = 0; i < attempt && backoff < options_.failover_backoff_max; ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, options_.failover_backoff_max);
  if (options_.failover_jitter > 0) {
    const auto span = static_cast<uint64_t>(
        options_.failover_jitter * static_cast<double>(backoff));
    if (span > 0) backoff += static_cast<Nanos>(rng_.Uniform(span));
  }
  failover_backoff_h_->Record(backoff);
  const kv::TenantId tenant = conn->tenant;
  loop_->Schedule(backoff, [this, conn_id, tenant, sql, idempotent, attempt,
                            done = std::move(done)]() mutable {
    auto reattach = [this, conn_id, sql, idempotent, attempt,
                     done = std::move(done)](
                        StatusOr<sql::SqlNode*> node_or) mutable {
      auto it = connections_.find(conn_id);
      if (it == connections_.end()) {
        done(Status::NotFound("connection closed during failover"));
        return;
      }
      Connection* conn = it->second.get();
      if (node_or.ok()) {
        auto session_or = (*node_or)->NewSession();
        if (session_or.ok()) {
          conn->node = *node_or;
          conn->session = *session_or;
          failovers_c_->Inc();
        }
      }
      // Re-enter whether or not the reacquire worked: a failed one backs
      // off again until attempts or budget run out.
      ExecuteAttempt(conn_id, sql, idempotent, attempt + 1, std::move(done));
    };
    const std::vector<sql::SqlNode*> nodes = pool_->NodesForTenant(tenant);
    if (!nodes.empty()) {
      reattach(PickLeastConnections(nodes));
    } else {
      // Every node for this tenant is gone: cold-start one through the pool.
      pool_->Acquire(tenant, std::move(reattach));
    }
  });
}

Status Proxy::MigrateConnection(Connection* conn, sql::SqlNode* target) {
  if (conn->node == target) return Status::OK();
  if (conn->session == nullptr) {
    return Status::Unavailable("session lost (node crashed)");
  }
  if (!conn->session->idle()) {
    return Status::Unavailable("session busy (open transaction)");
  }
  // Serialize with a fresh revival token; the token authenticates the
  // restore so the client needs no re-authentication.
  const uint64_t token = rng_.Next();
  VELOCE_ASSIGN_OR_RETURN(std::string blob, conn->session->Serialize(token));
  VELOCE_ASSIGN_OR_RETURN(sql::Session * restored,
                          target->RestoreSession(blob, token));
  (void)conn->node->CloseSession(conn->session->id());
  conn->node = target;
  conn->session = restored;
  ++conn->migrations;
  ++total_migrations_;
  migrations_c_->Inc();
  return Status::OK();
}

int Proxy::RebalanceTenant(kv::TenantId tenant) {
  const std::vector<sql::SqlNode*> ready = pool_->NodesForTenant(tenant);
  if (ready.empty()) return 0;
  int migrated = 0;
  // First: evacuate draining/stopped nodes.
  for (auto& [id, conn] : connections_) {
    if (conn->tenant != tenant) continue;
    if (conn->node->state() == sql::SqlNode::State::kReady) continue;
    sql::SqlNode* target = PickLeastConnections(ready);
    if (target != nullptr && MigrateConnection(conn.get(), target).ok()) {
      ++migrated;
    }
  }
  // Then: even out across ready nodes (move from the most to the least
  // loaded while the imbalance exceeds one connection).
  for (int iter = 0; iter < 256; ++iter) {
    sql::SqlNode* max_node = nullptr;
    sql::SqlNode* min_node = nullptr;
    size_t max_count = 0, min_count = 0;
    for (sql::SqlNode* node : ready) {
      const size_t count = ConnectionsOnNode(node);
      if (max_node == nullptr || count > max_count) {
        max_node = node;
        max_count = count;
      }
      if (min_node == nullptr || count < min_count) {
        min_node = node;
        min_count = count;
      }
    }
    if (max_node == nullptr || max_count <= min_count + 1) break;
    // Move one idle connection from max to min.
    bool moved = false;
    for (auto& [id, conn] : connections_) {
      if (conn->tenant != tenant || conn->node != max_node) continue;
      if (MigrateConnection(conn.get(), min_node).ok()) {
        ++migrated;
        moved = true;
        break;
      }
    }
    if (!moved) break;  // everything on the hot node is busy
  }
  return migrated;
}

int Proxy::RebalanceAll() {
  std::set<kv::TenantId> tenants;
  for (const auto& [id, conn] : connections_) tenants.insert(conn->tenant);
  int migrated = 0;
  for (kv::TenantId tenant : tenants) migrated += RebalanceTenant(tenant);
  return migrated;
}

size_t Proxy::ConnectionsForTenant(kv::TenantId tenant) const {
  size_t count = 0;
  for (const auto& [id, conn] : connections_) {
    if (conn->tenant == tenant) ++count;
  }
  return count;
}

size_t Proxy::ConnectionsOnNode(const sql::SqlNode* node) const {
  size_t count = 0;
  for (const auto& [id, conn] : connections_) {
    if (conn->node == node) ++count;
  }
  return count;
}

}  // namespace veloce::serverless
