#ifndef VELOCE_BILLING_TOKEN_BUCKET_H_
#define VELOCE_BILLING_TOKEN_BUCKET_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "obs/obs_context.h"

namespace veloce::billing {

/// The per-tenant distributed token bucket (Section 5.2.2). One token is
/// one millisecond of estimated CPU; the bucket refills at 1000 tokens per
/// second per vCPU of quota. SQL nodes request tokens in bulk and run
/// against a local buffer; when the shared bucket runs dry the server makes
/// *trickle grants* — a tokens/second rate rather than a lump — so nodes
/// degrade to a smooth reduced pace instead of stop/start sawtoothing. Over
/// time the sum of trickle rates converges to the refill rate (statistical,
/// not absolute, guarantee).
class TokenBucketServer {
 public:
  static constexpr double kTokensPerVcpuSecond = 1000.0;
  /// Tokens accumulate while idle up to this many seconds of refill.
  static constexpr double kBurstSeconds = 10.0;
  /// A node counts as active (for fair trickle shares) for this long after
  /// its last request.
  static constexpr Nanos kActiveWindow = 30 * kSecond;

  /// `obs` wires the bucket's `veloce_billing_token_*` series into a shared
  /// registry (null metrics = private registry); `tenant_label` distinguishes
  /// buckets sharing a registry (exported as label tenant=...).
  TokenBucketServer(Clock* clock, double quota_vcpus,
                    const obs::ObsContext& obs = {},
                    std::string tenant_label = "");

  void SetQuota(double quota_vcpus);
  double quota_vcpus() const;

  struct Grant {
    /// Tokens granted immediately (lump).
    double tokens = 0;
    /// When > 0, the node must throttle itself to this tokens/second rate
    /// until it next requests (trickle grant).
    double trickle_rate = 0;
  };

  /// Requests `tokens` on behalf of SQL node `node_id`, reporting the
  /// node's recent consumption rate for fairness bookkeeping.
  Grant Request(uint64_t node_id, double tokens, double observed_rate);

  double available() const;
  double refill_rate() const;  ///< tokens/second
  /// Unlimited quota buckets grant everything instantly.
  bool unlimited() const;

 private:
  void RefillLocked() const;
  int ActiveNodesLocked() const;

  Clock* clock_;
  mutable std::mutex mu_;
  double quota_vcpus_;
  mutable double tokens_;
  mutable Nanos last_refill_;
  /// node -> last request time (for the active-node count).
  std::map<uint64_t, Nanos> last_request_;
  /// Moving average of granted trickle rates, converged toward refill.
  double trickle_ewma_ = 0;
  /// While trickle grants are outstanding, the refill streams to the
  /// trickling nodes instead of accumulating in the bucket.
  mutable Nanos trickle_active_until_ = 0;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* requests_c_ = nullptr;
  obs::Counter* trickle_grants_c_ = nullptr;
  obs::Gauge* tokens_granted_g_ = nullptr;  ///< double-valued running total
  obs::MetricsRegistry::CallbackToken gauge_cb_;
};

/// Per-SQL-node client: keeps the local token buffer and tells the query
/// path how hard to throttle.
class TokenBucketClient {
 public:
  /// Nodes re-request when the buffer falls below this many seconds of
  /// recent usage.
  static constexpr double kLowWaterSeconds = 1.0;
  /// Request enough for this many seconds at the recent rate.
  static constexpr double kRequestSeconds = 10.0;

  TokenBucketClient(TokenBucketServer* server, uint64_t node_id, Clock* clock);

  /// Consumes `tokens` for completed work. Returns the delay (nanoseconds)
  /// the caller should impose before its next operation: 0 when unthrottled,
  /// positive when running on a trickle grant.
  Nanos Consume(double tokens);

  double local_tokens() const { return local_tokens_; }
  double observed_rate() const { return rate_ewma_; }
  bool throttled() const { return trickle_rate_ > 0; }
  double trickle_rate() const { return trickle_rate_; }

 private:
  void MaybeRefill();

  TokenBucketServer* server_;
  const uint64_t node_id_;
  Clock* clock_;
  double local_tokens_ = 0;
  double rate_ewma_ = 0;  ///< tokens/second consumed recently
  double trickle_rate_ = 0;
  Nanos last_consume_;
  Nanos trickle_credit_at_;  ///< accrual cursor for trickle income
};

}  // namespace veloce::billing

#endif  // VELOCE_BILLING_TOKEN_BUCKET_H_
