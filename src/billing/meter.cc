#include "billing/meter.h"

namespace veloce::billing {

TenantMeter::TenantMeter(Clock* clock, EstimatedCpuModel model,
                         const obs::ObsContext& obs)
    : clock_(clock), model_(std::move(model)) {
  metrics_ = obs.metrics;
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  cuts_c_ = metrics_->counter("veloce_billing_interval_cuts_total");
}

void TenantMeter::Record(uint64_t tenant_id, const IntervalFeatures& features,
                         double sql_cpu_seconds) {
  std::lock_guard<std::mutex> l(mu_);
  auto [it, inserted] = windows_.try_emplace(tenant_id);
  TenantWindow& window = it->second;
  if (inserted) window.window_start = clock_->Now();
  window.features.read_batches += features.read_batches;
  window.features.read_requests += features.read_requests;
  window.features.read_bytes += features.read_bytes;
  window.features.write_batches += features.write_batches;
  window.features.write_requests += features.write_requests;
  window.features.write_bytes += features.write_bytes;
  window.sql_cpu_seconds += sql_cpu_seconds;
}

UsageReport TenantMeter::BuildReportLocked(const TenantWindow& window) const {
  UsageReport report;
  report.interval = clock_->Now() - window.window_start;
  const double secs =
      report.interval > 0 ? static_cast<double>(report.interval) / kSecond : 1.0;
  report.sql_cpu_seconds = window.sql_cpu_seconds;
  report.kv_cpu_seconds = model_.EstimateKvCpuSeconds(window.features, secs);
  report.ecpu_seconds = report.sql_cpu_seconds + report.kv_cpu_seconds;
  report.request_units = EcpuSecondsToRequestUnits(report.ecpu_seconds);
  report.egress_bytes = window.features.read_bytes;
  report.write_bytes = window.features.write_bytes;
  return report;
}

UsageReport TenantMeter::Current(uint64_t tenant_id) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = windows_.find(tenant_id);
  if (it == windows_.end()) return UsageReport{};
  return BuildReportLocked(it->second);
}

UsageReport TenantMeter::Cut(uint64_t tenant_id) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = windows_.find(tenant_id);
  if (it == windows_.end()) return UsageReport{};
  UsageReport report = BuildReportLocked(it->second);
  it->second = TenantWindow{};
  it->second.window_start = clock_->Now();
  cuts_c_->Inc();
  // Running billable totals per tenant (double-valued, hence gauges).
  const obs::Labels labels = {{"tenant", std::to_string(tenant_id)}};
  metrics_->gauge("veloce_billing_ecpu_seconds_total", labels)
      ->Add(report.ecpu_seconds);
  metrics_->gauge("veloce_billing_request_units_total", labels)
      ->Add(report.request_units);
  metrics_->gauge("veloce_billing_egress_bytes_total", labels)
      ->Add(report.egress_bytes);
  metrics_->gauge("veloce_billing_write_bytes_total", labels)
      ->Add(report.write_bytes);
  return report;
}

}  // namespace veloce::billing
