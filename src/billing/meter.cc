#include "billing/meter.h"

namespace veloce::billing {

void TenantMeter::Record(uint64_t tenant_id, const IntervalFeatures& features,
                         double sql_cpu_seconds) {
  std::lock_guard<std::mutex> l(mu_);
  auto [it, inserted] = windows_.try_emplace(tenant_id);
  TenantWindow& window = it->second;
  if (inserted) window.window_start = clock_->Now();
  window.features.read_batches += features.read_batches;
  window.features.read_requests += features.read_requests;
  window.features.read_bytes += features.read_bytes;
  window.features.write_batches += features.write_batches;
  window.features.write_requests += features.write_requests;
  window.features.write_bytes += features.write_bytes;
  window.sql_cpu_seconds += sql_cpu_seconds;
}

UsageReport TenantMeter::BuildReportLocked(const TenantWindow& window) const {
  UsageReport report;
  report.interval = clock_->Now() - window.window_start;
  const double secs =
      report.interval > 0 ? static_cast<double>(report.interval) / kSecond : 1.0;
  report.sql_cpu_seconds = window.sql_cpu_seconds;
  report.kv_cpu_seconds = model_.EstimateKvCpuSeconds(window.features, secs);
  report.ecpu_seconds = report.sql_cpu_seconds + report.kv_cpu_seconds;
  report.request_units = EcpuSecondsToRequestUnits(report.ecpu_seconds);
  report.egress_bytes = window.features.read_bytes;
  report.write_bytes = window.features.write_bytes;
  return report;
}

UsageReport TenantMeter::Current(uint64_t tenant_id) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = windows_.find(tenant_id);
  if (it == windows_.end()) return UsageReport{};
  return BuildReportLocked(it->second);
}

UsageReport TenantMeter::Cut(uint64_t tenant_id) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = windows_.find(tenant_id);
  if (it == windows_.end()) return UsageReport{};
  UsageReport report = BuildReportLocked(it->second);
  it->second = TenantWindow{};
  it->second.window_start = clock_->Now();
  return report;
}

}  // namespace veloce::billing
