#ifndef VELOCE_BILLING_METER_H_
#define VELOCE_BILLING_METER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "billing/ecpu_model.h"
#include "common/clock.h"
#include "obs/obs_context.h"

namespace veloce::billing {

/// One tenant's consumption over an accounting interval, in the units the
/// product bills (Section 7: eCPU replaced Request Units; network and disk
/// I/O are itemized separately for transparency).
struct UsageReport {
  double sql_cpu_seconds = 0;     ///< measured directly (single-tenant process)
  double kv_cpu_seconds = 0;      ///< modeled from the six features
  double ecpu_seconds = 0;        ///< sql + kv
  double request_units = 0;       ///< legacy metric, for comparison
  double egress_bytes = 0;        ///< read bytes returned to the tenant
  double write_bytes = 0;         ///< payload bytes ingested
  Nanos interval = 0;

  /// Average eCPU rate in vCPUs over the interval.
  double ecpu_vcpus() const {
    return interval > 0 ? ecpu_seconds / (static_cast<double>(interval) / kSecond)
                        : 0;
  }
};

/// TenantMeter turns raw per-SQL-node observations (measured SQL CPU +
/// KV-API feature counts) into billable usage, per tenant per interval —
/// the accounting half of Section 5.2 (the token bucket enforces; this
/// reports). Thread-safe.
class TenantMeter {
 public:
  /// `obs` wires the meter's `veloce_billing_*` usage series (labelled
  /// tenant=<id>) into a shared registry; null metrics = private registry.
  TenantMeter(Clock* clock, EstimatedCpuModel model,
              const obs::ObsContext& obs = {});

  /// Records one observation window from a tenant's SQL node: the features
  /// its connector accumulated and the SQL CPU it measured.
  void Record(uint64_t tenant_id, const IntervalFeatures& features,
              double sql_cpu_seconds);

  /// Usage since the last Cut() (or construction).
  UsageReport Current(uint64_t tenant_id) const;

  /// Closes the interval for a tenant: returns the final report and starts
  /// a new interval (what the billing pipeline persists).
  UsageReport Cut(uint64_t tenant_id);

  const EstimatedCpuModel& model() const { return model_; }

 private:
  struct TenantWindow {
    IntervalFeatures features;
    double sql_cpu_seconds = 0;
    Nanos window_start = 0;
  };

  UsageReport BuildReportLocked(const TenantWindow& window) const;

  Clock* clock_;
  EstimatedCpuModel model_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* cuts_c_ = nullptr;
  mutable std::mutex mu_;
  std::map<uint64_t, TenantWindow> windows_;
};

}  // namespace veloce::billing

#endif  // VELOCE_BILLING_METER_H_
