#include "billing/token_bucket.h"

#include <algorithm>

namespace veloce::billing {

TokenBucketServer::TokenBucketServer(Clock* clock, double quota_vcpus,
                                     const obs::ObsContext& obs,
                                     std::string tenant_label)
    : clock_(clock),
      quota_vcpus_(quota_vcpus),
      tokens_(quota_vcpus * kTokensPerVcpuSecond * kBurstSeconds),
      last_refill_(clock->Now()) {
  metrics_ = obs.metrics;
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  obs::Labels labels;
  if (!tenant_label.empty()) labels.push_back({"tenant", tenant_label});
  requests_c_ = metrics_->counter("veloce_billing_token_requests_total", labels);
  trickle_grants_c_ =
      metrics_->counter("veloce_billing_trickle_grants_total", labels);
  tokens_granted_g_ =
      metrics_->gauge("veloce_billing_tokens_granted_total", labels);
  gauge_cb_ = metrics_->AddCollectCallback([this, labels] {
    metrics_->gauge("veloce_billing_tokens_available", labels)->Set(available());
    metrics_->gauge("veloce_billing_token_refill_per_sec", labels)
        ->Set(refill_rate());
  });
}

void TokenBucketServer::SetQuota(double quota_vcpus) {
  std::lock_guard<std::mutex> l(mu_);
  RefillLocked();
  quota_vcpus_ = quota_vcpus;
}

double TokenBucketServer::quota_vcpus() const {
  std::lock_guard<std::mutex> l(mu_);
  return quota_vcpus_;
}

bool TokenBucketServer::unlimited() const {
  std::lock_guard<std::mutex> l(mu_);
  return quota_vcpus_ <= 0;
}

double TokenBucketServer::refill_rate() const {
  std::lock_guard<std::mutex> l(mu_);
  return quota_vcpus_ * kTokensPerVcpuSecond;
}

void TokenBucketServer::RefillLocked() const {
  const Nanos now = clock_->Now();
  if (now <= last_refill_) return;
  // While trickle grants are live, the refill is already being streamed to
  // the trickling nodes; crediting the bucket too would double-pay.
  const Nanos credit_from = std::max(last_refill_, trickle_active_until_);
  if (now > credit_from) {
    const double elapsed = static_cast<double>(now - credit_from) / kSecond;
    const double rate = quota_vcpus_ * kTokensPerVcpuSecond;
    tokens_ = std::min(tokens_ + rate * elapsed, rate * kBurstSeconds);
  }
  last_refill_ = now;
}

int TokenBucketServer::ActiveNodesLocked() const {
  const Nanos cutoff = clock_->Now() - kActiveWindow;
  int active = 0;
  for (const auto& [node, when] : last_request_) {
    if (when >= cutoff) ++active;
  }
  return active;
}

TokenBucketServer::Grant TokenBucketServer::Request(uint64_t node_id, double tokens,
                                                    double observed_rate) {
  std::lock_guard<std::mutex> l(mu_);
  requests_c_->Inc();
  Grant grant;
  if (quota_vcpus_ <= 0) {  // unlimited
    grant.tokens = tokens;
    tokens_granted_g_->Add(grant.tokens);
    return grant;
  }
  RefillLocked();
  last_request_[node_id] = clock_->Now();
  if (tokens_ >= tokens) {
    tokens_ -= tokens;
    grant.tokens = tokens;
    tokens_granted_g_->Add(grant.tokens);
    return grant;
  }
  // Bucket dry: hand over the remainder and a trickle rate. Fair share is
  // the refill rate split across recently active nodes, smoothed toward
  // each node's observed demand so the aggregate converges on the refill
  // rate even as nodes come and go.
  grant.tokens = std::max(0.0, tokens_);
  tokens_ = 0;
  const int active = std::max(1, ActiveNodesLocked());
  const double refill = quota_vcpus_ * kTokensPerVcpuSecond;
  const double fair_share = refill / active;
  // Converge the EWMA of trickle grants toward the fair share; a node whose
  // demand is below its share only gets what it asked for.
  trickle_ewma_ = 0.7 * trickle_ewma_ + 0.3 * fair_share;
  grant.trickle_rate = std::min(std::max(trickle_ewma_, fair_share * 0.5),
                                observed_rate > 0 ? std::max(observed_rate, fair_share * 0.1)
                                                  : fair_share);
  grant.trickle_rate = std::min(grant.trickle_rate, fair_share);
  // The refill now streams to tricklers until they come back (clients
  // re-request after ~kLowWater/kRequest seconds of consumption).
  trickle_active_until_ = clock_->Now() + 10 * kSecond;
  trickle_grants_c_->Inc();
  tokens_granted_g_->Add(grant.tokens);
  return grant;
}

double TokenBucketServer::available() const {
  std::lock_guard<std::mutex> l(mu_);
  RefillLocked();
  return tokens_;
}

TokenBucketClient::TokenBucketClient(TokenBucketServer* server, uint64_t node_id,
                                     Clock* clock)
    : server_(server),
      node_id_(node_id),
      clock_(clock),
      last_consume_(clock->Now()),
      trickle_credit_at_(clock->Now()) {}

void TokenBucketClient::MaybeRefill() {
  // Accrue trickle income since the last visit.
  const Nanos now = clock_->Now();
  if (trickle_rate_ > 0) {
    local_tokens_ +=
        trickle_rate_ * static_cast<double>(now - trickle_credit_at_) / kSecond;
  }
  trickle_credit_at_ = now;

  const double low_water = std::max(1.0, rate_ewma_ * kLowWaterSeconds);
  if (local_tokens_ >= low_water) return;
  const double want = std::max(10.0, rate_ewma_ * kRequestSeconds);
  TokenBucketServer::Grant grant = server_->Request(node_id_, want, rate_ewma_);
  local_tokens_ += grant.tokens;
  trickle_rate_ = grant.trickle_rate;
}

Nanos TokenBucketClient::Consume(double tokens) {
  const Nanos now = clock_->Now();
  const double elapsed = static_cast<double>(now - last_consume_) / kSecond;
  if (elapsed > 0) {
    // EWMA over ~10 seconds.
    const double alpha = std::min(1.0, elapsed / 10.0);
    rate_ewma_ = (1 - alpha) * rate_ewma_ + alpha * (tokens / elapsed);
    last_consume_ = now;
  } else {
    rate_ewma_ += tokens;  // same-instant burst
  }
  MaybeRefill();
  local_tokens_ -= tokens;
  // Unthrottled nodes never delay: any debt is covered by the next bulk
  // grant (the server still had tokens, or it would have set a trickle).
  if (local_tokens_ >= 0 || trickle_rate_ <= 0) return 0;
  // In debt on a trickle grant: pace so consumption matches the trickle.
  const double debt = -local_tokens_;
  return static_cast<Nanos>(debt / trickle_rate_ * kSecond);
}

}  // namespace veloce::billing
