#ifndef VELOCE_BILLING_ECPU_MODEL_H_
#define VELOCE_BILLING_ECPU_MODEL_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace veloce::billing {

/// Monotone piecewise-linear function: the shape used to approximate each
/// of the estimated-CPU model's non-linear feature curves (Fig 5). Defined
/// by (x, y) control points; evaluation interpolates and clamps at the
/// extremes.
class PiecewiseLinear {
 public:
  struct Point {
    double x, y;
  };

  PiecewiseLinear() = default;
  explicit PiecewiseLinear(std::vector<Point> points);

  double Eval(double x) const;
  bool empty() const { return points_.empty(); }
  const std::vector<Point>& points() const { return points_; }

  /// Least-squares-ish fit: given (x, y) samples, places `segments`+1 knots
  /// at x-quantiles and sets knot y to the local average. Good enough for
  /// the calibration bench; not a general regression.
  static PiecewiseLinear Fit(std::vector<Point> samples, int segments);

 private:
  std::vector<Point> points_;  // sorted by x
};

/// The six input features of the estimated-CPU model (Section 5.2.1).
enum class Feature : int {
  kReadBatches = 0,
  kReadRequests = 1,
  kReadBytes = 2,
  kWriteBatches = 3,
  kWriteRequests = 4,
  kWriteBytes = 5,
};
constexpr int kNumFeatures = 6;
std::string_view FeatureName(Feature f);

/// Aggregated feature counts over an accounting interval (per tenant).
struct IntervalFeatures {
  double read_batches = 0;
  double read_requests = 0;
  double read_bytes = 0;
  double write_batches = 0;
  double write_requests = 0;
  double write_bytes = 0;

  double Get(Feature f) const;
};

/// Estimated-CPU model: estimated_cpu = actual_sql_cpu + estimated_kv_cpu,
/// where the KV part is the sum of six per-feature sub-models. Each
/// sub-model maps the feature's *rate* (units/sec) to a per-unit CPU cost
/// in seconds — capturing the batching efficiencies of Fig 5 (higher batch
/// rates amortize fixed costs, so per-unit cost falls with rate).
class EstimatedCpuModel {
 public:
  EstimatedCpuModel() = default;

  void SetSubModel(Feature f, PiecewiseLinear cost_per_unit_vs_rate);
  const PiecewiseLinear& sub_model(Feature f) const;

  /// Estimated KV CPU seconds consumed during an interval of `secs`
  /// seconds in which `features` were observed.
  double EstimateKvCpuSeconds(const IntervalFeatures& features, double secs) const;

  /// Total eCPU (vCPU-seconds): measured SQL CPU plus modelled KV CPU.
  double EstimateTotalCpuSeconds(double actual_sql_cpu_seconds,
                                 const IntervalFeatures& features,
                                 double secs) const {
    return actual_sql_cpu_seconds + EstimateKvCpuSeconds(features, secs);
  }

  /// The production default, shaped like the paper's trained model: batch
  /// costs fall with batch rate (Fig 5), request and byte costs are nearly
  /// flat. Calibrate with bench_fig5_write_batch_model for your hardware.
  static EstimatedCpuModel Default();

 private:
  std::array<PiecewiseLinear, kNumFeatures> sub_models_;
};

/// Legacy pricing unit: 1 RU = the cost of a prepared point read of a
/// 64-byte row (Section 7). Retained for comparison with the eCPU metric.
double EcpuSecondsToRequestUnits(double ecpu_seconds);

}  // namespace veloce::billing

#endif  // VELOCE_BILLING_ECPU_MODEL_H_
