#include "billing/ecpu_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace veloce::billing {

PiecewiseLinear::PiecewiseLinear(std::vector<Point> points)
    : points_(std::move(points)) {
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) { return a.x < b.x; });
}

double PiecewiseLinear::Eval(double x) const {
  if (points_.empty()) return 0;
  if (x <= points_.front().x) return points_.front().y;
  if (x >= points_.back().x) return points_.back().y;
  for (size_t i = 1; i < points_.size(); ++i) {
    if (x <= points_[i].x) {
      const Point& a = points_[i - 1];
      const Point& b = points_[i];
      const double t = (x - a.x) / (b.x - a.x);
      return a.y + t * (b.y - a.y);
    }
  }
  return points_.back().y;
}

PiecewiseLinear PiecewiseLinear::Fit(std::vector<Point> samples, int segments) {
  VELOCE_CHECK(segments >= 1);
  if (samples.empty()) return PiecewiseLinear();
  std::sort(samples.begin(), samples.end(),
            [](const Point& a, const Point& b) { return a.x < b.x; });
  std::vector<Point> knots;
  const size_t n = samples.size();
  const int k = std::min<int>(segments + 1, static_cast<int>(n));
  for (int i = 0; i < k; ++i) {
    // Knot at the i-th x-quantile; y = average of a neighborhood.
    const size_t center = (n - 1) * static_cast<size_t>(i) / (k - 1 == 0 ? 1 : k - 1);
    const size_t radius = std::max<size_t>(1, n / (2 * static_cast<size_t>(k)));
    const size_t lo = center >= radius ? center - radius : 0;
    const size_t hi = std::min(n - 1, center + radius);
    double sum = 0;
    for (size_t j = lo; j <= hi; ++j) sum += samples[j].y;
    knots.push_back({samples[center].x, sum / static_cast<double>(hi - lo + 1)});
  }
  return PiecewiseLinear(std::move(knots));
}

std::string_view FeatureName(Feature f) {
  switch (f) {
    case Feature::kReadBatches: return "read_batches";
    case Feature::kReadRequests: return "read_requests";
    case Feature::kReadBytes: return "read_bytes";
    case Feature::kWriteBatches: return "write_batches";
    case Feature::kWriteRequests: return "write_requests";
    case Feature::kWriteBytes: return "write_bytes";
  }
  return "unknown";
}

double IntervalFeatures::Get(Feature f) const {
  switch (f) {
    case Feature::kReadBatches: return read_batches;
    case Feature::kReadRequests: return read_requests;
    case Feature::kReadBytes: return read_bytes;
    case Feature::kWriteBatches: return write_batches;
    case Feature::kWriteRequests: return write_requests;
    case Feature::kWriteBytes: return write_bytes;
  }
  return 0;
}

void EstimatedCpuModel::SetSubModel(Feature f, PiecewiseLinear cost) {
  sub_models_[static_cast<int>(f)] = std::move(cost);
}

const PiecewiseLinear& EstimatedCpuModel::sub_model(Feature f) const {
  return sub_models_[static_cast<int>(f)];
}

double EstimatedCpuModel::EstimateKvCpuSeconds(const IntervalFeatures& features,
                                               double secs) const {
  if (secs <= 0) return 0;
  double total = 0;
  for (int i = 0; i < kNumFeatures; ++i) {
    const double count = features.Get(static_cast<Feature>(i));
    if (count <= 0 || sub_models_[i].empty()) continue;
    const double rate = count / secs;
    // Sub-model output: CPU seconds per unit at this rate.
    total += count * sub_models_[i].Eval(rate);
  }
  return total;
}

EstimatedCpuModel EstimatedCpuModel::Default() {
  EstimatedCpuModel model;
  // Batch fixed costs fall with batch rate (Fig 5's efficiency curve):
  // marshalling, raft proposal, and grant-chaining overheads amortize.
  model.SetSubModel(Feature::kWriteBatches,
                    PiecewiseLinear({{10, 180e-6},
                                     {100, 120e-6},
                                     {1000, 70e-6},
                                     {10000, 42e-6},
                                     {100000, 30e-6}}));
  model.SetSubModel(Feature::kReadBatches,
                    PiecewiseLinear({{10, 60e-6},
                                     {100, 45e-6},
                                     {1000, 28e-6},
                                     {10000, 16e-6},
                                     {100000, 11e-6}}));
  // Per-request costs shrink mildly with rate.
  model.SetSubModel(Feature::kWriteRequests,
                    PiecewiseLinear({{100, 8e-6}, {10000, 6e-6}, {1000000, 5e-6}}));
  model.SetSubModel(Feature::kReadRequests,
                    PiecewiseLinear({{100, 4e-6}, {10000, 3e-6}, {1000000, 2.5e-6}}));
  // Byte costs are nearly flat; writes cost more (raft log + compactions).
  model.SetSubModel(Feature::kWriteBytes,
                    PiecewiseLinear({{1e3, 30e-9}, {1e6, 25e-9}, {1e9, 22e-9}}));
  model.SetSubModel(Feature::kReadBytes,
                    PiecewiseLinear({{1e3, 12e-9}, {1e6, 10e-9}, {1e9, 9e-9}}));
  return model;
}

double EcpuSecondsToRequestUnits(double ecpu_seconds) {
  // 1 RU == a prepared point read of a 64-byte row. Under the default
  // model, at moderate rates that read costs roughly 20 microseconds of
  // eCPU (batch share + request + 64 bytes), so 1 RU ~= 20e-6 eCPU-seconds.
  constexpr double kEcpuSecondsPerRu = 20e-6;
  return ecpu_seconds / kEcpuSecondsPerRu;
}

}  // namespace veloce::billing
