#ifndef VELOCE_TENANT_AUTHORIZER_H_
#define VELOCE_TENANT_AUTHORIZER_H_

#include <cstdint>
#include <mutex>
#include <set>
#include <unordered_map>

#include "common/random.h"
#include "common/status.h"
#include "kv/batch.h"

namespace veloce::tenant {

/// Stand-in for a tenant's mTLS client certificate: an unforgeable (within
/// the simulation) token binding an identity to a tenant id. SQL nodes
/// present this on every KV RPC; the KV boundary validates it before any
/// keyspace check.
struct TenantCert {
  kv::TenantId tenant_id = 0;
  uint64_t secret = 0;
};

/// Issues and validates tenant certificates (the certificate authority the
/// control plane uses when stamping a pre-warmed SQL node with a tenant).
class CertificateAuthority {
 public:
  CertificateAuthority() : rng_(0xCE27A11CE) {}

  /// Issues a fresh certificate. Multiple certificates per tenant are
  /// valid simultaneously — every SQL node of a tenant holds its own.
  TenantCert Issue(kv::TenantId tenant_id) {
    std::lock_guard<std::mutex> l(mu_);
    const uint64_t secret = rng_.Next() | 1;  // never zero
    secrets_[tenant_id].insert(secret);
    return {tenant_id, secret};
  }

  bool Validate(const TenantCert& cert) const {
    std::lock_guard<std::mutex> l(mu_);
    auto it = secrets_.find(cert.tenant_id);
    return it != secrets_.end() && cert.secret != 0 &&
           it->second.count(cert.secret) > 0;
  }

  /// Revokes every certificate of the tenant (tenant destruction).
  void Revoke(kv::TenantId tenant_id) {
    std::lock_guard<std::mutex> l(mu_);
    secrets_.erase(tenant_id);
  }

 private:
  mutable std::mutex mu_;
  Random rng_;
  std::unordered_map<kv::TenantId, std::set<uint64_t>> secrets_;
};

}  // namespace veloce::tenant

#endif  // VELOCE_TENANT_AUTHORIZER_H_
