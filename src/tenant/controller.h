#ifndef VELOCE_TENANT_CONTROLLER_H_
#define VELOCE_TENANT_CONTROLLER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "kv/cluster.h"
#include "tenant/authorizer.h"

namespace veloce::tenant {

enum class TenantState : uint8_t {
  kActive = 0,
  kSuspended = 1,   ///< no SQL nodes; storage only (scale-to-zero)
  kDestroyed = 2,
};

std::string_view TenantStateName(TenantState state);

/// Control-plane view of one virtual cluster.
struct TenantMetadata {
  kv::TenantId id = 0;
  std::string name;
  TenantState state = TenantState::kActive;
  /// Regions the tenant selected (subset of the host cluster's regions).
  std::vector<std::string> regions;
  /// Per-tenant eCPU quota in vCPUs (0 = unlimited).
  double ecpu_limit_vcpus = 0;

  std::string Encode() const;
  static StatusOr<TenantMetadata> Decode(Slice data);
};

/// TenantController is the system-tenant interface (Section 3.2.4): the
/// privileged SQL instance through which operators manage virtual cluster
/// life cycles. Metadata is persisted in the system tenant's keyspace, so
/// it is replicated and survives restarts like any other KV data.
class TenantController {
 public:
  TenantController(kv::KVCluster* cluster, CertificateAuthority* ca);

  /// Creates a virtual cluster: allocates an id, carves out the keyspace,
  /// issues its certificate, persists metadata.
  StatusOr<TenantMetadata> CreateTenant(const std::string& name,
                                        std::vector<std::string> regions = {});

  StatusOr<TenantMetadata> GetTenant(kv::TenantId id) const;
  StatusOr<std::vector<TenantMetadata>> ListTenants() const;

  Status SuspendTenant(kv::TenantId id);
  Status ResumeTenant(kv::TenantId id);
  /// Destroys a virtual cluster: revokes credentials, deletes its data.
  Status DestroyTenant(kv::TenantId id);

  Status SetEcpuLimit(kv::TenantId id, double vcpus);

  /// Certificate for a tenant (what the orchestrator writes into a SQL
  /// node's filesystem on stamping).
  StatusOr<TenantCert> IssueCert(kv::TenantId id) const;

  kv::KVCluster* cluster() { return cluster_; }
  CertificateAuthority* certificate_authority() { return ca_; }

 private:
  std::string MetaKey(kv::TenantId id) const;
  Status PersistLocked(const TenantMetadata& meta) const;
  StatusOr<TenantMetadata> LoadLocked(kv::TenantId id) const;

  kv::KVCluster* cluster_;
  CertificateAuthority* ca_;
  mutable std::mutex mu_;
  kv::TenantId next_tenant_id_ = 10;  // ids below 10 reserved for system use
};

/// The KV-boundary authorization gate (Section 3.2.3): every SQL-layer RPC
/// passes through here. It validates the certificate, overrides the claimed
/// tenant id with the authenticated one, and refuses destroyed tenants; the
/// keyspace bounds check happens inside KVCluster::Send against the
/// authenticated identity.
class AuthorizedKvService {
 public:
  AuthorizedKvService(kv::KVCluster* cluster, const CertificateAuthority* ca)
      : cluster_(cluster), ca_(ca) {}

  StatusOr<kv::BatchResponse> Send(const TenantCert& cert, kv::BatchRequest req) {
    if (!ca_->Validate(cert)) {
      return Status::Unauthorized("invalid tenant certificate");
    }
    req.tenant_id = cert.tenant_id;  // never trust the claimed identity
    return cluster_->Send(req);
  }

 private:
  kv::KVCluster* cluster_;
  const CertificateAuthority* ca_;
};

}  // namespace veloce::tenant

#endif  // VELOCE_TENANT_CONTROLLER_H_
