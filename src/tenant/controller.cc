#include "tenant/controller.h"

#include <cinttypes>
#include <cstdio>

#include "common/codec.h"
#include "common/logging.h"

namespace veloce::tenant {

std::string_view TenantStateName(TenantState state) {
  switch (state) {
    case TenantState::kActive: return "active";
    case TenantState::kSuspended: return "suspended";
    case TenantState::kDestroyed: return "destroyed";
  }
  return "unknown";
}

std::string TenantMetadata::Encode() const {
  std::string out;
  PutFixed64(&out, id);
  out.push_back(static_cast<char>(state));
  PutLengthPrefixed(&out, name);
  PutVarint64(&out, regions.size());
  for (const auto& r : regions) PutLengthPrefixed(&out, r);
  PutFixed64(&out, static_cast<uint64_t>(ecpu_limit_vcpus * 1000.0));
  return out;
}

StatusOr<TenantMetadata> TenantMetadata::Decode(Slice data) {
  TenantMetadata meta;
  if (!GetFixed64(&data, &meta.id) || data.empty()) {
    return Status::Corruption("bad tenant metadata");
  }
  meta.state = static_cast<TenantState>(data[0]);
  data.RemovePrefix(1);
  Slice name;
  uint64_t num_regions = 0;
  if (!GetLengthPrefixed(&data, &name) || !GetVarint64(&data, &num_regions)) {
    return Status::Corruption("bad tenant metadata");
  }
  meta.name = name.ToString();
  for (uint64_t i = 0; i < num_regions; ++i) {
    Slice region;
    if (!GetLengthPrefixed(&data, &region)) {
      return Status::Corruption("bad tenant metadata regions");
    }
    meta.regions.push_back(region.ToString());
  }
  uint64_t limit_milli = 0;
  if (!GetFixed64(&data, &limit_milli)) {
    return Status::Corruption("bad tenant metadata limit");
  }
  meta.ecpu_limit_vcpus = static_cast<double>(limit_milli) / 1000.0;
  return meta;
}

TenantController::TenantController(kv::KVCluster* cluster, CertificateAuthority* ca)
    : cluster_(cluster), ca_(ca) {
  // The system tenant's keyspace hosts control metadata.
  VELOCE_CHECK_OK(cluster_->CreateTenantKeyspace(kv::kSystemTenantId));
}

std::string TenantController::MetaKey(kv::TenantId id) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "tenants/%020" PRIu64, id);
  return kv::AddTenantPrefix(kv::kSystemTenantId, buf);
}

Status TenantController::PersistLocked(const TenantMetadata& meta) const {
  kv::BatchRequest req;
  req.tenant_id = kv::kSystemTenantId;
  req.ts = cluster_->Now();
  req.AddPut(MetaKey(meta.id), meta.Encode());
  return cluster_->Send(req).status();
}

StatusOr<TenantMetadata> TenantController::LoadLocked(kv::TenantId id) const {
  kv::BatchRequest req;
  req.tenant_id = kv::kSystemTenantId;
  req.ts = cluster_->Now();
  req.AddGet(MetaKey(id));
  VELOCE_ASSIGN_OR_RETURN(kv::BatchResponse resp, cluster_->Send(req));
  if (!resp.responses[0].found) return Status::NotFound("no such tenant");
  return TenantMetadata::Decode(resp.responses[0].value);
}

StatusOr<TenantMetadata> TenantController::CreateTenant(
    const std::string& name, std::vector<std::string> regions) {
  std::lock_guard<std::mutex> l(mu_);
  TenantMetadata meta;
  meta.id = next_tenant_id_++;
  meta.name = name;
  meta.state = TenantState::kActive;
  meta.regions = std::move(regions);
  VELOCE_RETURN_IF_ERROR(cluster_->CreateTenantKeyspace(meta.id));
  ca_->Issue(meta.id);
  VELOCE_RETURN_IF_ERROR(PersistLocked(meta));
  return meta;
}

StatusOr<TenantMetadata> TenantController::GetTenant(kv::TenantId id) const {
  std::lock_guard<std::mutex> l(mu_);
  return LoadLocked(id);
}

StatusOr<std::vector<TenantMetadata>> TenantController::ListTenants() const {
  std::lock_guard<std::mutex> l(mu_);
  kv::BatchRequest req;
  req.tenant_id = kv::kSystemTenantId;
  req.ts = cluster_->Now();
  const std::string prefix = kv::AddTenantPrefix(kv::kSystemTenantId, "tenants/");
  req.AddScan(prefix, PrefixEnd(prefix), 0);
  VELOCE_ASSIGN_OR_RETURN(kv::BatchResponse resp, cluster_->Send(req));
  std::vector<TenantMetadata> out;
  for (const auto& row : resp.responses[0].rows) {
    VELOCE_ASSIGN_OR_RETURN(TenantMetadata meta, TenantMetadata::Decode(row.value));
    out.push_back(std::move(meta));
  }
  return out;
}

Status TenantController::SuspendTenant(kv::TenantId id) {
  std::lock_guard<std::mutex> l(mu_);
  VELOCE_ASSIGN_OR_RETURN(TenantMetadata meta, LoadLocked(id));
  if (meta.state == TenantState::kDestroyed) {
    return Status::InvalidArgument("tenant is destroyed");
  }
  meta.state = TenantState::kSuspended;
  return PersistLocked(meta);
}

Status TenantController::ResumeTenant(kv::TenantId id) {
  std::lock_guard<std::mutex> l(mu_);
  VELOCE_ASSIGN_OR_RETURN(TenantMetadata meta, LoadLocked(id));
  if (meta.state == TenantState::kDestroyed) {
    return Status::InvalidArgument("tenant is destroyed");
  }
  meta.state = TenantState::kActive;
  return PersistLocked(meta);
}

Status TenantController::DestroyTenant(kv::TenantId id) {
  std::lock_guard<std::mutex> l(mu_);
  VELOCE_ASSIGN_OR_RETURN(TenantMetadata meta, LoadLocked(id));
  meta.state = TenantState::kDestroyed;
  ca_->Revoke(id);
  VELOCE_RETURN_IF_ERROR(cluster_->DestroyTenantKeyspace(id));
  return PersistLocked(meta);
}

Status TenantController::SetEcpuLimit(kv::TenantId id, double vcpus) {
  std::lock_guard<std::mutex> l(mu_);
  VELOCE_ASSIGN_OR_RETURN(TenantMetadata meta, LoadLocked(id));
  meta.ecpu_limit_vcpus = vcpus;
  return PersistLocked(meta);
}

StatusOr<TenantCert> TenantController::IssueCert(kv::TenantId id) const {
  std::lock_guard<std::mutex> l(mu_);
  VELOCE_ASSIGN_OR_RETURN(TenantMetadata meta, LoadLocked(id));
  if (meta.state == TenantState::kDestroyed) {
    return Status::Unauthorized("tenant is destroyed");
  }
  return ca_->Issue(id);
}

}  // namespace veloce::tenant
