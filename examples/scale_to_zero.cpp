// Scale-to-zero demo: a tenant sees load, the autoscaler provisions SQL
// nodes (4x-average / 1.33x-peak rule), the load stops, the tenant is
// suspended to zero compute, and a later connection cold-starts it again
// in under a second. Prints a timeline.
//
//   ./build/examples/scale_to_zero

#include <cstdio>

#include "common/logging.h"
#include "serverless/cluster.h"

int main() {
  using namespace veloce;
  serverless::ServerlessCluster cluster;
  auto tenant = cluster.CreateTenant("bursty-app");
  VELOCE_CHECK(tenant.ok());
  cluster.autoscaler()->Start();

  auto report = [&](const char* event) {
    std::printf("[t=%6.1f min] %-28s nodes=%d suspended=%s\n",
                static_cast<double>(cluster.loop()->Now()) / kMinute, event,
                cluster.autoscaler()->CurrentNodes(tenant->id),
                cluster.autoscaler()->suspended(tenant->id) ? "yes" : "no");
  };

  report("tenant created (no load)");

  // Light load appears.
  cluster.SetTenantCpuUsage(tenant->id, 1.5);
  cluster.loop()->RunFor(2 * kMinute);
  report("1.5 vCPU of load");

  // Load grows: the 4x-average rule provisions more nodes.
  cluster.SetTenantCpuUsage(tenant->id, 6.0);
  cluster.loop()->RunFor(6 * kMinute);
  report("6 vCPU sustained");

  // A sharp spike: the 1.33x-peak rule reacts within seconds.
  cluster.SetTenantCpuUsage(tenant->id, 14.0);
  cluster.loop()->RunFor(30 * kSecond);
  report("spike to 14 vCPU (30s later)");

  // Load stops entirely.
  cluster.SetTenantCpuUsage(tenant->id, 0.0);
  cluster.loop()->RunFor(7 * kMinute);
  report("idle 7 min (window draining)");
  cluster.loop()->RunFor(18 * kMinute);
  report("idle 25 min -> suspended");

  // Cold start from zero.
  const Nanos t0 = cluster.loop()->Now();
  auto conn = cluster.ConnectSync(tenant->id);
  VELOCE_CHECK(conn.ok());
  std::printf("[t=%6.1f min] reconnect after suspend: cold start %.0f ms\n",
              static_cast<double>(cluster.loop()->Now()) / kMinute,
              static_cast<double>(cluster.loop()->Now() - t0) / 1e6);
  VELOCE_CHECK((*conn)->session->Execute("SELECT 1").ok());
  cluster.loop()->RunFor(10 * kSecond);  // let the autoscaler observe the resume
  report("first query served");
  return 0;
}
