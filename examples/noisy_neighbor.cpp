// Noisy-neighbor demo: two tenants share one KV node. Tenant "noisy"
// floods it; tenant "polite" sends occasional small operations. With
// admission control the polite tenant's operations are admitted ahead of
// the flood (tenant-fair hierarchy of heaps); an eCPU limit additionally
// caps the noisy tenant's total consumption.
//
//   ./build/examples/noisy_neighbor

#include <cstdio>

#include "admission/controller.h"
#include "billing/token_bucket.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "sim/event_loop.h"
#include "sim/virtual_cpu.h"

using namespace veloce;

namespace {

struct RunResult {
  Histogram polite_latency;
  Nanos noisy_cpu = 0;
  double node_utilization = 0;
};

RunResult RunScenario(bool admission_enabled, double noisy_ecpu_limit) {
  sim::EventLoop loop;
  sim::VirtualCpu cpu(&loop, /*vcpus=*/8);
  admission::NodeAdmissionController ac(
      &loop, &cpu, {.vcpus = 8, .enabled = admission_enabled});
  billing::TokenBucketServer bucket(loop.clock(), noisy_ecpu_limit);
  billing::TokenBucketClient bucket_client(&bucket, 1, loop.clock());

  // Noisy tenant: 32 closed-loop workers, 5ms ops.
  struct Worker {
    Random rng{1};
  };
  std::function<void()> noisy_op = [&]() {
    const Nanos throttle = bucket_client.Consume(5.0);  // 5ms = 5 tokens
    loop.Schedule(throttle, [&] {
      admission::KvWork work;
      work.tenant_id = 1;
      work.cpu_cost = 5 * kMilli;
      work.done = [&] { noisy_op(); };
      ac.Submit(std::move(work));
    });
  };
  for (int i = 0; i < 32; ++i) noisy_op();

  // Polite tenant: one op every ~100ms, 1ms each.
  auto result = std::make_shared<RunResult>();
  std::function<void()> polite_op = [&loop, &ac, result, &polite_op]() {
    loop.Schedule(100 * kMilli, [&loop, &ac, result, &polite_op] {
      const Nanos start = loop.Now();
      admission::KvWork work;
      work.tenant_id = 2;
      work.cpu_cost = kMilli;
      work.done = [&loop, result, start, &polite_op] {
        result->polite_latency.Record(loop.Now() - start);
        polite_op();
      };
      ac.Submit(std::move(work));
    });
  };
  polite_op();

  loop.RunUntil(30 * kSecond);
  result->noisy_cpu = cpu.tenant_busy(1);
  result->node_utilization =
      static_cast<double>(cpu.total_busy()) / (30.0 * kSecond * 8);
  return *result;
}

}  // namespace

int main() {
  std::printf("two tenants on one 8-vCPU KV node; noisy floods, polite sends "
              "1ms ops every 100ms (30s sim)\n\n");
  std::printf("%-26s %12s %12s %14s %12s\n", "configuration", "polite p50",
              "polite p99", "noisy vCPUs", "node util");
  struct Config {
    const char* name;
    bool ac;
    double limit;
  };
  const Config configs[] = {
      {"no limits", false, 0},
      {"admission control", true, 0},
      {"AC + eCPU limit (2 vCPU)", true, 2.0},
  };
  for (const auto& config : configs) {
    RunResult result = RunScenario(config.ac, config.limit);
    std::printf("%-26s %12s %12s %14.1f %11.0f%%\n", config.name,
                Histogram::FormatNanos(result.polite_latency.P50()).c_str(),
                Histogram::FormatNanos(result.polite_latency.P99()).c_str(),
                static_cast<double>(result.noisy_cpu) / (30.0 * kSecond),
                result.node_utilization * 100);
  }
  std::printf("\nadmission control keeps the polite tenant's latency flat "
              "while staying work-conserving; the eCPU limit additionally "
              "caps what the noisy tenant can consume.\n");
  return 0;
}
