// Quickstart: stand up a Serverless deployment, create a virtual cluster
// (tenant), connect through the proxy — cold-starting a SQL node from the
// warm pool — and run SQL against it.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "common/logging.h"
#include "serverless/cluster.h"

int main() {
  using namespace veloce;

  // One region: a 3-node shared KV cluster, a simulated Kubernetes
  // substrate, a pre-warmed SQL node pool, the routing proxy, and the
  // autoscaler — all driven by a simulated clock.
  serverless::ServerlessCluster cluster;

  // Create a virtual cluster. It gets its own slice of the keyspace, its
  // own certificate, and starts suspended (zero compute).
  auto tenant = cluster.CreateTenant("acme-prod");
  VELOCE_CHECK(tenant.ok());
  std::printf("created virtual cluster '%s' (tenant id %llu)\n",
              tenant->name.c_str(),
              static_cast<unsigned long long>(tenant->id));

  // First connection: scale-from-zero. The proxy pulls a pre-warmed SQL
  // node, stamps it with the tenant certificate, and routes us in.
  const Nanos t0 = cluster.loop()->Now();
  auto conn = cluster.ConnectSync(tenant->id);
  VELOCE_CHECK(conn.ok());
  std::printf("connected; cold start took %.0f ms (sub-second, pre-warmed)\n",
              static_cast<double>(cluster.loop()->Now() - t0) / 1e6);

  // Plain SQL over the virtualized keyspace.
  sql::Session* session = (*conn)->session;
  auto exec = [&](const std::string& stmt) {
    auto result = session->Execute(stmt);
    VELOCE_CHECK(result.ok()) << stmt << ": " << result.status().ToString();
    return std::move(result).value();
  };
  exec("CREATE TABLE accounts (id INT PRIMARY KEY, owner STRING, balance INT)");
  exec("INSERT INTO accounts VALUES (1, 'ada', 900), (2, 'alan', 150), "
       "(3, 'grace', 2500)");
  exec("CREATE INDEX accounts_by_owner ON accounts (owner)");

  // Transactional transfer.
  exec("BEGIN");
  exec("UPDATE accounts SET balance = balance - 100 WHERE id = 3");
  exec("UPDATE accounts SET balance = balance + 100 WHERE id = 2");
  exec("COMMIT");

  auto rs = exec("SELECT owner, balance FROM accounts ORDER BY balance DESC");
  std::printf("\n%s\n", rs.ToString().c_str());

  auto total = exec("SELECT COUNT(*) AS n, SUM(balance) AS total FROM accounts");
  std::printf("%llu accounts, total balance %lld (conserved by the txn)\n",
              static_cast<unsigned long long>(total.rows[0][0].int_value()),
              static_cast<long long>(total.rows[0][1].int_value()));
  return 0;
}
