// Interactive SQL shell over a Serverless virtual cluster: the quickest way
// to poke at the engine by hand.
//
//   ./build/examples/sql_shell
//   veloce> CREATE TABLE t (id INT PRIMARY KEY, v STRING);
//   veloce> INSERT INTO t VALUES (1, 'hello');
//   veloce> SELECT * FROM t;
//   veloce> \q
//
// Meta-commands: \q quit, \tables list tables, \stats connector counters,
// \pushdown on|off toggle the KV push-down.

#include <cstdio>
#include <iostream>
#include <string>

#include "common/logging.h"
#include "serverless/cluster.h"

int main() {
  using namespace veloce;
  serverless::ServerlessCluster cluster;
  auto tenant = cluster.CreateTenant("shell");
  VELOCE_CHECK(tenant.ok());
  auto conn = cluster.ConnectSync(tenant->id);
  VELOCE_CHECK(conn.ok());
  sql::Session* session = (*conn)->session;

  std::printf("veloce sql shell — virtual cluster '%s'. \\q to quit.\n",
              tenant->name.c_str());
  std::string line;
  std::string buffer;
  while (true) {
    std::printf(buffer.empty() ? "veloce> " : "   ...> ");
    if (!std::getline(std::cin, line)) break;
    if (line == "\\q" || line == "quit" || line == "exit") break;
    if (line == "\\tables") {
      auto tables = (*conn)->node->catalog()->ListTables();
      if (tables.ok()) {
        for (const auto& name : *tables) std::printf("  %s\n", name.c_str());
      }
      continue;
    }
    if (line == "\\stats") {
      const auto& f = (*conn)->node->connector()->features();
      std::printf("  read batches %.0f (%.0f reqs, %.0f bytes); write batches "
                  "%.0f (%.0f reqs, %.0f bytes); marshaled %llu bytes\n",
                  f.read_batches, f.read_requests, f.read_bytes, f.write_batches,
                  f.write_requests, f.write_bytes,
                  static_cast<unsigned long long>(
                      (*conn)->node->connector()->marshaled_bytes()));
      continue;
    }
    if (line.rfind("\\pushdown", 0) == 0) {
      const bool on = line.find("on") != std::string::npos;
      session->SetSetting("kv_pushdown", on ? "on" : "off");
      std::printf("  kv_pushdown = %s\n", on ? "on" : "off");
      continue;
    }
    buffer += line;
    // Execute once the statement is terminated (or the line is non-empty
    // and has no trailing continuation).
    if (buffer.find(';') == std::string::npos && !line.empty()) {
      buffer += " ";
      continue;
    }
    if (buffer.empty()) continue;
    auto result = session->Execute(buffer);
    buffer.clear();
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%s", result->ToString().c_str());
  }
  return 0;
}
