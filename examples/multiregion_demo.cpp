// Multi-region demo: a virtual cluster spanning three regions, and how the
// system-database configuration determines cold start latency in each
// (Section 3.2.5 / Fig 10b). Shows per-region first-query latency with the
// default (single lease region) layout vs the region-aware layout (GLOBAL
// descriptor tables + REGIONAL BY ROW sql_instances).
//
//   ./build/examples/multiregion_demo

#include <cstdio>

#include "common/logging.h"
#include "serverless/cluster.h"
#include "serverless/multiregion.h"

int main() {
  using namespace veloce;

  sim::RegionTopology topology = sim::RegionTopology::PaperDefaults();
  std::printf("host cluster regions:");
  for (const auto& region : topology.regions()) std::printf(" %s", region.c_str());
  std::printf("\nRTTs: us<->eu %lldms, us<->asia %lldms, eu<->asia %lldms\n\n",
              static_cast<long long>(topology.Rtt("us-central1", "europe-west1") / kMilli),
              static_cast<long long>(topology.Rtt("us-central1", "asia-southeast1") / kMilli),
              static_cast<long long>(topology.Rtt("europe-west1", "asia-southeast1") / kMilli));

  // Create a multi-region tenant (regions recorded in its metadata).
  serverless::ServerlessCluster cluster;
  auto meta = cluster.tenants()->CreateTenant(
      "global-app", {"us-central1", "europe-west1", "asia-southeast1"});
  VELOCE_CHECK(meta.ok());
  auto loaded = cluster.tenants()->GetTenant(meta->id);
  std::printf("virtual cluster '%s' spans %zu regions\n\n", loaded->name.c_str(),
              loaded->regions.size());

  // Cold-start latency model per region and per system-database layout.
  serverless::ColdStartLatencyModel unoptimized(
      &topology, {.region_aware = false, .lease_region = "asia-southeast1"});
  serverless::ColdStartLatencyModel region_aware(&topology, {.region_aware = true});

  const Nanos local_path = 170 * kMilli;  // pod stamp + proxy + auth (pre-warmed)
  std::printf("%-18s %26s %26s\n", "connect from", "leases in asia (default)",
              "region-aware system db");
  for (const auto& region : topology.regions()) {
    std::printf("%-18s %23.0f ms %23.0f ms\n", region.c_str(),
                static_cast<double>(local_path +
                                    unoptimized.TotalNetworkLatency(region)) / 1e6,
                static_cast<double>(local_path +
                                    region_aware.TotalNetworkLatency(region)) / 1e6);
  }
  std::printf("\nGLOBAL tables serve the schema reads locally in every region; "
              "REGIONAL BY ROW gives each node a local leaseholder for its "
              "sql_instances row; META lookups use follower reads. Result: "
              "sub-second cold starts everywhere.\n");
  return 0;
}
