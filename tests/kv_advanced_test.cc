// Tests for the later-added KV features: follower reads with closed
// timestamps, and MVCC version garbage collection.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "kv/cluster.h"
#include "kv/keys.h"
#include "kv/mvcc.h"

namespace veloce::kv {
namespace {

// ---------------------------------------------------------------------------
// Follower reads / closed timestamps
// ---------------------------------------------------------------------------

class FollowerReadTest : public ::testing::Test {
 protected:
  FollowerReadTest() : clock_(kHour) {
    KVClusterOptions opts;
    opts.num_nodes = 3;
    opts.clock = &clock_;
    cluster_ = std::make_unique<KVCluster>(opts);
    VELOCE_CHECK_OK(cluster_->CreateTenantKeyspace(10));
    BatchRequest put;
    put.tenant_id = 10;
    put.ts = cluster_->Now();
    put.AddPut(AddTenantPrefix(10, "key"), "stable-value");
    VELOCE_CHECK(cluster_->Send(put).ok());
    write_ts_ = cluster_->Now();
    clock_.Advance(10 * kSecond);  // let the write fall below the closed ts
  }

  ManualClock clock_;
  std::unique_ptr<KVCluster> cluster_;
  Timestamp write_ts_;
};

TEST_F(FollowerReadTest, ClosedTimestampTrailsNow) {
  const Timestamp closed = cluster_->ClosedTimestamp();
  EXPECT_LT(closed, cluster_->Now());
  EXPECT_EQ(cluster_->Now().wall - closed.wall, 3 * kSecond);
}

TEST_F(FollowerReadTest, StaleReadServedWhenLeaseholderDown) {
  // Kill the leaseholder of the key's range outright (SetNodeLive would
  // shed the lease; suppress that by marking all other nodes the problem).
  auto range = *cluster_->LookupRange(AddTenantPrefix(10, "key"));
  // Take the leaseholder down *without* shedding its leases, simulating
  // the moment of failure before the lease moves.
  cluster_->node(range.leaseholder)->SetLive(false);

  // A current-time read fails: no live leaseholder.
  BatchRequest current;
  current.tenant_id = 10;
  current.ts = cluster_->Now();
  current.AddGet(AddTenantPrefix(10, "key"));
  EXPECT_EQ(cluster_->Send(current).status().code(), Code::kUnavailable);

  // A stale follower read below the closed timestamp succeeds.
  BatchRequest stale;
  stale.tenant_id = 10;
  stale.ts = cluster_->ClosedTimestamp();
  stale.allow_follower_reads = true;
  stale.AddGet(AddTenantPrefix(10, "key"));
  auto resp = cluster_->Send(stale);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_TRUE(resp->responses[0].found);
  EXPECT_EQ(resp->responses[0].value, "stable-value");
}

TEST_F(FollowerReadTest, FreshReadNotServedByFollower) {
  auto range = *cluster_->LookupRange(AddTenantPrefix(10, "key"));
  cluster_->node(range.leaseholder)->SetLive(false);
  // Above the closed timestamp, the follower-read flag doesn't help.
  BatchRequest fresh;
  fresh.tenant_id = 10;
  fresh.ts = cluster_->Now();
  fresh.allow_follower_reads = true;
  fresh.AddGet(AddTenantPrefix(10, "key"));
  EXPECT_EQ(cluster_->Send(fresh).status().code(), Code::kUnavailable);
}

TEST_F(FollowerReadTest, WritesNeverLandBelowClosedTimestamp) {
  // A write requested at a stale timestamp gets bumped above the closed
  // timestamp, so follower reads can never miss a commit.
  BatchRequest put;
  put.tenant_id = 10;
  put.ts = Timestamp{cluster_->ClosedTimestamp().wall - kSecond, 0};
  put.AddPut(AddTenantPrefix(10, "late-write"), "v");
  auto resp = *cluster_->Send(put);
  EXPECT_GT(resp.bumped_write_ts, cluster_->ClosedTimestamp());
}

TEST_F(FollowerReadTest, FollowerScanWorks) {
  for (int i = 0; i < 5; ++i) {
    BatchRequest put;
    put.tenant_id = 10;
    put.ts = cluster_->Now();
    put.AddPut(AddTenantPrefix(10, "scan" + std::to_string(i)), "v");
    ASSERT_TRUE(cluster_->Send(put).ok());
  }
  clock_.Advance(10 * kSecond);
  const Timestamp stale_ts = cluster_->ClosedTimestamp();
  auto range = *cluster_->LookupRange(AddTenantPrefix(10, "scan0"));
  cluster_->node(range.leaseholder)->SetLive(false);

  BatchRequest scan;
  scan.tenant_id = 10;
  scan.ts = stale_ts;
  scan.allow_follower_reads = true;
  scan.AddScan(AddTenantPrefix(10, "scan"), AddTenantPrefix(10, "scanz"), 0);
  auto resp = cluster_->Send(scan);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->responses[0].rows.size(), 5u);
}

// ---------------------------------------------------------------------------
// MVCC garbage collection
// ---------------------------------------------------------------------------

class MvccGcTest : public ::testing::Test {
 protected:
  MvccGcTest() { engine_ = std::move(storage::Engine::Open({})).value(); }

  void Put(const std::string& key, Nanos wall, const std::string& value) {
    storage::WriteBatch batch;
    MvccPutValue(&batch, key, {wall, 0}, value);
    VELOCE_CHECK_OK(engine_->Write(batch));
  }
  void Del(const std::string& key, Nanos wall) {
    storage::WriteBatch batch;
    MvccPutTombstone(&batch, key, {wall, 0});
    VELOCE_CHECK_OK(engine_->Write(batch));
  }
  int CountVersions(const std::string& key) {
    auto it = engine_->NewIterator();
    int count = 0;
    for (it->Seek(EncodeIntentKey(key)); it->Valid(); it->Next()) {
      std::string user_key;
      Timestamp ts;
      bool is_intent;
      if (!DecodeMvccKey(it->key(), &user_key, &ts, &is_intent)) break;
      if (user_key != key) break;
      if (!is_intent) ++count;
    }
    return count;
  }

  std::unique_ptr<storage::Engine> engine_;
};

TEST_F(MvccGcTest, RemovesShadowedVersionsKeepsVisible) {
  Put("k", 10, "v10");
  Put("k", 20, "v20");
  Put("k", 30, "v30");
  Put("k", 40, "v40");
  // GC at ts=25: v20 is the newest version <= 25 and must survive; v10 is
  // shadowed; v30/v40 are newer and survive.
  const uint64_t removed = *MvccGarbageCollect(engine_.get(), "k", "l", {25, 0});
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(CountVersions("k"), 3);
  // Reads at and above the threshold are unchanged.
  EXPECT_EQ(*(*MvccGet(engine_.get(), "k", {25, 0})).value, "v20");
  EXPECT_EQ(*(*MvccGet(engine_.get(), "k", {35, 0})).value, "v30");
  EXPECT_EQ(*(*MvccGet(engine_.get(), "k", {100, 0})).value, "v40");
}

TEST_F(MvccGcTest, RemovesDeadTombstoneHistories) {
  Put("gone", 10, "v");
  Del("gone", 20);
  Put("alive", 10, "v");
  const uint64_t removed = *MvccGarbageCollect(engine_.get(), "a", "z", {50, 0});
  // "gone": both the shadowed value and the boundary tombstone go.
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(CountVersions("gone"), 0);
  EXPECT_EQ(CountVersions("alive"), 1);
  EXPECT_FALSE((*MvccGet(engine_.get(), "gone", {100, 0})).value.has_value());
  EXPECT_TRUE((*MvccGet(engine_.get(), "alive", {100, 0})).value.has_value());
}

TEST_F(MvccGcTest, LeavesIntentsAlone) {
  Put("k", 10, "old");
  storage::WriteBatch batch;
  MvccPutIntent(&batch, "k", /*txn=*/7, {30, 0}, false, "pending");
  ASSERT_TRUE(engine_->Write(batch).ok());
  ASSERT_TRUE(MvccGarbageCollect(engine_.get(), "k", "l", {50, 0}).ok());
  auto intent = *MvccGetIntent(engine_.get(), "k");
  ASSERT_TRUE(intent.has_value());
  EXPECT_EQ(intent->txn_id, 7u);
}

TEST_F(MvccGcTest, RespectsSpanBounds) {
  Put("a", 10, "v1");
  Put("a", 20, "v2");
  Put("z", 10, "v1");
  Put("z", 20, "v2");
  ASSERT_TRUE(MvccGarbageCollect(engine_.get(), "a", "b", {50, 0}).ok());
  EXPECT_EQ(CountVersions("a"), 1);
  EXPECT_EQ(CountVersions("z"), 2);  // outside the span
}

TEST_F(MvccGcTest, ClusterLevelTenantGc) {
  KVClusterOptions opts;
  opts.num_nodes = 3;
  KVCluster cluster(opts);
  ASSERT_TRUE(cluster.CreateTenantKeyspace(10).ok());
  for (int version = 0; version < 5; ++version) {
    BatchRequest put;
    put.tenant_id = 10;
    put.ts = cluster.Now();
    put.AddPut(AddTenantPrefix(10, "hot"), "v" + std::to_string(version));
    ASSERT_TRUE(cluster.Send(put).ok());
  }
  const Timestamp cutoff = cluster.Now();
  const uint64_t removed = *cluster.GarbageCollectTenant(10, cutoff);
  // 4 shadowed versions on each of the 3 replicas.
  EXPECT_EQ(removed, 12u);
  BatchRequest get;
  get.tenant_id = 10;
  get.ts = cluster.Now();
  get.AddGet(AddTenantPrefix(10, "hot"));
  EXPECT_EQ((*cluster.Send(get)).responses[0].value, "v4");
}

// ---------------------------------------------------------------------------
// Batch codec: the follower-read flag round-trips
// ---------------------------------------------------------------------------

TEST(BatchFollowerFlagTest, EncodeDecode) {
  BatchRequest req;
  req.tenant_id = 1;
  req.ts = {5, 0};
  req.allow_follower_reads = true;
  req.AddGet("k");
  auto decoded = *BatchRequest::Decode(req.Encode());
  EXPECT_TRUE(decoded.allow_follower_reads);
  req.allow_follower_reads = false;
  decoded = *BatchRequest::Decode(req.Encode());
  EXPECT_FALSE(decoded.allow_follower_reads);
}

}  // namespace
}  // namespace veloce::kv
