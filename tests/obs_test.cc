// Unit tests for the observability layer: MetricsRegistry handle dedup,
// snapshots and exports, collect callbacks, and request tracing.

#include <gtest/gtest.h>

#include <string>

#include "common/clock.h"
#include "obs/metrics.h"
#include "obs/obs_context.h"
#include "obs/trace.h"

namespace veloce::obs {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CounterDedupByNameAndLabels) {
  MetricsRegistry reg;
  Counter* a = reg.counter("veloce_test_total", {{"node", "1"}});
  Counter* b = reg.counter("veloce_test_total", {{"node", "1"}});
  Counter* c = reg.counter("veloce_test_total", {{"node", "2"}});
  Counter* d = reg.counter("veloce_other_total", {{"node", "1"}});
  EXPECT_EQ(a, b);  // same (name, labels) -> same handle
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  a->Inc(3);
  b->Inc(2);
  EXPECT_EQ(a->value(), 5u);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(reg.NumSeries(), 3u);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry reg;
  Counter* a = reg.counter("veloce_test_total", {{"a", "1"}, {"b", "2"}});
  Counter* b = reg.counter("veloce_test_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge* g = reg.gauge("veloce_test_gauge");
  g->Set(2.5);
  g->Add(1.5);
  EXPECT_DOUBLE_EQ(g->value(), 4.0);
  EXPECT_DOUBLE_EQ(reg.Value("veloce_test_gauge"), 4.0);
}

TEST(MetricsRegistryTest, HistogramSnapshot) {
  MetricsRegistry reg;
  HistogramMetric* h = reg.histogram("veloce_test_ns");
  for (int i = 1; i <= 100; ++i) h->Record(i * 1000);
  Histogram snap = h->Snapshot();
  EXPECT_EQ(snap.count(), 100u);
  EXPECT_GE(snap.P99(), snap.P50());
  // The snapshot is a copy: later records don't mutate it.
  h->Record(1000000);
  EXPECT_EQ(snap.count(), 100u);
  EXPECT_EQ(h->Snapshot().count(), 101u);
}

TEST(MetricsRegistryTest, SnapshotSortedAndComplete) {
  MetricsRegistry reg;
  reg.counter("veloce_b_total")->Inc();
  reg.counter("veloce_a_total", {{"node", "2"}})->Inc(2);
  reg.counter("veloce_a_total", {{"node", "1"}})->Inc(1);
  reg.gauge("veloce_c_gauge")->Set(7);
  auto samples = reg.Snapshot();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].name, "veloce_a_total");
  EXPECT_EQ(samples[0].labels, (Labels{{"node", "1"}}));
  EXPECT_EQ(samples[1].labels, (Labels{{"node", "2"}}));
  EXPECT_EQ(samples[2].name, "veloce_b_total");
  EXPECT_EQ(samples[3].name, "veloce_c_gauge");
  EXPECT_DOUBLE_EQ(samples[3].value, 7.0);
}

TEST(MetricsRegistryTest, PrometheusExportGolden) {
  MetricsRegistry reg;
  reg.counter("veloce_req_total", {{"node", "0"}})->Inc(5);
  reg.counter("veloce_req_total", {{"node", "1"}})->Inc(7);
  reg.gauge("veloce_depth")->Set(3);
  const std::string expected =
      "# TYPE veloce_depth gauge\n"
      "veloce_depth 3\n"
      "# TYPE veloce_req_total counter\n"
      "veloce_req_total{node=\"0\"} 5\n"
      "veloce_req_total{node=\"1\"} 7\n";
  EXPECT_EQ(reg.ExportPrometheus(), expected);
}

TEST(MetricsRegistryTest, JsonExportGolden) {
  MetricsRegistry reg;
  reg.counter("veloce_req_total", {{"node", "0"}})->Inc(5);
  const std::string json = reg.ExportJson();
  EXPECT_NE(json.find("\"name\":\"veloce_req_total\""), std::string::npos);
  EXPECT_NE(json.find("\"labels\":{\"node\":\"0\"}"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":5"), std::string::npos);
}

TEST(MetricsRegistryTest, CollectCallbackRefreshesGauges) {
  MetricsRegistry reg;
  int depth = 0;
  auto token = reg.AddCollectCallback([&] {
    reg.gauge("veloce_live_depth")->Set(static_cast<double>(depth));
  });
  depth = 4;
  EXPECT_DOUBLE_EQ(reg.Value("veloce_live_depth"), 4.0);
  depth = 9;
  EXPECT_DOUBLE_EQ(reg.Value("veloce_live_depth"), 9.0);
  token.reset();  // unregistered: the gauge keeps its last value
  depth = 123;
  EXPECT_DOUBLE_EQ(reg.Value("veloce_live_depth"), 9.0);
}

TEST(MetricsRegistryTest, SumAcrossLabels) {
  MetricsRegistry reg;
  reg.counter("veloce_x_total", {{"node", "0"}})->Inc(2);
  reg.counter("veloce_x_total", {{"node", "1"}})->Inc(3);
  EXPECT_DOUBLE_EQ(reg.Sum("veloce_x_total"), 5.0);
  EXPECT_DOUBLE_EQ(reg.Sum("veloce_missing"), 0.0);
}

TEST(ObsContextTest, DefaultsAreNoop) {
  ObsContext obs;
  EXPECT_EQ(obs.clock_or_real(), RealClock::Instance());
  EXPECT_EQ(obs.metrics_or_noop(), MetricsRegistry::Noop());
  EXPECT_FALSE(obs.tracing_enabled());
  // Noop registry accepts increments without exporting anything new for us
  // to manage (it's process-shared).
  obs.metrics_or_noop()->counter("veloce_ignored_total")->Inc();
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

TEST(TraceTest, SpanParentingUnderSimClock) {
  ManualClock clock;
  TraceContext trace(&clock, "SELECT 1");
  const size_t outer = trace.OpenSpan("execute");
  clock.Advance(10 * kMicro);
  {
    ScopedSpan inner(&trace, "storage_read");
    clock.Advance(5 * kMicro);
  }
  clock.Advance(1 * kMicro);
  trace.CloseSpan(outer);

  const auto& events = trace.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "execute");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].name, "storage_read");
  EXPECT_EQ(events[1].depth, 1);  // nested under "execute"
  EXPECT_EQ(events[0].dur, 16 * kMicro);
  EXPECT_EQ(events[1].dur, 5 * kMicro);
  EXPECT_EQ(trace.StageDuration("storage_read"), 5 * kMicro);
}

TEST(TraceTest, AddDurationAggregates) {
  ManualClock clock;
  TraceContext trace(&clock, "stmt");
  trace.AddDuration("marshal", 100);
  trace.AddDuration("marshal", 50);
  trace.RecordDuration("admission_queue", 7);
  EXPECT_EQ(trace.StageDuration("marshal"), 150);
  EXPECT_EQ(trace.StageDuration("admission_queue"), 7);
  ASSERT_EQ(trace.events().size(), 2u);
}

TEST(TraceTest, ScopedSpanNullContextIsNoop) {
  ScopedSpan span(nullptr, "anything");  // must not crash
}

TEST(TraceCollectorTest, RingBufferKeepsMostRecent) {
  ManualClock clock;
  TraceCollector collector(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    TraceContext trace(&clock, "t" + std::to_string(i));
    clock.Advance(kMicro);
    collector.Finish(trace);
  }
  EXPECT_EQ(collector.finished_total(), 10u);
  EXPECT_EQ(collector.retained(), 4u);
}

TEST(TraceCollectorTest, SlowestOrderingAndDump) {
  ManualClock clock;
  TraceCollector collector;
  for (Nanos dur : {3 * kMilli, 9 * kMilli, 1 * kMilli}) {
    TraceContext trace(&clock, "dur" + std::to_string(dur / kMilli));
    trace.RecordDuration("admission_queue", dur / 2);
    clock.Advance(dur);
    collector.Finish(trace);
  }
  auto slowest = collector.Slowest(2);
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_EQ(slowest[0].label, "dur9");
  EXPECT_EQ(slowest[0].total, 9 * kMilli);
  EXPECT_EQ(slowest[1].label, "dur3");
  const std::string dump = collector.DumpSlowest(2);
  EXPECT_NE(dump.find("dur9"), std::string::npos);
  EXPECT_NE(dump.find("admission_queue"), std::string::npos);
  EXPECT_EQ(dump.find("dur1"), std::string::npos);
}

TEST(TraceCollectorTest, ZeroElapsedFallsBackToStageSum) {
  ManualClock clock;  // never advanced: the sim-instantaneous case
  TraceCollector collector;
  TraceContext trace(&clock, "instant");
  trace.AddDuration("marshal", 40 * kMicro);
  trace.AddDuration("admission_queue", 10 * kMicro);
  collector.Finish(trace);
  auto slowest = collector.Slowest(1);
  ASSERT_EQ(slowest.size(), 1u);
  EXPECT_EQ(slowest[0].total, 50 * kMicro);
}

}  // namespace
}  // namespace veloce::obs
