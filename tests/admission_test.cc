#include <gtest/gtest.h>

#include "admission/controller.h"
#include "admission/cpu_controller.h"
#include "admission/work_queue.h"
#include "admission/write_controller.h"
#include "sim/event_loop.h"
#include "sim/virtual_cpu.h"

namespace veloce::admission {
namespace {

// ---------------------------------------------------------------------------
// TenantFairQueue
// ---------------------------------------------------------------------------

class FairQueueTest : public ::testing::Test {
 protected:
  FairQueueTest() : clock_(0), queue_(&clock_) {}

  WorkItem Item(uint64_t tenant, int32_t priority = 0, Nanos txn_start = 0) {
    WorkItem item;
    item.tenant_id = tenant;
    item.priority = priority;
    item.txn_start = txn_start;
    item.run = [] {};
    return item;
  }

  ManualClock clock_;
  TenantFairQueue queue_;
};

TEST_F(FairQueueTest, LeastConsumingTenantServedFirst) {
  queue_.RecordConsumption(1, 1000);
  queue_.RecordConsumption(2, 10);
  queue_.Enqueue(Item(1));
  queue_.Enqueue(Item(2));
  auto first = queue_.Dequeue();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->tenant_id, 2u);
  EXPECT_EQ(queue_.Dequeue()->tenant_id, 1u);
}

TEST_F(FairQueueTest, RoundRobinUnderEqualConsumptionViaAccounting) {
  // Two tenants each queue 10 items; consumption is recorded as items are
  // admitted, so service alternates rather than draining one tenant.
  for (int i = 0; i < 10; ++i) {
    queue_.Enqueue(Item(1));
    queue_.Enqueue(Item(2));
  }
  int last = -1, alternations = 0;
  for (int i = 0; i < 20; ++i) {
    auto item = queue_.Dequeue();
    ASSERT_TRUE(item.has_value());
    queue_.RecordConsumption(item->tenant_id, 100);
    if (last != -1 && static_cast<int>(item->tenant_id) != last) ++alternations;
    last = static_cast<int>(item->tenant_id);
  }
  EXPECT_GE(alternations, 15);  // near-perfect alternation
}

TEST_F(FairQueueTest, PriorityWithinTenant) {
  queue_.Enqueue(Item(1, /*priority=*/0, /*txn_start=*/5));
  queue_.Enqueue(Item(1, /*priority=*/10, /*txn_start=*/9));
  queue_.Enqueue(Item(1, /*priority=*/0, /*txn_start=*/1));
  EXPECT_EQ(queue_.Dequeue()->priority, 10);
  // Same priority: older transaction first.
  EXPECT_EQ(queue_.Dequeue()->txn_start, 1);
  EXPECT_EQ(queue_.Dequeue()->txn_start, 5);
}

TEST_F(FairQueueTest, ExpiredItemsDropped) {
  WorkItem expired = Item(1);
  expired.deadline = 100;
  queue_.Enqueue(std::move(expired));
  queue_.Enqueue(Item(2));
  clock_.SetTime(200);
  auto item = queue_.Dequeue();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->tenant_id, 2u);
  EXPECT_FALSE(queue_.Dequeue().has_value());
  EXPECT_TRUE(queue_.empty());
}

TEST_F(FairQueueTest, DecayHalvesConsumption) {
  queue_.RecordConsumption(1, 1000);
  queue_.Decay();
  EXPECT_EQ(queue_.consumption(1), 500u);
  queue_.Decay();
  EXPECT_EQ(queue_.consumption(1), 250u);
}

TEST_F(FairQueueTest, QueueCountsPerTenant) {
  queue_.Enqueue(Item(1));
  queue_.Enqueue(Item(1));
  queue_.Enqueue(Item(2));
  EXPECT_EQ(queue_.queued(), 3u);
  EXPECT_EQ(queue_.queued_for_tenant(1), 2u);
  EXPECT_EQ(queue_.queued_for_tenant(2), 1u);
  EXPECT_EQ(queue_.queued_for_tenant(3), 0u);
}

// ---------------------------------------------------------------------------
// CpuSlotController
// ---------------------------------------------------------------------------

TEST(CpuSlotControllerTest, StartsAtVcpus) {
  CpuSlotController ctl({.vcpus = 8});
  EXPECT_EQ(ctl.total_slots(), 8);
}

TEST(CpuSlotControllerTest, AcquireRelease) {
  CpuSlotController ctl({.vcpus = 2});
  EXPECT_TRUE(ctl.TryAcquire());
  EXPECT_TRUE(ctl.TryAcquire());
  EXPECT_FALSE(ctl.TryAcquire());
  ctl.Release();
  EXPECT_TRUE(ctl.TryAcquire());
}

TEST(CpuSlotControllerTest, ShrinksUnderRunnableBacklog) {
  CpuSlotController ctl({.vcpus = 4});
  const int before = ctl.total_slots();
  for (int i = 0; i < 3; ++i) ctl.Sample(/*runnable=*/100, /*work_waiting=*/true);
  EXPECT_LT(ctl.total_slots(), before);
  EXPECT_GE(ctl.total_slots(), 1);
}

TEST(CpuSlotControllerTest, GrowsWhenIdleAndWorkWaiting) {
  CpuSlotController ctl({.vcpus = 4});
  // Saturate the slots so growth is warranted.
  while (ctl.TryAcquire()) {
  }
  const int before = ctl.total_slots();
  ctl.Sample(/*runnable=*/0, /*work_waiting=*/true);
  EXPECT_EQ(ctl.total_slots(), before + 1);
}

TEST(CpuSlotControllerTest, NeverBelowMinOrAboveMax) {
  CpuSlotController ctl({.vcpus = 2, .min_slots = 1, .max_slots_per_vcpu = 4});
  for (int i = 0; i < 100; ++i) ctl.Sample(1000, true);
  EXPECT_EQ(ctl.total_slots(), 1);
  CpuSlotController ctl2({.vcpus = 2, .min_slots = 1, .max_slots_per_vcpu = 4});
  for (int i = 0; i < 100; ++i) {
    while (ctl2.TryAcquire()) {
    }
    ctl2.Sample(0, true);
  }
  EXPECT_EQ(ctl2.total_slots(), 8);
}

// ---------------------------------------------------------------------------
// LinearWriteModel / WriteTokenBucket
// ---------------------------------------------------------------------------

TEST(LinearWriteModelTest, UntrainedDefaults) {
  LinearWriteModel model;
  EXPECT_FALSE(model.trained());
  EXPECT_DOUBLE_EQ(model.a(), 3.0);
}

TEST(LinearWriteModelTest, LearnsSlope) {
  LinearWriteModel model;
  // y = 4x + 1000 with noise-free samples.
  for (int i = 1; i <= 50; ++i) {
    const double x = i * 100.0;
    model.AddSample(x, 4 * x + 1000);
  }
  EXPECT_TRUE(model.trained());
  EXPECT_NEAR(model.a(), 4.0, 0.3);
  EXPECT_GT(model.Predict(1000), 3500);
}

TEST(WriteTokenBucketTest, UncalibratedAdmitsFreely) {
  ManualClock clock(0);
  WriteTokenBucket bucket(&clock);
  EXPECT_FALSE(bucket.calibrated());
  EXPECT_TRUE(bucket.TryConsume(1'000'000'000));
}

TEST(WriteTokenBucketTest, CapacityFromEngineThroughput) {
  ManualClock clock(0);
  WriteTokenBucket bucket(&clock);
  storage::EngineStats stats;
  bucket.UpdateCapacity(stats, 0);  // snapshot baseline
  clock.Advance(WriteTokenBucket::kCapacityInterval);
  stats.flush_bytes = 150 << 20;  // 10 MB/s over 15s
  stats.ingest_bytes = 30 << 20;
  bucket.UpdateCapacity(stats, 0);
  ASSERT_TRUE(bucket.calibrated());
  EXPECT_NEAR(bucket.refill_bytes_per_sec(), 10 << 20, 1 << 20);
}

TEST(WriteTokenBucketTest, ThrottlesWhenDry) {
  ManualClock clock(0);
  WriteTokenBucket bucket(&clock);
  storage::EngineStats stats;
  bucket.UpdateCapacity(stats, 0);
  clock.Advance(WriteTokenBucket::kCapacityInterval);
  stats.flush_bytes = 15 << 20;  // 1 MB/s capacity
  bucket.UpdateCapacity(stats, 0);
  ASSERT_TRUE(bucket.calibrated());
  // Drain the burst.
  while (bucket.TryConsume(1 << 20)) {
  }
  EXPECT_FALSE(bucket.TryConsume(1 << 20));
  // After a second, ~1MB of tokens returned.
  clock.Advance(kSecond);
  EXPECT_TRUE(bucket.TryConsume(1 << 20) || bucket.TryConsume(1 << 19));
}

TEST(WriteTokenBucketTest, L0BacklogDiscountsCapacity) {
  ManualClock clock(0);
  WriteTokenBucket healthy_bucket(&clock), backlogged_bucket(&clock);
  storage::EngineStats stats;
  healthy_bucket.UpdateCapacity(stats, 0);
  backlogged_bucket.UpdateCapacity(stats, 0);
  clock.Advance(WriteTokenBucket::kCapacityInterval);
  stats.flush_bytes = 150 << 20;
  healthy_bucket.UpdateCapacity(stats, /*l0_files=*/2);
  backlogged_bucket.UpdateCapacity(stats, /*l0_files=*/32);
  EXPECT_LT(backlogged_bucket.refill_bytes_per_sec(),
            healthy_bucket.refill_bytes_per_sec() / 2);
}

TEST(WriteTokenBucketTest, WriteStallsDiscountCapacity) {
  // Time writers spent stalled (engine backpressure on immutable memtables
  // or L0) discounts admitted capacity for the next interval.
  ManualClock clock(0);
  WriteTokenBucket smooth_bucket(&clock), stalled_bucket(&clock);
  storage::EngineStats stats;
  smooth_bucket.UpdateCapacity(stats, 0);
  stalled_bucket.UpdateCapacity(stats, 0);
  clock.Advance(WriteTokenBucket::kCapacityInterval);
  stats.flush_bytes = 150 << 20;
  smooth_bucket.UpdateCapacity(stats, 0);
  // Same throughput, but writers spent half the interval stalled.
  stats.write_stalls = 40;
  stats.stall_seconds =
      0.5 * static_cast<double>(WriteTokenBucket::kCapacityInterval) / kSecond;
  stalled_bucket.UpdateCapacity(stats, 0);
  EXPECT_LT(stalled_bucket.refill_bytes_per_sec(),
            smooth_bucket.refill_bytes_per_sec());
  // The discount is floored: even a fully-stalled interval admits >= 25%.
  EXPECT_GE(stalled_bucket.refill_bytes_per_sec(),
            smooth_bucket.refill_bytes_per_sec() * 0.25);
}

// ---------------------------------------------------------------------------
// NodeAdmissionController end-to-end (on the event loop)
// ---------------------------------------------------------------------------

class AdmissionControllerTest : public ::testing::Test {
 protected:
  AdmissionControllerTest()
      : cpu_(&loop_, /*vcpus=*/4),
        controller_(&loop_, &cpu_,
                    {.vcpus = 4, .enabled = true}) {}

  KvWork Work(uint64_t tenant, Nanos cpu_cost, int* done_counter) {
    KvWork w;
    w.tenant_id = tenant;
    w.cpu_cost = cpu_cost;
    w.done = [done_counter] { ++*done_counter; };
    return w;
  }

  sim::EventLoop loop_;
  sim::VirtualCpu cpu_;
  NodeAdmissionController controller_;
};

TEST_F(AdmissionControllerTest, CompletesAllWork) {
  int done = 0;
  for (int i = 0; i < 50; ++i) {
    controller_.Submit(Work(i % 3 + 1, 2 * kMilli, &done));
  }
  loop_.RunFor(5 * kSecond);
  EXPECT_EQ(done, 50);
}

TEST_F(AdmissionControllerTest, WorkConservingUnderLoad) {
  // Offered load far above capacity: CPU should stay ~fully utilized.
  int done = 0;
  for (int i = 0; i < 400; ++i) {
    controller_.Submit(Work(1, 10 * kMilli, &done));
  }
  const Nanos start = loop_.Now();
  const Nanos busy0 = cpu_.total_busy();
  loop_.RunFor(500 * kMilli);
  const double util = cpu_.UtilizationSince(start, busy0);
  EXPECT_GT(util, 0.85);  // work-conserving: 90%+ CPU target
}

TEST_F(AdmissionControllerTest, FairSharingBetweenTenants) {
  // Tenant 1 floods; tenant 2 trickles. Per-tenant completed CPU should be
  // far closer than the 50:1 offered ratio during the contended window.
  int done1 = 0, done2 = 0;
  for (int i = 0; i < 500; ++i) controller_.Submit(Work(1, 5 * kMilli, &done1));
  for (int i = 0; i < 10; ++i) controller_.Submit(Work(2, 5 * kMilli, &done2));
  loop_.RunFor(300 * kMilli);
  // Tenant 2's small queue should fully drain while tenant 1 waits.
  EXPECT_EQ(done2, 10);
  EXPECT_LT(done1, 490);
}

TEST_F(AdmissionControllerTest, LongOpsAreSliced) {
  // One op needing 100ms of CPU must not block a tenant-2 op for 100ms.
  int long_done = 0, short_done = 0;
  controller_.Submit(Work(1, 100 * kMilli, &long_done));
  loop_.RunFor(5 * kMilli);
  Nanos short_finish = -1;
  KvWork w;
  w.tenant_id = 2;
  w.cpu_cost = 2 * kMilli;
  w.done = [&] {
    ++short_done;
    short_finish = loop_.Now();
  };
  controller_.Submit(std::move(w));
  loop_.RunFor(400 * kMilli);
  EXPECT_EQ(long_done, 1);
  EXPECT_EQ(short_done, 1);
  // The short op finished long before the long op's total demand.
  EXPECT_LT(short_finish, 60 * kMilli);
}

TEST_F(AdmissionControllerTest, DisabledControllerBypassesQueues) {
  sim::EventLoop loop;
  sim::VirtualCpu cpu(&loop, 2);
  NodeAdmissionController off(&loop, &cpu, {.vcpus = 2, .enabled = false});
  int done = 0;
  KvWork w;
  w.tenant_id = 1;
  w.cpu_cost = kMilli;
  w.done = [&] { ++done; };
  off.Submit(std::move(w));
  loop.Run();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(off.cq_queued(), 0u);
}

TEST_F(AdmissionControllerTest, WriteWorkThrottledByTokenBucket) {
  // Calibrate the bucket to a tiny capacity, then flood with writes.
  storage::EngineStats stats;
  controller_.UpdateWriteCapacity(stats, 0);
  loop_.RunFor(WriteTokenBucket::kCapacityInterval + kSecond);
  stats.flush_bytes = static_cast<uint64_t>(16) << 20;
  stats.ingest_bytes = 4 << 20;
  stats.wal_bytes = 5 << 20;
  controller_.UpdateWriteCapacity(stats, 0);
  ASSERT_TRUE(controller_.write_bucket().calibrated());

  int done = 0;
  for (int i = 0; i < 100; ++i) {
    KvWork w;
    w.tenant_id = 1;
    w.is_write = true;
    w.write_bytes = 1 << 20;  // 1MB payload, amplified by the model
    w.cpu_cost = kMilli / 10;
    w.done = [&] { ++done; };
    controller_.Submit(std::move(w));
  }
  loop_.RunFor(kSecond);
  // Far fewer than all 100 writes can clear a ~1MB/s bucket in 1 second.
  EXPECT_LT(done, 50);
  EXPECT_GT(controller_.wq_queued(), 0u);
}

}  // namespace
}  // namespace veloce::admission
