// Parameterized configuration sweeps: the same invariants checked across a
// grid of configurations (block sizes, replication factors, cache sizes).

#include <gtest/gtest.h>

#include <map>

#include "common/logging.h"
#include "common/random.h"
#include "kv/cluster.h"
#include "kv/keys.h"
#include "storage/engine.h"
#include "storage/sstable.h"

namespace veloce {
namespace {

// ---------------------------------------------------------------------------
// SSTable block-size sweep
// ---------------------------------------------------------------------------

class BlockSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(BlockSizeSweep, BuildSeekScanRoundTrip) {
  auto env = storage::NewMemEnv();
  std::unique_ptr<storage::WritableFile> wfile;
  ASSERT_TRUE(env->NewWritableFile("t.sst", &wfile).ok());
  storage::TableBuilder builder(std::move(wfile), GetParam());
  Random rnd(static_cast<uint64_t>(GetParam()));
  std::map<std::string, std::string> model;
  for (int i = 0; i < 400; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", i * 3);
    const std::string value = rnd.String(1 + rnd.Uniform(200));
    ASSERT_TRUE(builder
                    .Add(storage::MakeInternalKey(key, 1, storage::ValueType::kValue),
                         value)
                    .ok());
    model[key] = value;
  }
  ASSERT_TRUE(builder.Finish().ok());

  std::unique_ptr<storage::RandomAccessFile> rfile;
  ASSERT_TRUE(env->NewRandomAccessFile("t.sst", &rfile).ok());
  auto table = *storage::Table::Open(std::move(rfile));

  // Point lookups for present and absent keys.
  for (int i = 0; i < 100; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", static_cast<int>(rnd.Uniform(1200)));
    std::string fkey, fvalue;
    Status s = table->SeekEntry(
        storage::MakeInternalKey(key, storage::kMaxSequenceNumber,
                                 storage::ValueType::kValue),
        &fkey, &fvalue);
    auto it = model.lower_bound(key);
    if (it == model.end()) {
      EXPECT_TRUE(s.IsNotFound());
    } else {
      ASSERT_TRUE(s.ok());
      EXPECT_EQ(storage::ExtractUserKey(Slice(fkey)).ToString(), it->first);
      EXPECT_EQ(fvalue, it->second);
    }
  }
  // Full scan matches the model exactly.
  auto iter = table->NewIterator();
  auto model_it = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++model_it) {
    ASSERT_NE(model_it, model.end());
    EXPECT_EQ(storage::ExtractUserKey(iter->key()).ToString(), model_it->first);
    EXPECT_EQ(iter->value().ToString(), model_it->second);
  }
  EXPECT_EQ(model_it, model.end());
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, BlockSizeSweep,
                         ::testing::Values(32, 256, 4096, 65536));

// ---------------------------------------------------------------------------
// KV cluster topology sweep: (num_nodes, replication_factor)
// ---------------------------------------------------------------------------

class TopologySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TopologySweep, ServesReadsWritesAndToleratesMinorityFailure) {
  const auto [num_nodes, rf] = GetParam();
  kv::KVClusterOptions opts;
  opts.num_nodes = num_nodes;
  opts.replication_factor = rf;
  kv::KVCluster cluster(opts);
  ASSERT_TRUE(cluster.CreateTenantKeyspace(10).ok());

  for (int i = 0; i < 40; ++i) {
    kv::BatchRequest put;
    put.tenant_id = 10;
    put.ts = cluster.Now();
    put.AddPut(kv::AddTenantPrefix(10, "k" + std::to_string(i)),
               "v" + std::to_string(i));
    ASSERT_TRUE(cluster.Send(put).ok());
  }
  kv::BatchRequest scan;
  scan.tenant_id = 10;
  scan.ts = cluster.Now();
  scan.AddScan(kv::TenantPrefix(10), kv::TenantPrefixEnd(10), 0);
  EXPECT_EQ((*cluster.Send(scan)).responses[0].rows.size(), 40u);

  // A minority of replicas failing keeps the range available (RF >= 3).
  if (rf >= 3) {
    const int can_lose = (rf - 1) / 2;
    for (int i = 0; i < can_lose; ++i) {
      cluster.SetNodeLive(static_cast<kv::NodeId>(i), false);
    }
    kv::BatchRequest put;
    put.tenant_id = 10;
    put.ts = cluster.Now();
    put.AddPut(kv::AddTenantPrefix(10, "after-failure"), "v");
    EXPECT_TRUE(cluster.Send(put).ok()) << "nodes=" << num_nodes << " rf=" << rf;
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, TopologySweep,
                         ::testing::Values(std::make_tuple(1, 1),
                                           std::make_tuple(3, 3),
                                           std::make_tuple(5, 3),
                                           std::make_tuple(5, 5),
                                           std::make_tuple(7, 5)));

// ---------------------------------------------------------------------------
// Engine block-cache capacity sweep: correctness is cache-size independent
// ---------------------------------------------------------------------------

class CacheSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(CacheSizeSweep, ReadsCorrectAtAnyCacheSize) {
  storage::EngineOptions opts;
  opts.memtable_bytes = 8 << 10;
  opts.block_cache_bytes = GetParam();
  auto engine = *storage::Engine::Open(opts);
  Random rnd(5);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 1500; ++i) {
    const std::string key = "key" + std::to_string(rnd.Uniform(300));
    const std::string value = rnd.String(64);
    ASSERT_TRUE(engine->Put(key, value).ok());
    model[key] = value;
  }
  ASSERT_TRUE(engine->Flush().ok());
  for (const auto& [key, value] : model) {
    std::string got;
    ASSERT_TRUE(engine->Get(key, &got).ok()) << key << " cache=" << GetParam();
    EXPECT_EQ(got, value);
  }
}

INSTANTIATE_TEST_SUITE_P(CacheSizes, CacheSizeSweep,
                         ::testing::Values(0,        // disabled
                                           1 << 10,  // constant thrash
                                           64 << 10, 8 << 20));

}  // namespace
}  // namespace veloce
