#include <gtest/gtest.h>

#include "billing/meter.h"
#include "common/logging.h"
#include "serverless/cluster.h"

namespace veloce::billing {
namespace {

// ---------------------------------------------------------------------------
// TenantMeter unit behaviour
// ---------------------------------------------------------------------------

class MeterTest : public ::testing::Test {
 protected:
  MeterTest() : clock_(0), meter_(&clock_, EstimatedCpuModel::Default()) {}

  IntervalFeatures SomeFeatures() {
    IntervalFeatures f;
    f.read_batches = 1000;
    f.read_requests = 1000;
    f.read_bytes = 64 * 1000;
    f.write_batches = 100;
    f.write_requests = 100;
    f.write_bytes = 128 * 100;
    return f;
  }

  ManualClock clock_;
  TenantMeter meter_;
};

TEST_F(MeterTest, UnknownTenantIsZero) {
  const UsageReport report = meter_.Current(42);
  EXPECT_EQ(report.ecpu_seconds, 0);
  EXPECT_EQ(report.request_units, 0);
}

TEST_F(MeterTest, EcpuCombinesSqlAndModeledKv) {
  clock_.Advance(kSecond);
  meter_.Record(1, SomeFeatures(), /*sql_cpu_seconds=*/0.5);
  clock_.Advance(10 * kSecond);
  const UsageReport report = meter_.Current(1);
  EXPECT_DOUBLE_EQ(report.sql_cpu_seconds, 0.5);
  EXPECT_GT(report.kv_cpu_seconds, 0);
  EXPECT_DOUBLE_EQ(report.ecpu_seconds,
                   report.sql_cpu_seconds + report.kv_cpu_seconds);
  EXPECT_GT(report.request_units, 0);
  EXPECT_DOUBLE_EQ(report.egress_bytes, 64 * 1000);
  EXPECT_DOUBLE_EQ(report.write_bytes, 128 * 100);
  EXPECT_EQ(report.interval, 10 * kSecond);
  EXPECT_NEAR(report.ecpu_vcpus(), report.ecpu_seconds / 10.0, 1e-12);
}

TEST_F(MeterTest, RecordsAccumulateWithinInterval) {
  meter_.Record(1, SomeFeatures(), 0.2);
  meter_.Record(1, SomeFeatures(), 0.3);
  clock_.Advance(kSecond);
  const UsageReport report = meter_.Current(1);
  EXPECT_DOUBLE_EQ(report.sql_cpu_seconds, 0.5);
  EXPECT_DOUBLE_EQ(report.egress_bytes, 2 * 64 * 1000);
}

TEST_F(MeterTest, CutClosesTheInterval) {
  meter_.Record(1, SomeFeatures(), 1.0);
  clock_.Advance(kMinute);
  const UsageReport closed = meter_.Cut(1);
  EXPECT_DOUBLE_EQ(closed.sql_cpu_seconds, 1.0);
  // The next interval starts empty.
  clock_.Advance(kSecond);
  const UsageReport fresh = meter_.Current(1);
  EXPECT_DOUBLE_EQ(fresh.sql_cpu_seconds, 0.0);
  EXPECT_DOUBLE_EQ(fresh.egress_bytes, 0.0);
}

TEST_F(MeterTest, TenantsAreIndependent) {
  meter_.Record(1, SomeFeatures(), 1.0);
  meter_.Record(2, IntervalFeatures{}, 0.1);
  clock_.Advance(kSecond);
  EXPECT_GT(meter_.Current(1).ecpu_seconds, meter_.Current(2).ecpu_seconds);
}

// ---------------------------------------------------------------------------
// End-to-end: metering a live tenant through the serverless stack
// ---------------------------------------------------------------------------

TEST(MeteringEndToEndTest, QueriesProduceBillableUsage) {
  serverless::ServerlessCluster cluster;
  auto meta = cluster.CreateTenant("billed");
  VELOCE_CHECK(meta.ok());
  auto idle_meta = cluster.CreateTenant("idle");
  VELOCE_CHECK(idle_meta.ok());

  auto conn = *cluster.ConnectSync(meta->id);
  ASSERT_TRUE(conn->session->Execute(
      "CREATE TABLE b (id INT PRIMARY KEY, v STRING)").ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(conn->session->Execute(
        "INSERT INTO b VALUES (" + std::to_string(i) + ", 'payload')").ok());
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(conn->session->Execute(
        "SELECT v FROM b WHERE id = " + std::to_string(i)).ok());
  }
  cluster.loop()->RunFor(10 * kSecond);

  const billing::UsageReport report = cluster.TenantUsage(meta->id);
  EXPECT_GT(report.kv_cpu_seconds, 0);
  EXPECT_GT(report.ecpu_seconds, 0);
  EXPECT_GT(report.request_units, 0);
  EXPECT_GT(report.egress_bytes, 0);   // the SELECTs returned bytes
  EXPECT_GT(report.write_bytes, 0);    // the INSERTs ingested bytes

  // The idle tenant (no SQL nodes) bills nothing.
  const billing::UsageReport idle = cluster.TenantUsage(idle_meta->id);
  EXPECT_EQ(idle.ecpu_seconds, 0);

  // Harvest resets node counters: immediately re-harvesting adds ~nothing.
  const billing::UsageReport again = cluster.TenantUsage(meta->id);
  EXPECT_NEAR(again.kv_cpu_seconds, report.kv_cpu_seconds,
              report.kv_cpu_seconds * 0.01 + 1e-9);
}

TEST(MeteringEndToEndTest, PeriodicProxyRebalanceRuns) {
  serverless::ServerlessCluster::Options opts;
  opts.proxy_rebalance_interval = 30 * kSecond;
  serverless::ServerlessCluster cluster(opts);
  auto meta = cluster.CreateTenant("balanced");
  VELOCE_CHECK(meta.ok());
  auto c1 = *cluster.ConnectSync(meta->id);
  auto c2 = *cluster.ConnectSync(meta->id);
  auto c3 = *cluster.ConnectSync(meta->id);
  (void)c1;
  (void)c2;
  (void)c3;
  // Add a second node; the periodic pass (not an explicit call) must even
  // out the connections.
  sql::SqlNode* second = nullptr;
  cluster.pool()->Acquire(meta->id, [&](StatusOr<sql::SqlNode*> n) { second = *n; });
  cluster.loop()->RunFor(10 * kSecond);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(cluster.proxy()->ConnectionsOnNode(second), 0u);
  cluster.loop()->RunFor(kMinute);
  EXPECT_GE(cluster.proxy()->ConnectionsOnNode(second), 1u);
}

}  // namespace
}  // namespace veloce::billing
