#ifndef VELOCE_TESTS_RANGE_STORM_HARNESS_H_
#define VELOCE_TESTS_RANGE_STORM_HARNESS_H_

// Composed range-storm harness: one scenario seed drives client traffic
// through per-client range-directory caches while load-based splits,
// cooldown merges, and pipelined replica moves churn the directory
// underneath — with optional FaultyMesh weather on top. After every
// iteration the harness checks the range-scale data-plane invariants:
//
//   * the range directory is a partition of the keyspace (no gaps, no
//     overlaps, first range starts at -inf, last ends at +inf);
//   * no range spans a tenant boundary (merges never fuse tenants);
//   * no lease carries an epoch newer than its holder's liveness epoch
//     (merges/moves never resurrect a stale lease);
//   * directory-cache staleness is always recoverable: an addressed batch
//     bounced with RangeKeyMismatch succeeds after invalidate + refresh.
//
// Every client op is recorded into a HistoryRecorder so runs can be
// checked linearizable (Wing–Gong) at the end. Shared by
// tests/range_storm_test.cc (100-seed sweep, netfault composition) and
// bench/bench_range_storm.cc (the 10k-tenant / 100k-range scale run).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/codec.h"
#include "common/logging.h"
#include "common/random.h"
#include "kv/cluster.h"
#include "kv/keys.h"
#include "kv/linearizability.h"
#include "kv/mvcc.h"
#include "kv/range_cache.h"
#include "sim/faulty_mesh.h"
#include "storage/engine.h"

namespace veloce::kv::storm {

struct StormOptions {
  uint64_t seed = 0xC10D;
  int nodes = 5;
  int replication = 3;
  int tenants = 6;
  kv::TenantId first_tenant = 10;
  int keys_per_tenant = 24;
  int iterations = 20;
  int ops_per_iteration = 48;
  /// Fraction of iterations (from the start) during which the whole herd
  /// is driven hot; afterwards only the first tenant keeps traffic, so the
  /// rest cool below the merge threshold and shrink back.
  double hot_fraction = 0.55;
  double load_split_qps = 8.0;
  double merge_qps_threshold = 2.0;
  Nanos merge_dwell = 4 * kSecond;
  /// Fault weather (optional): the mesh must already be installed as the
  /// cluster transport by the caller via cluster->set_transport(mesh).
  sim::FaultyMesh* mesh = nullptr;
  /// Heartbeat liveness ticks + epoch leases armed during the run.
  bool heartbeats = true;
  bool check_linearizability = true;
  /// Trajectory observer: called after every iteration's invariant sweep
  /// with the iteration index, cooling flag, current range count, and the
  /// running stats — scenario runs log this as the event-log trajectory.
  std::function<void(int iter, bool cooling, size_t ranges,
                     const struct StormStats& stats)>
      on_iteration;
};

struct StormStats {
  uint64_t writes = 0;
  uint64_t reads = 0;
  uint64_t write_failures = 0;  ///< indeterminate under faults (maybe ops)
  uint64_t read_failures = 0;
  uint64_t redirects = 0;  ///< RangeKeyMismatch bounces recovered by refresh
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t splits = 0;
  uint64_t merges = 0;
  uint64_t moves_finished = 0;
  uint64_t max_ranges = 0;
  uint64_t final_ranges = 0;
  /// Modeled per-read latency in ms: deterministic function of the op's
  /// route (base cost + cache-miss fill + one round-trip per redirect), so
  /// one seed yields byte-identical percentiles.
  std::vector<double> read_latency_ms;

  double ReadLatencyP99() const {
    if (read_latency_ms.empty()) return 0;
    std::vector<double> v = read_latency_ms;
    std::sort(v.begin(), v.end());
    return v[std::min(v.size() - 1, (v.size() * 99) / 100)];
  }
};

/// Engine contents of one tenant's keyspan, assembled range by range from
/// each range's leaseholder in span order — the "logical bytes" of the
/// tenant. Split+merge round-trips must leave this byte-identical.
inline std::vector<std::pair<std::string, std::string>> TenantSpanContents(
    KVCluster* cluster, TenantId tenant) {
  const std::string span_start = TenantPrefix(tenant);
  const std::string span_end = TenantPrefixEnd(tenant);
  std::vector<RangeDescriptor> ranges = cluster->Ranges();
  std::sort(ranges.begin(), ranges.end(),
            [](const RangeDescriptor& a, const RangeDescriptor& b) {
              return a.start_key < b.start_key;
            });
  std::vector<std::pair<std::string, std::string>> out;
  for (const RangeDescriptor& desc : ranges) {
    if (!desc.end_key.empty() && desc.end_key <= span_start) continue;
    if (desc.start_key >= span_end) break;
    const std::string lo =
        EncodeIntentKey(std::max(desc.start_key, span_start));
    std::string hi;
    OrderedPutString(&hi, desc.end_key.empty()
                              ? span_end
                              : std::min(desc.end_key, span_end));
    storage::Engine* engine = cluster->node(desc.leaseholder)->engine();
    VELOCE_CHECK(engine != nullptr);
    auto it = engine->NewBoundedIterator(lo, hi);
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      out.emplace_back(it->key().ToString(), it->value().ToString());
    }
  }
  return out;
}

class RangeStormHarness {
 public:
  /// The caller owns clock + cluster (and the mesh, when any) so tests can
  /// compose extra behaviour (manual splits, fault schedules) around the
  /// storm. The cluster must already have the tenants' keyspaces created.
  RangeStormHarness(StormOptions opts, ManualClock* clock, KVCluster* cluster)
      : opts_(std::move(opts)),
        clock_(clock),
        cluster_(cluster),
        rnd_(DeriveSeed(opts_.seed, "range-storm")),
        weather_(DeriveSeed(opts_.seed, "storm-weather")) {
    caches_.reserve(static_cast<size_t>(opts_.tenants));
    for (int i = 0; i < opts_.tenants; ++i) {
      caches_.push_back(std::make_unique<RangeDirectoryCache>());
    }
  }

  /// Options for a cluster suitable for the storm (callers may tune
  /// further before constructing the KVCluster).
  static KVClusterOptions ClusterOptions(const StormOptions& opts,
                                         ManualClock* clock) {
    KVClusterOptions co;
    co.num_nodes = opts.nodes;
    co.replication_factor = opts.replication;
    co.clock = clock;
    co.load_split_qps = opts.load_split_qps;
    co.merge_qps_threshold = opts.merge_qps_threshold;
    co.merge_dwell = opts.merge_dwell;
    co.liveness_duration = 2 * kSecond;
    return co;
  }

  const StormStats& stats() const { return stats_; }
  HistoryRecorder* history() { return &history_; }

  TenantId tenant(int i) const {
    return opts_.first_tenant + static_cast<TenantId>(i);
  }
  std::string Key(int tenant_idx, int key_idx) const {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "k%03d", key_idx);
    return AddTenantPrefix(tenant(tenant_idx), buf);
  }

  /// Runs the full storm. Returns the first invariant violation ("" = the
  /// run stayed clean). Callers assert on emptiness so gtest/bench report
  /// the exact broken invariant.
  std::string Run() {
    if (opts_.heartbeats) cluster_->TickHeartbeats();
    const int hot_until = static_cast<int>(opts_.iterations * opts_.hot_fraction);
    for (int iter = 0; iter < opts_.iterations; ++iter) {
      const bool cooling = iter >= hot_until;
      RunIteration(iter, cooling);
      std::string err = CheckInvariants();
      if (!err.empty()) {
        return "iteration " + std::to_string(iter) + ": " + err;
      }
      const size_t ranges = cluster_->Ranges().size();
      stats_.max_ranges = std::max(stats_.max_ranges, static_cast<uint64_t>(ranges));
      if (opts_.on_iteration) opts_.on_iteration(iter, cooling, ranges, stats_);
    }
    Quiesce();
    std::string err = CheckInvariants();
    if (!err.empty()) return "post-quiesce: " + err;
    stats_.final_ranges = cluster_->Ranges().size();
    if (opts_.check_linearizability) {
      const LinearizabilityResult lin = CheckLinearizability(history_.Snapshot());
      if (!lin.ok) return "linearizability: " + lin.explanation;
    }
    return "";
  }

  /// One addressed client batch through the per-tenant directory cache:
  /// attach the cached range id, and on RangeKeyMismatch invalidate +
  /// refresh + retry. Mirrors sql::KvConnector::SendAddressed at the KV
  /// layer. `redirects` (optional) receives the bounce count for the op.
  StatusOr<BatchResponse> SendAddressed(int tenant_idx, BatchRequest req,
                                        int* redirects = nullptr,
                                        bool* cache_miss = nullptr) {
    RangeDirectoryCache& cache = *caches_[static_cast<size_t>(tenant_idx)];
    req.tenant_id = tenant(tenant_idx);
    if (req.ts.IsEmpty()) req.ts = cluster_->Now();
    for (int attempt = 0; attempt < 4; ++attempt) {
      req.range_id = 0;
      std::optional<RangeDescriptor> desc = cache.Lookup(req.requests[0].key);
      if (desc.has_value()) {
        ++stats_.cache_hits;
      } else {
        ++stats_.cache_misses;
        if (cache_miss != nullptr) *cache_miss = true;
        auto fresh = cluster_->LookupRange(req.requests[0].key);
        if (fresh.ok()) {
          cache.Insert(*fresh);
          desc = *fresh;
        }
      }
      if (desc.has_value()) {
        bool covers = true;
        for (const auto& r : req.requests) {
          if (!desc->Contains(r.key)) {
            covers = false;
            break;
          }
        }
        if (covers) req.range_id = desc->range_id;
      }
      StatusOr<BatchResponse> resp = cluster_->Send(req);
      if (resp.ok() || !resp.status().IsRangeKeyMismatch() ||
          req.range_id == 0) {
        return resp;
      }
      ++stats_.redirects;
      if (redirects != nullptr) ++*redirects;
      cache.Invalidate(req.requests[0].key);
    }
    // The "always recoverable" invariant: a redirect loop that does not
    // converge within the bound is a staleness bug, not churn.
    return Status::Internal("range cache redirect loop did not converge");
  }

  /// The per-iteration invariant sweep, callable standalone by tests.
  std::string CheckInvariants() {
    std::vector<RangeDescriptor> ranges = cluster_->Ranges();
    std::sort(ranges.begin(), ranges.end(),
              [](const RangeDescriptor& a, const RangeDescriptor& b) {
                return a.start_key < b.start_key;
              });
    if (ranges.empty()) return "directory is empty";
    if (!ranges.front().start_key.empty()) {
      return "first range does not start at -inf";
    }
    for (size_t i = 0; i < ranges.size(); ++i) {
      const RangeDescriptor& d = ranges[i];
      const bool last = i + 1 == ranges.size();
      if (last) {
        if (!d.end_key.empty()) return "last range does not end at +inf";
      } else {
        if (d.end_key.empty()) {
          return "interior range " + std::to_string(d.range_id) +
                 " ends at +inf (overlap)";
        }
        if (d.end_key != ranges[i + 1].start_key) {
          return "gap/overlap after range " + std::to_string(d.range_id);
        }
      }
      // Tenant alignment: a range owned by tenant t must stay inside t's
      // keyspan, and no range may straddle a tenant-prefix boundary — the
      // "merge never fuses ranges across tenants" invariant.
      if (d.tenant_id != 0) {
        const std::string lo = TenantPrefix(d.tenant_id);
        const std::string hi = TenantPrefixEnd(d.tenant_id);
        if (d.start_key < lo || d.end_key.empty() || d.end_key > hi) {
          return "range " + std::to_string(d.range_id) +
                 " escapes tenant " + std::to_string(d.tenant_id) +
                 " keyspan";
        }
      }
      if (!d.start_key.empty() && !d.end_key.empty() &&
          d.start_key[0] == '\xFE' && d.end_key[0] == '\xFE' &&
          d.start_key.size() >= 9 && d.end_key.size() >= 9) {
        auto t_start = DecodeTenantFromKey(d.start_key);
        // end_key may be exactly the next tenant's prefix (exclusive).
        std::string end_for_tenant = d.end_key;
        auto t_end = DecodeTenantFromKey(end_for_tenant);
        if (t_start.ok() && t_end.ok() && *t_end != *t_start &&
            !(end_for_tenant == TenantPrefixEnd(*t_start))) {
          return "range " + std::to_string(d.range_id) +
                 " spans tenants " + std::to_string(*t_start) + ".." +
                 std::to_string(*t_end);
        }
      }
      // Lease-epoch sanity: a lease can never carry an epoch newer than
      // its holder's liveness record (a merge or move that resurrected a
      // discarded lease would trip this).
      if (d.lease_epoch > cluster_->NodeLivenessEpoch(d.leaseholder)) {
        return "range " + std::to_string(d.range_id) +
               " lease epoch ahead of node liveness";
      }
    }
    return "";
  }

 private:
  void RunIteration(int iter, bool cooling) {
    const int hot_tenants = cooling ? 1 : opts_.tenants;
    for (int op = 0; op < opts_.ops_per_iteration; ++op) {
      // Zipf-ish key choice: half the ops land on an 1/4 slice of the
      // keyspace so the hot range's sample reservoir sees a clear median.
      const int t = static_cast<int>(rnd_.Uniform(
          static_cast<uint64_t>(hot_tenants)));
      const int span = opts_.keys_per_tenant;
      const int k = rnd_.Uniform(2) == 0
                        ? static_cast<int>(rnd_.Uniform(
                              static_cast<uint64_t>(std::max(1, span / 4))))
                        : static_cast<int>(rnd_.Uniform(
                              static_cast<uint64_t>(span)));
      std::string key = Key(t, k);
      int redirects = 0;
      bool miss = false;
      if (rnd_.Uniform(3) != 0) {
        // Failed writes under faults are recorded as "maybe" (sound but
        // indeterminate), and the Wing–Gong search is exponential in the
        // per-key maybe count — so the workload steers writes away from a
        // key once it has accumulated a few, keeping the checker fast
        // without weakening what it proves about the ops that did run.
        for (int probe = 0; probe < opts_.keys_per_tenant &&
                            maybe_writes_[key] >= kMaxMaybePerKey;
             ++probe) {
          key = Key(t, (k + probe + 1) % opts_.keys_per_tenant);
        }
        if (maybe_writes_[key] >= kMaxMaybePerKey) {
          clock_->Advance(10 * kMilli);
          continue;
        }
        const std::string value = "v" + std::to_string(next_value_++);
        BatchRequest req;
        req.AddPut(key, value);
        const size_t id = history_.BeginWrite(key, value);
        auto resp = SendAddressed(t, std::move(req), &redirects, &miss);
        history_.EndWrite(id, resp.ok(), /*maybe=*/!resp.ok());
        ++stats_.writes;
        if (!resp.ok()) {
          ++stats_.write_failures;
          ++maybe_writes_[key];
        }
      } else {
        BatchRequest req;
        req.AddGet(key);
        const size_t id = history_.BeginRead(key);
        auto resp = SendAddressed(t, std::move(req), &redirects, &miss);
        if (resp.ok()) {
          history_.EndRead(id, true, resp->responses[0].found,
                           resp->responses[0].value);
        } else {
          history_.EndRead(id, false, false, "");
          ++stats_.read_failures;
        }
        ++stats_.reads;
        // Deterministic latency model: leaseholder round-trip + directory
        // fill on miss + one extra round-trip per redirect bounce.
        stats_.read_latency_ms.push_back(0.35 + (miss ? 0.05 : 0.0) +
                                         0.40 * redirects);
      }
      clock_->Advance(10 * kMilli);
    }
    // Cooling iterations advance further so dwell elapses and merges fire.
    if (cooling) clock_->Advance(kSecond);

    // Fault weather (optional): mutate the partition set, heal, tick.
    if (opts_.mesh != nullptr) {
      const uint64_t dice = weather_.Uniform(10);
      const uint32_t n = static_cast<uint32_t>(
          weather_.Uniform(static_cast<uint64_t>(opts_.nodes)));
      if (dice == 0) {
        opts_.mesh->Isolate(n, static_cast<uint32_t>(opts_.nodes));
      } else if (dice == 1) {
        opts_.mesh->PartitionLink(
            n, (n + 1) % static_cast<uint32_t>(opts_.nodes));
      } else if (dice <= 4) {
        opts_.mesh->HealAll();
      }
    }
    if (opts_.heartbeats && iter % 2 == 0) cluster_->TickHeartbeats();

    // Control plane: split/merge sweeps every iteration; a pipelined
    // replica move advances a couple of chunks per iteration so client
    // traffic genuinely interleaves with the stream.
    (void)StepPipelinedMove();
    auto splits = cluster_->MaybeSplitRanges();
    if (splits.ok()) stats_.splits += static_cast<uint64_t>(*splits);
    auto merges = cluster_->MaybeMergeRanges();
    if (merges.ok()) stats_.merges += static_cast<uint64_t>(*merges);
    if (!move_in_flight_ && iter % 3 == 2) StartPipelinedMove();
  }

  void StartPipelinedMove() {
    std::vector<RangeDescriptor> ranges = cluster_->Ranges();
    if (ranges.empty()) return;
    const RangeDescriptor& d =
        ranges[rnd_.Uniform(static_cast<uint64_t>(ranges.size()))];
    if (d.replicas.size() >= static_cast<size_t>(opts_.nodes)) return;
    NodeId to = 0;
    bool found = false;
    for (NodeId n = 0; n < static_cast<NodeId>(opts_.nodes); ++n) {
      if (!d.HasReplica(n)) {
        to = n;
        found = true;
        break;
      }
    }
    if (!found) return;
    NodeId from = d.replicas[rnd_.Uniform(
        static_cast<uint64_t>(d.replicas.size()))];
    if (cluster_->StartReplicaMove(d.range_id, from, to).ok()) {
      move_in_flight_ = true;
      move_range_ = d.range_id;
    }
  }

  Status StepPipelinedMove() {
    if (!move_in_flight_) return Status::OK();
    for (int i = 0; i < 2; ++i) {
      StatusOr<bool> done = cluster_->StepReplicaMove(move_range_, 8 << 10);
      if (!done.ok()) {
        (void)cluster_->AbortReplicaMove(move_range_);
        move_in_flight_ = false;
        return done.status();
      }
      if (*done) {
        Status fin = cluster_->FinishReplicaMove(move_range_);
        if (!fin.ok()) (void)cluster_->AbortReplicaMove(move_range_);
        if (fin.ok()) ++stats_.moves_finished;
        move_in_flight_ = false;
        return fin;
      }
    }
    return Status::OK();
  }

  void Quiesce() {
    if (move_in_flight_) {
      // Drive the in-flight move to completion (or abort it cleanly).
      for (int i = 0; i < 10000 && move_in_flight_; ++i) {
        if (!StepPipelinedMove().ok()) break;
      }
      if (move_in_flight_) {
        (void)cluster_->AbortReplicaMove(move_range_);
        move_in_flight_ = false;
      }
    }
    if (opts_.mesh != nullptr) opts_.mesh->HealAll();
    clock_->Advance(3 * kSecond);
    if (opts_.heartbeats) {
      cluster_->TickHeartbeats();
      cluster_->TickHeartbeats();
    }
    for (NodeId n = 0; n < static_cast<NodeId>(opts_.nodes); ++n) {
      (void)cluster_->CatchUpNode(n);
    }
    // Settle: with traffic gone every range cools, so repeated dwell
    // periods of merge sweeps shrink the directory back toward one range
    // per tenant — the storm must converge, not just survive. Each merge
    // resets the fused range's cooldown, so a chain of k shards needs ~k
    // dwells; sweep until a full dwell passes with no merges.
    for (int idle = 0; idle < 8;) {
      clock_->Advance(kSecond);
      if (opts_.heartbeats) cluster_->TickHeartbeats();
      auto merges = cluster_->MaybeMergeRanges();
      if (merges.ok() && *merges > 0) {
        stats_.merges += static_cast<uint64_t>(*merges);
        idle = 0;
      } else {
        ++idle;
      }
    }
    // Final acked read per touched key: pins the converged state into the
    // history so split-brain during the storm cannot hide.
    if (opts_.check_linearizability) {
      for (int t = 0; t < opts_.tenants; ++t) {
        for (int k = 0; k < opts_.keys_per_tenant; ++k) {
          const std::string key = Key(t, k);
          BatchRequest req;
          req.AddGet(key);
          const size_t id = history_.BeginRead(key);
          auto resp = SendAddressed(t, std::move(req));
          if (resp.ok()) {
            history_.EndRead(id, true, resp->responses[0].found,
                             resp->responses[0].value);
          } else {
            history_.EndRead(id, false, false, "");
          }
        }
      }
    }
  }

  StormOptions opts_;
  ManualClock* clock_;
  KVCluster* cluster_;
  Random rnd_;
  Random weather_;
  std::vector<std::unique_ptr<RangeDirectoryCache>> caches_;
  HistoryRecorder history_;
  StormStats stats_;
  uint64_t next_value_ = 0;
  bool move_in_flight_ = false;
  RangeId move_range_ = 0;
  /// Indeterminate ("maybe") writes recorded so far, per key.
  static constexpr int kMaxMaybePerKey = 6;
  std::map<std::string, int> maybe_writes_;
};

}  // namespace veloce::kv::storm

#endif  // VELOCE_TESTS_RANGE_STORM_HARNESS_H_
