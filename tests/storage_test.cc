#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/random.h"
#include "storage/engine.h"
#include "storage/env.h"
#include "storage/memtable.h"
#include "storage/sstable.h"
#include "storage/wal.h"
#include "storage/write_batch.h"

namespace veloce::storage {
namespace {

// ---------------------------------------------------------------------------
// Env
// ---------------------------------------------------------------------------

TEST(MemEnvTest, WriteReadDelete) {
  auto env = NewMemEnv();
  ASSERT_TRUE(env->WriteStringToFile("dir/a", "hello").ok());
  EXPECT_TRUE(env->FileExists("dir/a"));
  std::string out;
  ASSERT_TRUE(env->ReadFileToString("dir/a", &out).ok());
  EXPECT_EQ(out, "hello");
  ASSERT_TRUE(env->DeleteFile("dir/a").ok());
  EXPECT_FALSE(env->FileExists("dir/a"));
  EXPECT_TRUE(env->ReadFileToString("dir/a", &out).IsNotFound());
}

TEST(MemEnvTest, GetChildrenListsDirectFilesOnly) {
  auto env = NewMemEnv();
  ASSERT_TRUE(env->WriteStringToFile("db/1.sst", "x").ok());
  ASSERT_TRUE(env->WriteStringToFile("db/2.sst", "y").ok());
  ASSERT_TRUE(env->WriteStringToFile("db/sub/3.sst", "z").ok());
  ASSERT_TRUE(env->WriteStringToFile("other/4.sst", "w").ok());
  std::vector<std::string> children;
  ASSERT_TRUE(env->GetChildren("db", &children).ok());
  EXPECT_EQ(children.size(), 2u);
}

TEST(MemEnvTest, RandomAccessReads) {
  auto env = NewMemEnv();
  ASSERT_TRUE(env->WriteStringToFile("f", "0123456789").ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env->NewRandomAccessFile("f", &file).ok());
  std::string out;
  ASSERT_TRUE(file->Read(3, 4, &out).ok());
  EXPECT_EQ(out, "3456");
  // Reads past EOF clamp.
  ASSERT_TRUE(file->Read(8, 10, &out).ok());
  EXPECT_EQ(out, "89");
}

// ---------------------------------------------------------------------------
// WriteBatch
// ---------------------------------------------------------------------------

TEST(WriteBatchTest, IterateReplaysOperations) {
  WriteBatch batch;
  batch.Put("k1", "v1");
  batch.Delete("k2");
  batch.Put("k3", "v3");
  EXPECT_EQ(batch.Count(), 3u);
  EXPECT_EQ(batch.PayloadBytes(), 2u + 2u + 2u + 2u + 2u);

  struct Collector : WriteBatch::Handler {
    std::vector<std::string> ops;
    void Put(Slice k, Slice v) override { ops.push_back("P:" + k.ToString() + "=" + v.ToString()); }
    void Delete(Slice k) override { ops.push_back("D:" + k.ToString()); }
  } collector;
  ASSERT_TRUE(batch.Iterate(&collector).ok());
  ASSERT_EQ(collector.ops.size(), 3u);
  EXPECT_EQ(collector.ops[0], "P:k1=v1");
  EXPECT_EQ(collector.ops[1], "D:k2");
  EXPECT_EQ(collector.ops[2], "P:k3=v3");
}

TEST(WriteBatchTest, SerializationRoundTrip) {
  WriteBatch batch;
  batch.Put("alpha", std::string(200, 'x'));
  batch.Delete("beta");
  WriteBatch restored;
  ASSERT_TRUE(restored.SetContents(batch.rep()).ok());
  EXPECT_EQ(restored.Count(), 2u);
  EXPECT_EQ(restored.PayloadBytes(), batch.PayloadBytes());
}

TEST(WriteBatchTest, CorruptContentsRejected) {
  WriteBatch batch;
  EXPECT_FALSE(batch.SetContents("\x05garbage-without-structure").ok());
}

TEST(WriteBatchTest, ClearResets) {
  WriteBatch batch;
  batch.Put("a", "b");
  batch.Clear();
  EXPECT_EQ(batch.Count(), 0u);
  EXPECT_EQ(batch.PayloadBytes(), 0u);
}

// ---------------------------------------------------------------------------
// MemTable
// ---------------------------------------------------------------------------

TEST(MemTableTest, PutGetLatestVersion) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "key", "v1");
  mem.Add(5, ValueType::kValue, "key", "v5");
  std::string value;
  bool deleted = false;
  ASSERT_TRUE(mem.Get("key", kMaxSequenceNumber, &value, &deleted));
  EXPECT_FALSE(deleted);
  EXPECT_EQ(value, "v5");
}

TEST(MemTableTest, SnapshotReadsSeeOldVersions) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "key", "v1");
  mem.Add(5, ValueType::kValue, "key", "v5");
  std::string value;
  bool deleted = false;
  ASSERT_TRUE(mem.Get("key", 3, &value, &deleted));
  EXPECT_EQ(value, "v1");
  EXPECT_FALSE(mem.Get("key", 0, &value, &deleted));
}

TEST(MemTableTest, TombstoneVisible) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "key", "v1");
  mem.Add(2, ValueType::kDeletion, "key", "");
  std::string value;
  bool deleted = false;
  ASSERT_TRUE(mem.Get("key", kMaxSequenceNumber, &value, &deleted));
  EXPECT_TRUE(deleted);
}

TEST(MemTableTest, MissingKey) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "a", "1");
  mem.Add(2, ValueType::kValue, "c", "3");
  std::string value;
  bool deleted = false;
  EXPECT_FALSE(mem.Get("b", kMaxSequenceNumber, &value, &deleted));
}

TEST(MemTableTest, IteratorSortedByInternalKey) {
  MemTable mem;
  Random rnd(3);
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key" + std::to_string(rnd.Uniform(200));
    const std::string value = "v" + std::to_string(i);
    mem.Add(static_cast<SequenceNumber>(i + 1), ValueType::kValue, key, value);
    expected[key] = value;  // later writes win
  }
  // Walk with the iterator; for each user key the FIRST occurrence is the
  // newest version.
  auto it = mem.NewIterator();
  std::map<std::string, std::string> got;
  std::string prev_ikey;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    const std::string ikey = it->key().ToString();
    if (!prev_ikey.empty()) {
      EXPECT_LT(CompareInternalKey(Slice(prev_ikey), it->key()), 0);
    }
    prev_ikey = ikey;
    const std::string ukey = ExtractUserKey(it->key()).ToString();
    if (!got.count(ukey)) got[ukey] = it->value().ToString();
  }
  EXPECT_EQ(got, expected);
}

TEST(MemTableTest, MemoryUsageGrows) {
  MemTable mem;
  const size_t before = mem.ApproximateMemoryUsage();
  mem.Add(1, ValueType::kValue, "key", std::string(1000, 'v'));
  EXPECT_GT(mem.ApproximateMemoryUsage(), before + 1000);
}

// ---------------------------------------------------------------------------
// WAL
// ---------------------------------------------------------------------------

TEST(WalTest, RoundTrip) {
  auto env = NewMemEnv();
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile("wal", &file).ok());
    LogWriter writer(std::move(file));
    ASSERT_TRUE(writer.AddRecord("first").ok());
    ASSERT_TRUE(writer.AddRecord("second record, longer").ok());
    ASSERT_TRUE(writer.AddRecord("").ok());
  }
  std::string contents;
  ASSERT_TRUE(env->ReadFileToString("wal", &contents).ok());
  LogReader reader(std::move(contents));
  std::string rec;
  bool corrupt = false;
  ASSERT_TRUE(reader.ReadRecord(&rec, &corrupt));
  EXPECT_EQ(rec, "first");
  ASSERT_TRUE(reader.ReadRecord(&rec, &corrupt));
  EXPECT_EQ(rec, "second record, longer");
  ASSERT_TRUE(reader.ReadRecord(&rec, &corrupt));
  EXPECT_EQ(rec, "");
  EXPECT_FALSE(reader.ReadRecord(&rec, &corrupt));
  EXPECT_FALSE(corrupt);
}

TEST(WalTest, TruncatedTailStopsCleanly) {
  auto env = NewMemEnv();
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile("wal", &file).ok());
    LogWriter writer(std::move(file));
    ASSERT_TRUE(writer.AddRecord("complete").ok());
    ASSERT_TRUE(writer.AddRecord("will be truncated").ok());
  }
  std::string contents;
  ASSERT_TRUE(env->ReadFileToString("wal", &contents).ok());
  contents.resize(contents.size() - 5);  // simulate crash mid-write
  LogReader reader(std::move(contents));
  std::string rec;
  bool corrupt = false;
  ASSERT_TRUE(reader.ReadRecord(&rec, &corrupt));
  EXPECT_EQ(rec, "complete");
  EXPECT_FALSE(reader.ReadRecord(&rec, &corrupt));
  EXPECT_FALSE(corrupt);  // truncation is a clean end, not corruption
}

TEST(WalTest, BitFlipDetected) {
  auto env = NewMemEnv();
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile("wal", &file).ok());
    LogWriter writer(std::move(file));
    ASSERT_TRUE(writer.AddRecord("record payload").ok());
  }
  std::string contents;
  ASSERT_TRUE(env->ReadFileToString("wal", &contents).ok());
  contents[10] ^= 0x01;
  LogReader reader(std::move(contents));
  std::string rec;
  bool corrupt = false;
  EXPECT_FALSE(reader.ReadRecord(&rec, &corrupt));
  EXPECT_TRUE(corrupt);
}

// ---------------------------------------------------------------------------
// SSTable
// ---------------------------------------------------------------------------

TEST(SSTableTest, BuildAndLookup) {
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> wfile;
  ASSERT_TRUE(env->NewWritableFile("t.sst", &wfile).ok());
  TableBuilder builder(std::move(wfile), /*block_size=*/64);
  for (int i = 0; i < 100; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%03d", i);
    ASSERT_TRUE(builder.Add(MakeInternalKey(key, 1, ValueType::kValue),
                            "value" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(builder.Finish().ok());
  EXPECT_EQ(builder.num_entries(), 100u);

  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env->NewRandomAccessFile("t.sst", &rfile).ok());
  auto table_or = Table::Open(std::move(rfile));
  ASSERT_TRUE(table_or.ok());
  auto table = *table_or;
  EXPECT_GT(table->num_blocks(), 1u);  // small block size forces many blocks

  std::string fkey, fvalue;
  ASSERT_TRUE(table
                  ->SeekEntry(MakeInternalKey("key042", kMaxSequenceNumber,
                                              ValueType::kValue),
                              &fkey, &fvalue)
                  .ok());
  EXPECT_EQ(ExtractUserKey(Slice(fkey)).ToString(), "key042");
  EXPECT_EQ(fvalue, "value42");

  EXPECT_TRUE(table
                  ->SeekEntry(MakeInternalKey("zzz", kMaxSequenceNumber,
                                              ValueType::kValue),
                              &fkey, &fvalue)
                  .IsNotFound());
}

TEST(SSTableTest, IteratorScansAllEntries) {
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> wfile;
  ASSERT_TRUE(env->NewWritableFile("t.sst", &wfile).ok());
  TableBuilder builder(std::move(wfile), 128);
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", i);
    ASSERT_TRUE(builder.Add(MakeInternalKey(key, 7, ValueType::kValue),
                            std::to_string(i)).ok());
  }
  ASSERT_TRUE(builder.Finish().ok());

  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env->NewRandomAccessFile("t.sst", &rfile).ok());
  auto table = *Table::Open(std::move(rfile));
  auto it = table->NewIterator();
  int count = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    EXPECT_EQ(it->value().ToString(), std::to_string(count));
    ++count;
  }
  EXPECT_EQ(count, n);
}

TEST(SSTableTest, IteratorSeekLandsOnOrAfter) {
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> wfile;
  ASSERT_TRUE(env->NewWritableFile("t.sst", &wfile).ok());
  TableBuilder builder(std::move(wfile), 64);
  for (int i = 0; i < 100; i += 2) {  // even keys only
    char key[16];
    std::snprintf(key, sizeof(key), "k%03d", i);
    ASSERT_TRUE(builder.Add(MakeInternalKey(key, 1, ValueType::kValue), "v").ok());
  }
  ASSERT_TRUE(builder.Finish().ok());
  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env->NewRandomAccessFile("t.sst", &rfile).ok());
  auto table = *Table::Open(std::move(rfile));
  auto it = table->NewIterator();
  it->Seek(MakeInternalKey("k051", kMaxSequenceNumber, ValueType::kValue));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "k052");
  it->Seek(MakeInternalKey("k999", kMaxSequenceNumber, ValueType::kValue));
  EXPECT_FALSE(it->Valid());
}

TEST(SSTableTest, CorruptBlockDetected) {
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> wfile;
  ASSERT_TRUE(env->NewWritableFile("t.sst", &wfile).ok());
  TableBuilder builder(std::move(wfile), 4096);
  ASSERT_TRUE(builder.Add(MakeInternalKey("a", 1, ValueType::kValue), "v").ok());
  ASSERT_TRUE(builder.Finish().ok());
  std::string contents;
  ASSERT_TRUE(env->ReadFileToString("t.sst", &contents).ok());
  contents[2] ^= 0x40;  // flip a bit in the data block
  ASSERT_TRUE(env->WriteStringToFile("t2.sst", contents).ok());
  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env->NewRandomAccessFile("t2.sst", &rfile).ok());
  auto table = *Table::Open(std::move(rfile));
  std::string fkey, fvalue;
  EXPECT_EQ(table->SeekEntry(MakeInternalKey("a", kMaxSequenceNumber,
                                             ValueType::kValue),
                             &fkey, &fvalue)
                .code(),
            Code::kCorruption);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

EngineOptions SmallEngineOptions() {
  EngineOptions opts;
  opts.memtable_bytes = 16 << 10;  // tiny, to force flushes
  opts.sstable_target_bytes = 8 << 10;
  opts.level_base_bytes = 64 << 10;
  return opts;
}

TEST(EngineTest, PutGetDelete) {
  auto engine = *Engine::Open({});
  ASSERT_TRUE(engine->Put("k", "v").ok());
  std::string value;
  ASSERT_TRUE(engine->Get("k", &value).ok());
  EXPECT_EQ(value, "v");
  ASSERT_TRUE(engine->Delete("k").ok());
  EXPECT_TRUE(engine->Get("k", &value).IsNotFound());
}

TEST(EngineTest, OverwriteReturnsLatest) {
  auto engine = *Engine::Open({});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine->Put("k", "v" + std::to_string(i)).ok());
  }
  std::string value;
  ASSERT_TRUE(engine->Get("k", &value).ok());
  EXPECT_EQ(value, "v9");
}

TEST(EngineTest, SurvivesFlushes) {
  auto engine = *Engine::Open(SmallEngineOptions());
  std::map<std::string, std::string> expected;
  Random rnd(11);
  for (int i = 0; i < 3000; ++i) {
    const std::string key = "key" + std::to_string(rnd.Uniform(500));
    const std::string value = rnd.String(64);
    ASSERT_TRUE(engine->Put(key, value).ok());
    expected[key] = value;
  }
  EXPECT_GT(engine->stats().num_flushes, 0u);
  for (const auto& [key, value] : expected) {
    std::string got;
    ASSERT_TRUE(engine->Get(key, &got).ok()) << key;
    EXPECT_EQ(got, value);
  }
}

TEST(EngineTest, CompactionPreservesData) {
  auto engine = *Engine::Open(SmallEngineOptions());
  std::map<std::string, std::string> expected;
  Random rnd(13);
  for (int i = 0; i < 5000; ++i) {
    const std::string key = "key" + std::to_string(rnd.Uniform(800));
    if (rnd.Bernoulli(0.1)) {
      ASSERT_TRUE(engine->Delete(key).ok());
      expected.erase(key);
    } else {
      const std::string value = rnd.String(50);
      ASSERT_TRUE(engine->Put(key, value).ok());
      expected[key] = value;
    }
  }
  ASSERT_TRUE(engine->CompactAll().ok());
  EXPECT_GT(engine->stats().num_compactions, 0u);
  EXPECT_EQ(engine->NumFilesAtLevel(0), 0);
  for (const auto& [key, value] : expected) {
    std::string got;
    ASSERT_TRUE(engine->Get(key, &got).ok()) << key;
    EXPECT_EQ(got, value);
  }
  // Deleted keys stay deleted.
  std::string got;
  for (int i = 0; i < 800; ++i) {
    const std::string key = "key" + std::to_string(i);
    if (!expected.count(key)) {
      EXPECT_TRUE(engine->Get(key, &got).IsNotFound()) << key;
    }
  }
}

TEST(EngineTest, IteratorSeesConsistentSnapshot) {
  auto engine = *Engine::Open({});
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine->Put("k" + std::to_string(i), "old").ok());
  }
  auto it = engine->NewIterator();
  // Mutate after iterator creation.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine->Put("k" + std::to_string(i), "new").ok());
  }
  ASSERT_TRUE(engine->Put("extra", "x").ok());
  int count = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    EXPECT_EQ(it->value().ToString(), "old");
    ++count;
  }
  EXPECT_EQ(count, 100);
}

TEST(EngineTest, IteratorSkipsTombstones) {
  auto engine = *Engine::Open({});
  ASSERT_TRUE(engine->Put("a", "1").ok());
  ASSERT_TRUE(engine->Put("b", "2").ok());
  ASSERT_TRUE(engine->Put("c", "3").ok());
  ASSERT_TRUE(engine->Delete("b").ok());
  auto it = engine->NewIterator();
  std::vector<std::string> keys;
  for (it->SeekToFirst(); it->Valid(); it->Next()) keys.push_back(it->key().ToString());
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "c"}));
}

TEST(EngineTest, IteratorSeek) {
  auto engine = *Engine::Open({});
  for (int i = 0; i < 50; ++i) {
    char key[8];
    std::snprintf(key, sizeof(key), "k%03d", i * 2);
    ASSERT_TRUE(engine->Put(key, "v").ok());
  }
  auto it = engine->NewIterator();
  it->Seek("k011");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "k012");
}

TEST(EngineTest, RecoveryFromWal) {
  auto env = NewMemEnv();
  EngineOptions opts;
  opts.env = env.get();
  opts.dir = "db";
  {
    auto engine = *Engine::Open(opts);
    ASSERT_TRUE(engine->Put("persisted", "yes").ok());
    ASSERT_TRUE(engine->Put("also", "this").ok());
    // No explicit flush: data only in WAL + memtable.
  }
  auto engine = *Engine::Open(opts);
  std::string value;
  ASSERT_TRUE(engine->Get("persisted", &value).ok());
  EXPECT_EQ(value, "yes");
  ASSERT_TRUE(engine->Get("also", &value).ok());
  EXPECT_EQ(value, "this");
}

TEST(EngineTest, RecoveryAfterFlushAndCompaction) {
  auto env = NewMemEnv();
  EngineOptions opts = SmallEngineOptions();
  opts.env = env.get();
  opts.dir = "db";
  std::map<std::string, std::string> expected;
  {
    auto engine = *Engine::Open(opts);
    Random rnd(17);
    for (int i = 0; i < 2000; ++i) {
      const std::string key = "key" + std::to_string(rnd.Uniform(300));
      const std::string value = rnd.String(40);
      ASSERT_TRUE(engine->Put(key, value).ok());
      expected[key] = value;
    }
    ASSERT_TRUE(engine->Flush().ok());
  }
  auto engine = *Engine::Open(opts);
  for (const auto& [key, value] : expected) {
    std::string got;
    ASSERT_TRUE(engine->Get(key, &got).ok()) << key;
    EXPECT_EQ(got, value);
  }
}

TEST(EngineTest, StatsTrackWriteAmplification) {
  auto engine = *Engine::Open(SmallEngineOptions());
  Random rnd(19);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(engine->Put("key" + std::to_string(rnd.Uniform(1000)),
                            rnd.String(60)).ok());
  }
  const EngineStats& stats = engine->stats();
  EXPECT_GT(stats.ingest_bytes, 0u);
  EXPECT_GT(stats.wal_bytes, stats.ingest_bytes);  // WAL framing overhead
  EXPECT_GT(stats.flush_bytes, 0u);
  // LSM write amplification: total bytes written exceeds ingested payload.
  EXPECT_GT(stats.total_bytes_written(), stats.ingest_bytes);
}

TEST(EngineTest, AtomicWriteBatch) {
  auto engine = *Engine::Open({});
  WriteBatch batch;
  batch.Put("x", "1");
  batch.Put("y", "2");
  batch.Delete("x");
  ASSERT_TRUE(engine->Write(batch).ok());
  std::string value;
  EXPECT_TRUE(engine->Get("x", &value).IsNotFound());
  ASSERT_TRUE(engine->Get("y", &value).ok());
  EXPECT_EQ(value, "2");
}

TEST(EngineTest, EmptyBatchIsNoop) {
  auto engine = *Engine::Open({});
  WriteBatch batch;
  ASSERT_TRUE(engine->Write(batch).ok());
  EXPECT_EQ(engine->LastSequence(), 0u);
}

// Property-style sweep: random workload against an in-memory model across
// engine configurations.
class EnginePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EnginePropertyTest, MatchesModelUnderRandomOps) {
  EngineOptions opts;
  opts.memtable_bytes = static_cast<size_t>(GetParam());
  opts.sstable_target_bytes = 4 << 10;
  opts.level_base_bytes = 32 << 10;
  opts.l0_compaction_trigger = 3;
  auto engine = *Engine::Open(opts);
  std::map<std::string, std::string> model;
  Random rnd(static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 3000; ++i) {
    const std::string key = "k" + std::to_string(rnd.Uniform(200));
    const int op = static_cast<int>(rnd.Uniform(10));
    if (op < 7) {
      const std::string value = rnd.String(1 + rnd.Uniform(100));
      ASSERT_TRUE(engine->Put(key, value).ok());
      model[key] = value;
    } else if (op < 9) {
      ASSERT_TRUE(engine->Delete(key).ok());
      model.erase(key);
    } else {
      std::string got;
      Status s = engine->Get(key, &got);
      if (model.count(key)) {
        ASSERT_TRUE(s.ok()) << key;
        EXPECT_EQ(got, model[key]);
      } else {
        EXPECT_TRUE(s.IsNotFound()) << key;
      }
    }
  }
  // Full scan equals the model.
  auto it = engine->NewIterator();
  auto model_it = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++model_it) {
    ASSERT_NE(model_it, model.end());
    EXPECT_EQ(it->key().ToString(), model_it->first);
    EXPECT_EQ(it->value().ToString(), model_it->second);
  }
  EXPECT_EQ(model_it, model.end());
}

INSTANTIATE_TEST_SUITE_P(MemtableSizes, EnginePropertyTest,
                         ::testing::Values(2 << 10, 8 << 10, 64 << 10, 1 << 20));

}  // namespace
}  // namespace veloce::storage

namespace veloce::storage {
namespace {

// ---------------------------------------------------------------------------
// BlockCache
// ---------------------------------------------------------------------------

TEST(BlockCacheTest, InsertLookupEvict) {
  BlockCache cache(/*capacity_bytes=*/1000);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  cache.Insert(1, 0, std::string(400, 'a'));
  cache.Insert(1, 1, std::string(400, 'b'));
  auto hit = cache.Lookup(1, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0], 'a');
  // A third block over capacity evicts the least-recently-used (block 1,
  // since block 0 was just touched).
  cache.Insert(1, 2, std::string(400, 'c'));
  EXPECT_NE(cache.Lookup(1, 0), nullptr);
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);
  EXPECT_LE(cache.usage_bytes(), 1000u);
}

TEST(BlockCacheTest, EvictFileDropsAllItsBlocks) {
  BlockCache cache(1 << 20);
  cache.Insert(7, 0, "x");
  cache.Insert(7, 1, "y");
  cache.Insert(8, 0, "z");
  cache.EvictFile(7);
  EXPECT_EQ(cache.Lookup(7, 0), nullptr);
  EXPECT_EQ(cache.Lookup(7, 1), nullptr);
  EXPECT_NE(cache.Lookup(8, 0), nullptr);
}

TEST(BlockCacheTest, SharedPtrSurvivesEviction) {
  BlockCache cache(20);
  cache.Insert(1, 0, "pinned-content");
  auto pinned = cache.Lookup(1, 0);
  cache.Insert(1, 1, std::string(100, 'x'));  // evicts everything
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(*pinned, "pinned-content");  // still valid for the holder
}

TEST(BlockCacheTest, HitMissCounters) {
  BlockCache cache(1 << 20);
  cache.Insert(1, 0, "v");
  (void)cache.Lookup(1, 0);
  (void)cache.Lookup(1, 0);
  (void)cache.Lookup(2, 0);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(BlockCacheTest, EngineGetsServeFromCache) {
  EngineOptions opts;
  opts.memtable_bytes = 8 << 10;
  auto engine = *Engine::Open(opts);
  Random rnd(3);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(engine->Put("key" + std::to_string(i), rnd.String(64)).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());
  std::string value;
  ASSERT_TRUE(engine->Get("key42", &value).ok());
  const uint64_t hits_before = engine->block_cache()->hits();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine->Get("key42", &value).ok());
  }
  EXPECT_GE(engine->block_cache()->hits(), hits_before + 10);
}

}  // namespace
}  // namespace veloce::storage
