#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/codec.h"
#include "common/random.h"
#include "storage/background.h"
#include "storage/bloom.h"
#include "storage/engine.h"
#include "storage/env.h"
#include "storage/memtable.h"
#include "storage/sstable.h"
#include "storage/wal.h"
#include "storage/write_batch.h"

namespace veloce::storage {
namespace {

// ---------------------------------------------------------------------------
// Env
// ---------------------------------------------------------------------------

TEST(MemEnvTest, WriteReadDelete) {
  auto env = NewMemEnv();
  ASSERT_TRUE(env->WriteStringToFile("dir/a", "hello").ok());
  EXPECT_TRUE(env->FileExists("dir/a"));
  std::string out;
  ASSERT_TRUE(env->ReadFileToString("dir/a", &out).ok());
  EXPECT_EQ(out, "hello");
  ASSERT_TRUE(env->DeleteFile("dir/a").ok());
  EXPECT_FALSE(env->FileExists("dir/a"));
  EXPECT_TRUE(env->ReadFileToString("dir/a", &out).IsNotFound());
}

TEST(MemEnvTest, GetChildrenListsDirectFilesOnly) {
  auto env = NewMemEnv();
  ASSERT_TRUE(env->WriteStringToFile("db/1.sst", "x").ok());
  ASSERT_TRUE(env->WriteStringToFile("db/2.sst", "y").ok());
  ASSERT_TRUE(env->WriteStringToFile("db/sub/3.sst", "z").ok());
  ASSERT_TRUE(env->WriteStringToFile("other/4.sst", "w").ok());
  std::vector<std::string> children;
  ASSERT_TRUE(env->GetChildren("db", &children).ok());
  EXPECT_EQ(children.size(), 2u);
}

TEST(MemEnvTest, RenameMovesAndReplacesTarget) {
  auto env = NewMemEnv();
  ASSERT_TRUE(env->WriteStringToFile("a", "new").ok());
  ASSERT_TRUE(env->WriteStringToFile("b", "old").ok());
  ASSERT_TRUE(env->RenameFile("a", "b").ok());
  EXPECT_FALSE(env->FileExists("a"));
  std::string out;
  ASSERT_TRUE(env->ReadFileToString("b", &out).ok());
  EXPECT_EQ(out, "new");
  EXPECT_TRUE(env->RenameFile("missing", "c").IsNotFound());
}

TEST(MemEnvTest, WriteStringToFileIsAtomicViaTempAndRename) {
  auto env = NewMemEnv();
  ASSERT_TRUE(env->WriteStringToFile("manifest", "v1").ok());
  ASSERT_TRUE(env->WriteStringToFile("manifest", "v2-longer").ok());
  std::string out;
  ASSERT_TRUE(env->ReadFileToString("manifest", &out).ok());
  EXPECT_EQ(out, "v2-longer");
  // The temp file used for the atomic swap never outlives the write.
  EXPECT_FALSE(env->FileExists("manifest.tmp"));
}

TEST(PosixEnvTest, RenameAndAtomicWrite) {
  Env* env = PosixEnv();
  const std::string dir = ::testing::TempDir() + "veloce_env_test";
  ASSERT_TRUE(env->CreateDirIfMissing(dir).ok());
  const std::string fname = dir + "/MANIFEST";
  ASSERT_TRUE(env->WriteStringToFile(fname, "v1").ok());
  ASSERT_TRUE(env->WriteStringToFile(fname, "v2").ok());
  std::string out;
  ASSERT_TRUE(env->ReadFileToString(fname, &out).ok());
  EXPECT_EQ(out, "v2");
  EXPECT_FALSE(env->FileExists(fname + ".tmp"));
  ASSERT_TRUE(env->RenameFile(fname, dir + "/MANIFEST-2").ok());
  EXPECT_FALSE(env->FileExists(fname));
  ASSERT_TRUE(env->ReadFileToString(dir + "/MANIFEST-2", &out).ok());
  EXPECT_EQ(out, "v2");
  ASSERT_TRUE(env->DeleteFile(dir + "/MANIFEST-2").ok());
}

TEST(MemEnvTest, RandomAccessReads) {
  auto env = NewMemEnv();
  ASSERT_TRUE(env->WriteStringToFile("f", "0123456789").ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env->NewRandomAccessFile("f", &file).ok());
  std::string out;
  ASSERT_TRUE(file->Read(3, 4, &out).ok());
  EXPECT_EQ(out, "3456");
  // Reads past EOF clamp.
  ASSERT_TRUE(file->Read(8, 10, &out).ok());
  EXPECT_EQ(out, "89");
}

// ---------------------------------------------------------------------------
// WriteBatch
// ---------------------------------------------------------------------------

TEST(WriteBatchTest, IterateReplaysOperations) {
  WriteBatch batch;
  batch.Put("k1", "v1");
  batch.Delete("k2");
  batch.Put("k3", "v3");
  EXPECT_EQ(batch.Count(), 3u);
  EXPECT_EQ(batch.PayloadBytes(), 2u + 2u + 2u + 2u + 2u);

  struct Collector : WriteBatch::Handler {
    std::vector<std::string> ops;
    void Put(Slice k, Slice v) override { ops.push_back("P:" + k.ToString() + "=" + v.ToString()); }
    void Delete(Slice k) override { ops.push_back("D:" + k.ToString()); }
  } collector;
  ASSERT_TRUE(batch.Iterate(&collector).ok());
  ASSERT_EQ(collector.ops.size(), 3u);
  EXPECT_EQ(collector.ops[0], "P:k1=v1");
  EXPECT_EQ(collector.ops[1], "D:k2");
  EXPECT_EQ(collector.ops[2], "P:k3=v3");
}

TEST(WriteBatchTest, SerializationRoundTrip) {
  WriteBatch batch;
  batch.Put("alpha", std::string(200, 'x'));
  batch.Delete("beta");
  WriteBatch restored;
  ASSERT_TRUE(restored.SetContents(batch.rep()).ok());
  EXPECT_EQ(restored.Count(), 2u);
  EXPECT_EQ(restored.PayloadBytes(), batch.PayloadBytes());
}

TEST(WriteBatchTest, CorruptContentsRejected) {
  WriteBatch batch;
  EXPECT_FALSE(batch.SetContents("\x05garbage-without-structure").ok());
}

TEST(WriteBatchTest, ClearResets) {
  WriteBatch batch;
  batch.Put("a", "b");
  batch.Clear();
  EXPECT_EQ(batch.Count(), 0u);
  EXPECT_EQ(batch.PayloadBytes(), 0u);
}

// ---------------------------------------------------------------------------
// MemTable
// ---------------------------------------------------------------------------

TEST(MemTableTest, PutGetLatestVersion) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "key", "v1");
  mem.Add(5, ValueType::kValue, "key", "v5");
  std::string value;
  bool deleted = false;
  ASSERT_TRUE(mem.Get("key", kMaxSequenceNumber, &value, &deleted));
  EXPECT_FALSE(deleted);
  EXPECT_EQ(value, "v5");
}

TEST(MemTableTest, SnapshotReadsSeeOldVersions) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "key", "v1");
  mem.Add(5, ValueType::kValue, "key", "v5");
  std::string value;
  bool deleted = false;
  ASSERT_TRUE(mem.Get("key", 3, &value, &deleted));
  EXPECT_EQ(value, "v1");
  EXPECT_FALSE(mem.Get("key", 0, &value, &deleted));
}

TEST(MemTableTest, TombstoneVisible) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "key", "v1");
  mem.Add(2, ValueType::kDeletion, "key", "");
  std::string value;
  bool deleted = false;
  ASSERT_TRUE(mem.Get("key", kMaxSequenceNumber, &value, &deleted));
  EXPECT_TRUE(deleted);
}

TEST(MemTableTest, MissingKey) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "a", "1");
  mem.Add(2, ValueType::kValue, "c", "3");
  std::string value;
  bool deleted = false;
  EXPECT_FALSE(mem.Get("b", kMaxSequenceNumber, &value, &deleted));
}

TEST(MemTableTest, IteratorSortedByInternalKey) {
  MemTable mem;
  Random rnd(3);
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key" + std::to_string(rnd.Uniform(200));
    const std::string value = "v" + std::to_string(i);
    mem.Add(static_cast<SequenceNumber>(i + 1), ValueType::kValue, key, value);
    expected[key] = value;  // later writes win
  }
  // Walk with the iterator; for each user key the FIRST occurrence is the
  // newest version.
  auto it = mem.NewIterator();
  std::map<std::string, std::string> got;
  std::string prev_ikey;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    const std::string ikey = it->key().ToString();
    if (!prev_ikey.empty()) {
      EXPECT_LT(CompareInternalKey(Slice(prev_ikey), it->key()), 0);
    }
    prev_ikey = ikey;
    const std::string ukey = ExtractUserKey(it->key()).ToString();
    if (!got.count(ukey)) got[ukey] = it->value().ToString();
  }
  EXPECT_EQ(got, expected);
}

TEST(MemTableTest, MemoryUsageGrows) {
  MemTable mem;
  const size_t before = mem.ApproximateMemoryUsage();
  mem.Add(1, ValueType::kValue, "key", std::string(1000, 'v'));
  EXPECT_GT(mem.ApproximateMemoryUsage(), before + 1000);
}

// ---------------------------------------------------------------------------
// WAL
// ---------------------------------------------------------------------------

TEST(WalTest, RoundTrip) {
  auto env = NewMemEnv();
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile("wal", &file).ok());
    LogWriter writer(std::move(file));
    ASSERT_TRUE(writer.AddRecord("first").ok());
    ASSERT_TRUE(writer.AddRecord("second record, longer").ok());
    ASSERT_TRUE(writer.AddRecord("").ok());
  }
  std::string contents;
  ASSERT_TRUE(env->ReadFileToString("wal", &contents).ok());
  LogReader reader(std::move(contents));
  std::string rec;
  bool corrupt = false;
  ASSERT_TRUE(reader.ReadRecord(&rec, &corrupt));
  EXPECT_EQ(rec, "first");
  ASSERT_TRUE(reader.ReadRecord(&rec, &corrupt));
  EXPECT_EQ(rec, "second record, longer");
  ASSERT_TRUE(reader.ReadRecord(&rec, &corrupt));
  EXPECT_EQ(rec, "");
  EXPECT_FALSE(reader.ReadRecord(&rec, &corrupt));
  EXPECT_FALSE(corrupt);
}

TEST(WalTest, TruncatedTailStopsCleanly) {
  auto env = NewMemEnv();
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile("wal", &file).ok());
    LogWriter writer(std::move(file));
    ASSERT_TRUE(writer.AddRecord("complete").ok());
    ASSERT_TRUE(writer.AddRecord("will be truncated").ok());
  }
  std::string contents;
  ASSERT_TRUE(env->ReadFileToString("wal", &contents).ok());
  contents.resize(contents.size() - 5);  // simulate crash mid-write
  LogReader reader(std::move(contents));
  std::string rec;
  bool corrupt = false;
  ASSERT_TRUE(reader.ReadRecord(&rec, &corrupt));
  EXPECT_EQ(rec, "complete");
  EXPECT_FALSE(reader.ReadRecord(&rec, &corrupt));
  EXPECT_FALSE(corrupt);  // truncation is a clean end, not corruption
}

TEST(WalTest, BitFlipDetected) {
  auto env = NewMemEnv();
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile("wal", &file).ok());
    LogWriter writer(std::move(file));
    ASSERT_TRUE(writer.AddRecord("record payload").ok());
    ASSERT_TRUE(writer.AddRecord("second record").ok());
  }
  std::string contents;
  ASSERT_TRUE(env->ReadFileToString("wal", &contents).ok());
  // Damage the FIRST record: a CRC mismatch mid-log is hard corruption. (A
  // mismatch on the final record — ending exactly at EOF — is instead
  // treated as a torn tail; see tests/fault_test.cc.)
  contents[10] ^= 0x01;
  LogReader reader(std::move(contents));
  std::string rec;
  bool corrupt = false;
  EXPECT_FALSE(reader.ReadRecord(&rec, &corrupt));
  EXPECT_TRUE(corrupt);
  EXPECT_FALSE(reader.tail_truncated());
}

// ---------------------------------------------------------------------------
// SSTable
// ---------------------------------------------------------------------------

TEST(SSTableTest, BuildAndLookup) {
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> wfile;
  ASSERT_TRUE(env->NewWritableFile("t.sst", &wfile).ok());
  TableBuilder builder(std::move(wfile), /*block_size=*/64);
  for (int i = 0; i < 100; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%03d", i);
    ASSERT_TRUE(builder.Add(MakeInternalKey(key, 1, ValueType::kValue),
                            "value" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(builder.Finish().ok());
  EXPECT_EQ(builder.num_entries(), 100u);

  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env->NewRandomAccessFile("t.sst", &rfile).ok());
  auto table_or = Table::Open(std::move(rfile));
  ASSERT_TRUE(table_or.ok());
  auto table = *table_or;
  EXPECT_GT(table->num_blocks(), 1u);  // small block size forces many blocks

  std::string fkey, fvalue;
  ASSERT_TRUE(table
                  ->SeekEntry(MakeInternalKey("key042", kMaxSequenceNumber,
                                              ValueType::kValue),
                              &fkey, &fvalue)
                  .ok());
  EXPECT_EQ(ExtractUserKey(Slice(fkey)).ToString(), "key042");
  EXPECT_EQ(fvalue, "value42");

  EXPECT_TRUE(table
                  ->SeekEntry(MakeInternalKey("zzz", kMaxSequenceNumber,
                                              ValueType::kValue),
                              &fkey, &fvalue)
                  .IsNotFound());
}

TEST(SSTableTest, IteratorScansAllEntries) {
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> wfile;
  ASSERT_TRUE(env->NewWritableFile("t.sst", &wfile).ok());
  TableBuilder builder(std::move(wfile), 128);
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", i);
    ASSERT_TRUE(builder.Add(MakeInternalKey(key, 7, ValueType::kValue),
                            std::to_string(i)).ok());
  }
  ASSERT_TRUE(builder.Finish().ok());

  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env->NewRandomAccessFile("t.sst", &rfile).ok());
  auto table = *Table::Open(std::move(rfile));
  auto it = table->NewIterator();
  int count = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    EXPECT_EQ(it->value().ToString(), std::to_string(count));
    ++count;
  }
  EXPECT_EQ(count, n);
}

TEST(SSTableTest, IteratorSeekLandsOnOrAfter) {
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> wfile;
  ASSERT_TRUE(env->NewWritableFile("t.sst", &wfile).ok());
  TableBuilder builder(std::move(wfile), 64);
  for (int i = 0; i < 100; i += 2) {  // even keys only
    char key[16];
    std::snprintf(key, sizeof(key), "k%03d", i);
    ASSERT_TRUE(builder.Add(MakeInternalKey(key, 1, ValueType::kValue), "v").ok());
  }
  ASSERT_TRUE(builder.Finish().ok());
  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env->NewRandomAccessFile("t.sst", &rfile).ok());
  auto table = *Table::Open(std::move(rfile));
  auto it = table->NewIterator();
  it->Seek(MakeInternalKey("k051", kMaxSequenceNumber, ValueType::kValue));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "k052");
  it->Seek(MakeInternalKey("k999", kMaxSequenceNumber, ValueType::kValue));
  EXPECT_FALSE(it->Valid());
}

TEST(SSTableTest, CorruptBlockDetected) {
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> wfile;
  ASSERT_TRUE(env->NewWritableFile("t.sst", &wfile).ok());
  TableBuilder builder(std::move(wfile), 4096);
  ASSERT_TRUE(builder.Add(MakeInternalKey("a", 1, ValueType::kValue), "v").ok());
  ASSERT_TRUE(builder.Finish().ok());
  std::string contents;
  ASSERT_TRUE(env->ReadFileToString("t.sst", &contents).ok());
  contents[2] ^= 0x40;  // flip a bit in the data block
  ASSERT_TRUE(env->WriteStringToFile("t2.sst", contents).ok());
  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env->NewRandomAccessFile("t2.sst", &rfile).ok());
  auto table = *Table::Open(std::move(rfile));
  std::string fkey, fvalue;
  EXPECT_EQ(table->SeekEntry(MakeInternalKey("a", kMaxSequenceNumber,
                                             ValueType::kValue),
                             &fkey, &fvalue)
                .code(),
            Code::kCorruption);
}

// ---------------------------------------------------------------------------
// Bloom filter
// ---------------------------------------------------------------------------

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilterBuilder builder(10);
  std::vector<std::string> keys;
  for (int i = 0; i < 2000; ++i) keys.push_back("key" + std::to_string(i));
  for (const auto& k : keys) builder.AddKey(k);
  const std::string filter = builder.Finish();
  for (const auto& k : keys) {
    EXPECT_TRUE(BloomKeyMayMatch(k, filter)) << k;
  }
}

TEST(BloomFilterTest, ConsecutiveDuplicatesCountOnce) {
  // Sorted SSTable adds feed the builder duplicate prefixes back to back
  // (every version of one MVCC key); they must not inflate the filter.
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 100; ++i) builder.AddKey("same-prefix");
  EXPECT_EQ(builder.num_keys(), 1u);
}

TEST(BloomFilterTest, FalsePositiveRateUnderTenBitsPerKey) {
  BloomFilterBuilder builder(10);
  const int n = 100000;
  char key[16];
  for (int i = 0; i < n; ++i) {
    std::snprintf(key, sizeof(key), "k%06d", i);
    builder.AddKey(key);
  }
  const std::string filter = builder.Finish();
  int false_positives = 0;
  for (int i = 0; i < n; ++i) {
    std::snprintf(key, sizeof(key), "absent%06d", i);
    if (BloomKeyMayMatch(key, filter)) ++false_positives;
  }
  // 10 bits/key with k=6 probes gives ~0.8% theoretically; assert the
  // issue's ceiling with headroom for hash quality.
  EXPECT_LE(false_positives, n * 15 / 1000)
      << "measured FPR " << (100.0 * false_positives / n) << "%";
}

TEST(BloomFilterTest, TinyOrMalformedFiltersFailOpen) {
  EXPECT_TRUE(BloomKeyMayMatch("anything", Slice()));
  EXPECT_TRUE(BloomKeyMayMatch("anything", Slice("x", 1)));
  // k > 30 is reserved for future encodings: must pass everything.
  std::string future(9, '\0');
  future.back() = static_cast<char>(31);
  EXPECT_TRUE(BloomKeyMayMatch("anything", future));
}

// ---------------------------------------------------------------------------
// SSTable filter blocks
// ---------------------------------------------------------------------------

TEST(SSTableTest, FilterBlockRoundTrip) {
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> wfile;
  ASSERT_TRUE(env->NewWritableFile("t.sst", &wfile).ok());
  TableOptions topts;
  topts.block_size = 64;
  TableBuilder builder(std::move(wfile), topts);
  char key[16];
  for (int i = 0; i < 500; ++i) {
    std::snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_TRUE(builder.Add(MakeInternalKey(key, 1, ValueType::kValue), "v").ok());
  }
  ASSERT_TRUE(builder.Finish().ok());

  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env->NewRandomAccessFile("t.sst", &rfile).ok());
  auto table = *Table::Open(std::move(rfile));
  EXPECT_TRUE(table->has_filter());
  EXPECT_EQ(table->format_version(), 2u);
  for (int i = 0; i < 500; ++i) {
    std::snprintf(key, sizeof(key), "k%04d", i);
    EXPECT_TRUE(table->MayContainPrefix(key)) << key;  // no false negatives
  }
  int false_positives = 0;
  for (int i = 0; i < 500; ++i) {
    std::snprintf(key, sizeof(key), "absent%04d", i);
    if (table->MayContainPrefix(key)) ++false_positives;
  }
  EXPECT_LT(false_positives, 25);  // ~1% expected at 10 bits/key
}

TEST(SSTableTest, PreFilterTableStillOpensAndReads) {
  // bloom_filter=false writes the legacy v1 footer — the exact layout of
  // every table built before filters existed. Readers must keep serving it.
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> wfile;
  ASSERT_TRUE(env->NewWritableFile("t.sst", &wfile).ok());
  TableOptions topts;
  topts.bloom_filter = false;
  TableBuilder builder(std::move(wfile), topts);
  ASSERT_TRUE(builder.Add(MakeInternalKey("a", 1, ValueType::kValue), "va").ok());
  ASSERT_TRUE(builder.Add(MakeInternalKey("b", 1, ValueType::kValue), "vb").ok());
  ASSERT_TRUE(builder.Finish().ok());

  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env->NewRandomAccessFile("t.sst", &rfile).ok());
  auto table = *Table::Open(std::move(rfile));
  EXPECT_FALSE(table->has_filter());
  EXPECT_EQ(table->format_version(), 1u);
  // Without a filter every prefix may match: reads fall through to blocks.
  EXPECT_TRUE(table->MayContainPrefix("a"));
  EXPECT_TRUE(table->MayContainPrefix("zzz"));
  std::string fkey, fvalue;
  ASSERT_TRUE(table->SeekEntry(MakeInternalKey("b", kMaxSequenceNumber,
                                               ValueType::kValue),
                               &fkey, &fvalue).ok());
  EXPECT_EQ(fvalue, "vb");
}

TEST(SSTableTest, PrefixExtractorControlsFilterGranularity) {
  // With an extractor that strips a 4-byte suffix, all "versions" of one
  // logical key share one filter entry, probed by bare prefix.
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> wfile;
  ASSERT_TRUE(env->NewWritableFile("t.sst", &wfile).ok());
  TableOptions topts;
  topts.prefix_extractor = [](Slice user_key) {
    return user_key.size() > 4
               ? Slice(user_key.data(), user_key.size() - 4)
               : user_key;
  };
  TableBuilder builder(std::move(wfile), topts);
  ASSERT_TRUE(
      builder.Add(MakeInternalKey("alpha0001", 3, ValueType::kValue), "1").ok());
  ASSERT_TRUE(
      builder.Add(MakeInternalKey("alpha0002", 2, ValueType::kValue), "2").ok());
  ASSERT_TRUE(
      builder.Add(MakeInternalKey("beta_0001", 1, ValueType::kValue), "3").ok());
  ASSERT_TRUE(builder.Finish().ok());

  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env->NewRandomAccessFile("t.sst", &rfile).ok());
  auto table = *Table::Open(std::move(rfile));
  ASSERT_TRUE(table->has_filter());
  EXPECT_TRUE(table->MayContainPrefix("alpha"));
  EXPECT_TRUE(table->MayContainPrefix("beta_"));
  EXPECT_FALSE(table->MayContainPrefix("gamma"));
}

TEST(SSTableTest, CorruptFilterBlockFailsOpen) {
  // A damaged filter must degrade to "no filter" (reads stay correct),
  // never to false negatives.
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> wfile;
  ASSERT_TRUE(env->NewWritableFile("t.sst", &wfile).ok());
  TableBuilder builder(std::move(wfile), TableOptions{});
  ASSERT_TRUE(builder.Add(MakeInternalKey("a", 1, ValueType::kValue), "va").ok());
  ASSERT_TRUE(builder.Finish().ok());
  std::string contents;
  ASSERT_TRUE(env->ReadFileToString("t.sst", &contents).ok());
  // v2 footer: filter_offset is the first u64 of the trailing 48 bytes.
  Slice footer(contents.data() + contents.size() - 48, 8);
  uint64_t filter_offset = 0;
  ASSERT_TRUE(GetFixed64(&footer, &filter_offset));
  contents[filter_offset] ^= 0x5A;
  ASSERT_TRUE(env->WriteStringToFile("t2.sst", contents).ok());

  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env->NewRandomAccessFile("t2.sst", &rfile).ok());
  auto table = *Table::Open(std::move(rfile));
  EXPECT_TRUE(table->has_filter());            // footer says one exists
  EXPECT_TRUE(table->MayContainPrefix("a"));   // but probes fail open
  EXPECT_TRUE(table->MayContainPrefix("zz"));
  std::string fkey, fvalue;
  EXPECT_TRUE(table->SeekEntry(MakeInternalKey("a", kMaxSequenceNumber,
                                               ValueType::kValue),
                               &fkey, &fvalue).ok());
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

EngineOptions SmallEngineOptions() {
  EngineOptions opts;
  opts.memtable_bytes = 16 << 10;  // tiny, to force flushes
  opts.sstable_target_bytes = 8 << 10;
  opts.level_base_bytes = 64 << 10;
  return opts;
}

TEST(EngineTest, PutGetDelete) {
  auto engine = *Engine::Open({});
  ASSERT_TRUE(engine->Put("k", "v").ok());
  std::string value;
  ASSERT_TRUE(engine->Get("k", &value).ok());
  EXPECT_EQ(value, "v");
  ASSERT_TRUE(engine->Delete("k").ok());
  EXPECT_TRUE(engine->Get("k", &value).IsNotFound());
}

TEST(EngineTest, OverwriteReturnsLatest) {
  auto engine = *Engine::Open({});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine->Put("k", "v" + std::to_string(i)).ok());
  }
  std::string value;
  ASSERT_TRUE(engine->Get("k", &value).ok());
  EXPECT_EQ(value, "v9");
}

TEST(EngineTest, SurvivesFlushes) {
  auto engine = *Engine::Open(SmallEngineOptions());
  std::map<std::string, std::string> expected;
  Random rnd(11);
  for (int i = 0; i < 3000; ++i) {
    const std::string key = "key" + std::to_string(rnd.Uniform(500));
    const std::string value = rnd.String(64);
    ASSERT_TRUE(engine->Put(key, value).ok());
    expected[key] = value;
  }
  EXPECT_GT(engine->stats().num_flushes, 0u);
  for (const auto& [key, value] : expected) {
    std::string got;
    ASSERT_TRUE(engine->Get(key, &got).ok()) << key;
    EXPECT_EQ(got, value);
  }
}

TEST(EngineTest, CompactionPreservesData) {
  auto engine = *Engine::Open(SmallEngineOptions());
  std::map<std::string, std::string> expected;
  Random rnd(13);
  for (int i = 0; i < 5000; ++i) {
    const std::string key = "key" + std::to_string(rnd.Uniform(800));
    if (rnd.Bernoulli(0.1)) {
      ASSERT_TRUE(engine->Delete(key).ok());
      expected.erase(key);
    } else {
      const std::string value = rnd.String(50);
      ASSERT_TRUE(engine->Put(key, value).ok());
      expected[key] = value;
    }
  }
  ASSERT_TRUE(engine->CompactAll().ok());
  EXPECT_GT(engine->stats().num_compactions, 0u);
  EXPECT_EQ(engine->NumFilesAtLevel(0), 0);
  for (const auto& [key, value] : expected) {
    std::string got;
    ASSERT_TRUE(engine->Get(key, &got).ok()) << key;
    EXPECT_EQ(got, value);
  }
  // Deleted keys stay deleted.
  std::string got;
  for (int i = 0; i < 800; ++i) {
    const std::string key = "key" + std::to_string(i);
    if (!expected.count(key)) {
      EXPECT_TRUE(engine->Get(key, &got).IsNotFound()) << key;
    }
  }
}

TEST(EngineTest, IteratorSeesConsistentSnapshot) {
  auto engine = *Engine::Open({});
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine->Put("k" + std::to_string(i), "old").ok());
  }
  auto it = engine->NewIterator();
  // Mutate after iterator creation.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine->Put("k" + std::to_string(i), "new").ok());
  }
  ASSERT_TRUE(engine->Put("extra", "x").ok());
  int count = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    EXPECT_EQ(it->value().ToString(), "old");
    ++count;
  }
  EXPECT_EQ(count, 100);
}

TEST(EngineTest, IteratorSkipsTombstones) {
  auto engine = *Engine::Open({});
  ASSERT_TRUE(engine->Put("a", "1").ok());
  ASSERT_TRUE(engine->Put("b", "2").ok());
  ASSERT_TRUE(engine->Put("c", "3").ok());
  ASSERT_TRUE(engine->Delete("b").ok());
  auto it = engine->NewIterator();
  std::vector<std::string> keys;
  for (it->SeekToFirst(); it->Valid(); it->Next()) keys.push_back(it->key().ToString());
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "c"}));
}

TEST(EngineTest, IteratorSeek) {
  auto engine = *Engine::Open({});
  for (int i = 0; i < 50; ++i) {
    char key[8];
    std::snprintf(key, sizeof(key), "k%03d", i * 2);
    ASSERT_TRUE(engine->Put(key, "v").ok());
  }
  auto it = engine->NewIterator();
  it->Seek("k011");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "k012");
}

TEST(EngineTest, RecoveryFromWal) {
  auto env = NewMemEnv();
  EngineOptions opts;
  opts.env = env.get();
  opts.dir = "db";
  {
    auto engine = *Engine::Open(opts);
    ASSERT_TRUE(engine->Put("persisted", "yes").ok());
    ASSERT_TRUE(engine->Put("also", "this").ok());
    // No explicit flush: data only in WAL + memtable.
  }
  auto engine = *Engine::Open(opts);
  std::string value;
  ASSERT_TRUE(engine->Get("persisted", &value).ok());
  EXPECT_EQ(value, "yes");
  ASSERT_TRUE(engine->Get("also", &value).ok());
  EXPECT_EQ(value, "this");
}

TEST(EngineTest, RecoveryAfterFlushAndCompaction) {
  auto env = NewMemEnv();
  EngineOptions opts = SmallEngineOptions();
  opts.env = env.get();
  opts.dir = "db";
  std::map<std::string, std::string> expected;
  {
    auto engine = *Engine::Open(opts);
    Random rnd(17);
    for (int i = 0; i < 2000; ++i) {
      const std::string key = "key" + std::to_string(rnd.Uniform(300));
      const std::string value = rnd.String(40);
      ASSERT_TRUE(engine->Put(key, value).ok());
      expected[key] = value;
    }
    ASSERT_TRUE(engine->Flush().ok());
  }
  auto engine = *Engine::Open(opts);
  for (const auto& [key, value] : expected) {
    std::string got;
    ASSERT_TRUE(engine->Get(key, &got).ok()) << key;
    EXPECT_EQ(got, value);
  }
}

TEST(EngineTest, GetVisibleDistinguishesTombstoneFromAbsent) {
  auto engine = *Engine::Open(EngineOptions{});
  ASSERT_TRUE(engine->Put("k", "v").ok());
  ASSERT_TRUE(engine->Delete("k").ok());
  ASSERT_TRUE(engine->Flush().ok());  // exercise the SSTable path too

  std::string value;
  bool found = false;
  EXPECT_TRUE(engine->GetVisible("k", &value, &found).IsNotFound());
  EXPECT_TRUE(found);  // present, as a tombstone
  EXPECT_TRUE(engine->GetVisible("never-written", &value, &found).IsNotFound());
  EXPECT_FALSE(found);  // genuinely absent

  ASSERT_TRUE(engine->Put("live", "yes").ok());
  ASSERT_TRUE(engine->GetVisible("live", &value, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(value, "yes");
}

TEST(EngineTest, BloomSkipsTablesAndCountsUsefulProbes) {
  EngineOptions opts;
  auto engine = *Engine::Open(opts);
  // Two L0 tables with *overlapping* key ranges so range pruning cannot
  // help, but disjoint key sets so blooms can.
  ASSERT_TRUE(engine->Put("a", "1").ok());
  ASSERT_TRUE(engine->Put("c", "2").ok());
  ASSERT_TRUE(engine->Flush().ok());
  ASSERT_TRUE(engine->Put("b", "3").ok());
  ASSERT_TRUE(engine->Put("d", "4").ok());
  ASSERT_TRUE(engine->Flush().ok());
  ASSERT_EQ(engine->NumFilesAtLevel(0), 2);

  std::string value;
  // "c" lives only in the older table. L0 searches newest-first, so the
  // [b,d] table is consulted first: it overlaps "c" (range pruning cannot
  // reject it) but its bloom filter proves "c" absent without a block read.
  ASSERT_TRUE(engine->Get("c", &value).ok());
  EXPECT_EQ(value, "2");
  const EngineStats& stats = engine->stats();
  EXPECT_GT(stats.bloom_checked, 0u);
  EXPECT_GT(stats.bloom_useful, 0u);
  EXPECT_LE(stats.bloom_false_positive, stats.bloom_checked);
}

TEST(EngineTest, RangePruningCountsSkippedTables) {
  EngineOptions opts;
  auto engine = *Engine::Open(opts);
  ASSERT_TRUE(engine->Put("a1", "1").ok());
  ASSERT_TRUE(engine->Put("a2", "2").ok());
  ASSERT_TRUE(engine->Flush().ok());
  ASSERT_TRUE(engine->Put("z1", "3").ok());
  ASSERT_TRUE(engine->Put("z2", "4").ok());
  ASSERT_TRUE(engine->Flush().ok());

  std::string value;
  // L0 searches newest-first: the [z1,z2] table is reached first and
  // rejected on its key range alone before "a1" is found in the older one.
  ASSERT_TRUE(engine->Get("a1", &value).ok());
  EXPECT_GT(engine->stats().tables_pruned, 0u);
}

TEST(EngineTest, BloomDisabledEngineWritesLegacyTablesNewEngineReadsThem) {
  // The upgrade scenario: tables written before filters existed (v1) must
  // keep serving reads under a bloom-enabled engine after reopen.
  auto env = NewMemEnv();
  EngineOptions opts;
  opts.env = env.get();
  opts.dir = "db";
  opts.bloom_filters = false;
  {
    auto engine = *Engine::Open(opts);
    ASSERT_TRUE(engine->Put("old-key", "old-value").ok());
    ASSERT_TRUE(engine->Flush().ok());
  }
  opts.bloom_filters = true;
  auto engine = *Engine::Open(opts);
  std::string value;
  ASSERT_TRUE(engine->Get("old-key", &value).ok());
  EXPECT_EQ(value, "old-value");
  // Legacy tables have no filter, so no probes were issued against them.
  EXPECT_EQ(engine->stats().bloom_checked, 0u);
  // New writes flush v2 tables; now probes happen.
  ASSERT_TRUE(engine->Put("new-key", "new-value").ok());
  ASSERT_TRUE(engine->Flush().ok());
  ASSERT_TRUE(engine->Get("new-key", &value).ok());
  EXPECT_GT(engine->stats().bloom_checked, 0u);
}

TEST(EngineTest, ManifestReloadPreservesPruningMetadata) {
  // Key-range pruning and filter consultation both run off manifest
  // metadata; both must survive a close/reopen cycle.
  auto env = NewMemEnv();
  EngineOptions opts = SmallEngineOptions();
  opts.env = env.get();
  opts.dir = "db";
  {
    auto engine = *Engine::Open(opts);
    ASSERT_TRUE(engine->Put("aaa", "1").ok());
    ASSERT_TRUE(engine->Flush().ok());
    ASSERT_TRUE(engine->Put("zzz", "2").ok());
    ASSERT_TRUE(engine->Flush().ok());
  }
  auto engine = *Engine::Open(opts);
  std::string value;
  // L0 searches newest-first: the reloaded [zzz,zzz] table must be range-
  // pruned before "aaa" is found, and the older table's filter must load.
  ASSERT_TRUE(engine->Get("aaa", &value).ok());
  EXPECT_EQ(value, "1");
  EXPECT_GT(engine->stats().tables_pruned, 0u);
  EXPECT_GT(engine->stats().bloom_checked, 0u);
}

TEST(BoundedIteratorTest, RespectsBounds) {
  EngineOptions opts;
  opts.block_bytes = 64;  // several keys per block, several blocks per table
  auto engine = *Engine::Open(opts);
  char key[16];
  for (int i = 0; i < 100; ++i) {
    std::snprintf(key, sizeof(key), "k%03d", i);
    ASSERT_TRUE(engine->Put(key, std::to_string(i)).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());

  // Bound inside the key space (and inside a data block).
  auto it = engine->NewBoundedIterator("k010", "k020");
  int count = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) ++count;
  EXPECT_EQ(count, 10);
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "k010");

  // Seek below the lower bound clamps to it.
  it->Seek("a");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "k010");
  // Seek past the upper bound invalidates.
  it->Seek("k020");
  EXPECT_FALSE(it->Valid());

  // Empty upper bound = unbounded above.
  auto open_end = engine->NewBoundedIterator("k090", Slice());
  count = 0;
  for (open_end->SeekToFirst(); open_end->Valid(); open_end->Next()) ++count;
  EXPECT_EQ(count, 10);

  // Bounds entirely past the largest key: nothing, and the only table is
  // pruned on metadata alone.
  const uint64_t pruned_before = engine->stats().tables_pruned;
  auto past = engine->NewBoundedIterator("x", Slice());
  past->SeekToFirst();
  EXPECT_FALSE(past->Valid());
  EXPECT_GT(engine->stats().tables_pruned, pruned_before);

  // Bounds entirely before the smallest key.
  auto before = engine->NewBoundedIterator("a", "b");
  before->SeekToFirst();
  EXPECT_FALSE(before->Valid());
}

TEST(BoundedIteratorTest, EmptyLowerBoundStartsAtFirstKey) {
  auto engine = *Engine::Open(EngineOptions{});
  ASSERT_TRUE(engine->Put("m", "1").ok());
  ASSERT_TRUE(engine->Flush().ok());
  auto it = engine->NewBoundedIterator(Slice(), Slice());
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "m");
}

TEST(BoundedIteratorTest, SnapshotConsistentAcrossBounds) {
  auto engine = *Engine::Open(EngineOptions{});
  ASSERT_TRUE(engine->Put("k1", "old").ok());
  auto it = engine->NewBoundedIterator("k0", "k9");
  ASSERT_TRUE(engine->Put("k1", "new").ok());
  ASSERT_TRUE(engine->Put("k2", "invisible").ok());
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->value().ToString(), "old");
  it->Next();
  EXPECT_FALSE(it->Valid());  // k2 written after the snapshot
}

TEST(EngineTest, StatsTrackWriteAmplification) {
  auto engine = *Engine::Open(SmallEngineOptions());
  Random rnd(19);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(engine->Put("key" + std::to_string(rnd.Uniform(1000)),
                            rnd.String(60)).ok());
  }
  const EngineStats& stats = engine->stats();
  EXPECT_GT(stats.ingest_bytes, 0u);
  EXPECT_GT(stats.wal_bytes, stats.ingest_bytes);  // WAL framing overhead
  EXPECT_GT(stats.flush_bytes, 0u);
  // LSM write amplification: total bytes written exceeds ingested payload.
  EXPECT_GT(stats.total_bytes_written(), stats.ingest_bytes);
}

TEST(EngineTest, AtomicWriteBatch) {
  auto engine = *Engine::Open({});
  WriteBatch batch;
  batch.Put("x", "1");
  batch.Put("y", "2");
  batch.Delete("x");
  ASSERT_TRUE(engine->Write(batch).ok());
  std::string value;
  EXPECT_TRUE(engine->Get("x", &value).IsNotFound());
  ASSERT_TRUE(engine->Get("y", &value).ok());
  EXPECT_EQ(value, "2");
}

TEST(EngineTest, EmptyBatchIsNoop) {
  auto engine = *Engine::Open({});
  WriteBatch batch;
  ASSERT_TRUE(engine->Write(batch).ok());
  EXPECT_EQ(engine->LastSequence(), 0u);
}

// Property-style sweep: random workload against an in-memory model across
// engine configurations.
class EnginePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EnginePropertyTest, MatchesModelUnderRandomOps) {
  EngineOptions opts;
  opts.memtable_bytes = static_cast<size_t>(GetParam());
  opts.sstable_target_bytes = 4 << 10;
  opts.level_base_bytes = 32 << 10;
  opts.l0_compaction_trigger = 3;
  auto engine = *Engine::Open(opts);
  std::map<std::string, std::string> model;
  Random rnd(static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 3000; ++i) {
    const std::string key = "k" + std::to_string(rnd.Uniform(200));
    const int op = static_cast<int>(rnd.Uniform(10));
    if (op < 7) {
      const std::string value = rnd.String(1 + rnd.Uniform(100));
      ASSERT_TRUE(engine->Put(key, value).ok());
      model[key] = value;
    } else if (op < 9) {
      ASSERT_TRUE(engine->Delete(key).ok());
      model.erase(key);
    } else {
      std::string got;
      Status s = engine->Get(key, &got);
      if (model.count(key)) {
        ASSERT_TRUE(s.ok()) << key;
        EXPECT_EQ(got, model[key]);
      } else {
        EXPECT_TRUE(s.IsNotFound()) << key;
      }
    }
  }
  // Full scan equals the model.
  auto it = engine->NewIterator();
  auto model_it = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++model_it) {
    ASSERT_NE(model_it, model.end());
    EXPECT_EQ(it->key().ToString(), model_it->first);
    EXPECT_EQ(it->value().ToString(), model_it->second);
  }
  EXPECT_EQ(model_it, model.end());
}

INSTANTIATE_TEST_SUITE_P(MemtableSizes, EnginePropertyTest,
                         ::testing::Values(2 << 10, 8 << 10, 64 << 10, 1 << 20));

}  // namespace
}  // namespace veloce::storage

namespace veloce::storage {
namespace {

// ---------------------------------------------------------------------------
// BlockCache
// ---------------------------------------------------------------------------

TEST(BlockCacheTest, InsertLookupEvict) {
  // One shard so the whole budget is a single LRU with deterministic order.
  BlockCache cache(/*capacity_bytes=*/1000, /*num_shards=*/1);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  cache.Insert(1, 0, std::string(400, 'a'));
  cache.Insert(1, 1, std::string(400, 'b'));
  auto hit = cache.Lookup(1, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0], 'a');
  // A third block over capacity evicts the least-recently-used (block 1,
  // since block 0 was just touched).
  cache.Insert(1, 2, std::string(400, 'c'));
  EXPECT_NE(cache.Lookup(1, 0), nullptr);
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);
  EXPECT_LE(cache.usage_bytes(), 1000u);
}

TEST(BlockCacheTest, EvictFileDropsAllItsBlocks) {
  BlockCache cache(1 << 20);
  cache.Insert(7, 0, "x");
  cache.Insert(7, 1, "y");
  cache.Insert(8, 0, "z");
  cache.EvictFile(7);
  EXPECT_EQ(cache.Lookup(7, 0), nullptr);
  EXPECT_EQ(cache.Lookup(7, 1), nullptr);
  EXPECT_NE(cache.Lookup(8, 0), nullptr);
}

TEST(BlockCacheTest, SharedPtrSurvivesEviction) {
  BlockCache cache(20, /*num_shards=*/1);
  cache.Insert(1, 0, "pinned-content");
  auto pinned = cache.Lookup(1, 0);
  cache.Insert(1, 1, std::string(15, 'x'));  // over budget: evicts the LRU
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(*pinned, "pinned-content");  // still valid for the holder
}

TEST(BlockCacheTest, OversizedInsertRejectedNotPinned) {
  // Regression: a block larger than a shard's budget used to be admitted and
  // then pinned the cache over capacity forever (nothing left to evict).
  BlockCache cache(64, /*num_shards=*/1);
  cache.Insert(1, 0, "small");
  cache.Insert(1, 1, std::string(1000, 'x'));  // larger than total capacity
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);      // rejected outright
  EXPECT_NE(cache.Lookup(1, 0), nullptr);      // resident blocks untouched
  EXPECT_LE(cache.usage_bytes(), 64u);
}

TEST(BlockCacheTest, OversizedForShardBudgetRejected) {
  // With N shards each shard only controls capacity/N bytes, so a block can
  // be oversized for its shard even when smaller than the total capacity.
  BlockCache cache(1600, /*num_shards=*/16);
  cache.Insert(1, 0, std::string(500, 'x'));  // 500 > 1600/16
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  EXPECT_EQ(cache.usage_bytes(), 0u);
}

TEST(BlockCacheTest, ShardedCountersSumAcrossShards) {
  BlockCache cache(1 << 20, /*num_shards=*/4);
  ASSERT_EQ(cache.num_shards(), 4u);
  for (uint64_t i = 0; i < 32; ++i) {
    cache.Insert(i, i, "v");
    ASSERT_NE(cache.Lookup(i, i), nullptr);
  }
  (void)cache.Lookup(999, 999);
  EXPECT_EQ(cache.hits(), 32u);
  EXPECT_EQ(cache.misses(), 1u);
  uint64_t shard_hits = 0, shard_misses = 0;
  size_t shard_usage = 0;
  for (size_t s = 0; s < cache.num_shards(); ++s) {
    shard_hits += cache.shard_hits(s);
    shard_misses += cache.shard_misses(s);
    shard_usage += cache.shard_usage_bytes(s);
  }
  EXPECT_EQ(shard_hits, cache.hits());
  EXPECT_EQ(shard_misses, cache.misses());
  EXPECT_EQ(shard_usage, cache.usage_bytes());
}

TEST(BlockCacheTest, ConcurrentReadersAndWriters) {
  // Counter reads take no lock; this test is the TSan target proving the
  // old unsynchronized-size_t race is gone.
  BlockCache cache(1 << 16, /*num_shards=*/4);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Random rnd(1);
    for (int i = 0; i < 5000; ++i) {
      cache.Insert(rnd.Uniform(16), rnd.Uniform(64), std::string(64, 'w'));
    }
    stop.store(true);
  });
  std::thread reader([&] {
    Random rnd(2);
    while (!stop.load()) {
      (void)cache.Lookup(rnd.Uniform(16), rnd.Uniform(64));
    }
  });
  std::thread observer([&] {
    while (!stop.load()) {
      (void)cache.hits();
      (void)cache.misses();
      (void)cache.usage_bytes();
    }
  });
  writer.join();
  reader.join();
  observer.join();
  EXPECT_LE(cache.usage_bytes(), size_t{1 << 16});
}

TEST(BlockCacheTest, HitMissCounters) {
  BlockCache cache(1 << 20);
  cache.Insert(1, 0, "v");
  (void)cache.Lookup(1, 0);
  (void)cache.Lookup(1, 0);
  (void)cache.Lookup(2, 0);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(BlockCacheTest, EngineGetsServeFromCache) {
  EngineOptions opts;
  opts.memtable_bytes = 8 << 10;
  auto engine = *Engine::Open(opts);
  Random rnd(3);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(engine->Put("key" + std::to_string(i), rnd.String(64)).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());
  std::string value;
  ASSERT_TRUE(engine->Get("key42", &value).ok());
  const uint64_t hits_before = engine->block_cache()->hits();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine->Get("key42", &value).ok());
  }
  EXPECT_GE(engine->block_cache()->hits(), hits_before + 10);
}

// ---------------------------------------------------------------------------
// Concurrent write path: group commit, immutable memtables, background work
// ---------------------------------------------------------------------------

/// Defers everything: Schedule() queues, RunQueued() refuses to run. From
/// the engine's view this is a background executor that never gets CPU time
/// — exactly the state a crash interrupts, which the recovery tests need to
/// freeze. Tasks are dropped on destruction without running.
class DeferringExecutor final : public BackgroundExecutor {
 public:
  void Schedule(std::function<void()> fn) override {
    queue_.push_back(std::move(fn));
  }
  bool single_threaded() const override { return true; }
  size_t RunQueued() override { return 0; }
  size_t queue_depth() const override { return queue_.size(); }

 private:
  std::vector<std::function<void()>> queue_;
};

TEST(EngineWritePathTest, CorruptBatchAppliesNothing) {
  // Regression: Engine::Write used to apply a batch record-by-record, so a
  // corrupt record left earlier records applied (and sequence numbers
  // burned). The batch must validate up front and apply all-or-nothing.
  auto engine = *Engine::Open({});
  ASSERT_TRUE(engine->Put("stable", "before").ok());
  const uint64_t seq_before = engine->LastSequence();

  // One valid put followed by garbage: an undefined record tag.
  WriteBatch good;
  good.Put("poisoned", "value");
  std::string rep(good.rep().data(), good.rep().size());
  rep.push_back('\x7f');  // invalid tag where a second record would start
  WriteBatch corrupt;
  WriteBatchInternal::SetContentsUnchecked(&corrupt, rep);

  EXPECT_EQ(engine->Write(corrupt).code(), Code::kCorruption);
  // Nothing applied, no sequence burned, prior data intact.
  EXPECT_EQ(engine->LastSequence(), seq_before);
  std::string value;
  EXPECT_TRUE(engine->Get("poisoned", &value).IsNotFound());
  ASSERT_TRUE(engine->Get("stable", &value).ok());
  EXPECT_EQ(value, "before");
}

TEST(EngineWritePathTest, ImmutableMemtablesVisibleToReads) {
  // With a deferring executor, rotation seals memtables but nothing flushes;
  // reads must merge mem_ + every immutable + levels, newest first.
  DeferringExecutor executor;
  EngineOptions opts;
  opts.env = nullptr;
  opts.memtable_bytes = 4 << 10;
  opts.max_immutable_memtables = 100;  // no stalls: pile up immutables
  opts.background_executor = &executor;
  auto engine = *Engine::Open(opts);

  ASSERT_TRUE(engine->Put("k", "v0").ok());
  Random rnd(11);
  int i = 0;
  while (engine->NumImmutableMemTables() < 3) {
    ASSERT_TRUE(engine->Put("fill" + std::to_string(i++), rnd.String(256)).ok());
  }
  ASSERT_TRUE(engine->Put("k", "v-latest").ok());
  EXPECT_GE(engine->NumImmutableMemTables(), 3);
  EXPECT_EQ(engine->NumFilesAtLevel(0), 0);  // nothing flushed

  // Point reads see both the latest overwrite (active memtable) and keys
  // that only live in sealed memtables.
  std::string value;
  ASSERT_TRUE(engine->Get("k", &value).ok());
  EXPECT_EQ(value, "v-latest");
  ASSERT_TRUE(engine->Get("fill0", &value).ok());

  // Iterators merge immutables too.
  auto it = engine->NewBoundedIterator("fill0", "fill1");
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "fill0");
}

TEST(EngineWritePathTest, RecoveryWithRotatedWalPending) {
  // Crash while sealed memtables are still waiting on a background flush:
  // their retired WALs must survive and replay on reopen.
  auto env = NewMemEnv();
  DeferringExecutor executor;
  EngineOptions opts;
  opts.env = env.get();
  opts.dir = "db";
  opts.memtable_bytes = 4 << 10;
  opts.max_immutable_memtables = 100;
  opts.background_executor = &executor;

  std::map<std::string, std::string> expected;
  {
    auto engine = *Engine::Open(opts);
    Random rnd(23);
    int i = 0;
    while (engine->NumImmutableMemTables() < 3) {
      const std::string key = "key" + std::to_string(i++);
      const std::string value = rnd.String(200);
      ASSERT_TRUE(engine->Put(key, value).ok());
      expected[key] = value;
    }
    ASSERT_TRUE(engine->Put("tail", "in-active-memtable").ok());
    expected["tail"] = "in-active-memtable";
    // Crash: engine destroyed with >= 3 sealed memtables never flushed.
    // The queued flush closures must no-op, not crash, when dropped.
    EXPECT_GT(executor.queue_depth(), 0u);
  }

  // Multiple WAL files pending (one per sealed memtable + the active one).
  std::vector<std::string> children;
  ASSERT_TRUE(env->GetChildren("db", &children).ok());
  int wal_files = 0;
  for (const auto& f : children) {
    if (f.rfind("wal-", 0) == 0) ++wal_files;
  }
  EXPECT_GE(wal_files, 4);

  auto engine = *Engine::Open(opts);
  for (const auto& [key, value] : expected) {
    std::string got;
    ASSERT_TRUE(engine->Get(key, &got).ok()) << key;
    EXPECT_EQ(got, value);
  }
}

TEST(EngineWritePathTest, WalsReplayInSequenceOrder) {
  // Overwrites of one key land in different rotated WALs; replay order
  // (WAL number order == sequence order) decides which version wins.
  auto env = NewMemEnv();
  DeferringExecutor executor;
  EngineOptions opts;
  opts.env = env.get();
  opts.dir = "db";
  opts.memtable_bytes = 4 << 10;
  opts.max_immutable_memtables = 100;
  opts.background_executor = &executor;

  uint64_t final_seq = 0;
  {
    auto engine = *Engine::Open(opts);
    Random rnd(31);
    for (int generation = 0; generation < 3; ++generation) {
      ASSERT_TRUE(engine->Put("versioned", "gen" + std::to_string(generation)).ok());
      const int sealed = engine->NumImmutableMemTables();
      int i = 0;
      while (engine->NumImmutableMemTables() == sealed) {
        ASSERT_TRUE(engine
                        ->Put("pad" + std::to_string(generation) + "-" +
                                  std::to_string(i++),
                              rnd.String(256))
                        .ok());
      }
    }
    ASSERT_TRUE(engine->Put("versioned", "genfinal").ok());
    final_seq = engine->LastSequence();
  }

  auto engine = *Engine::Open(opts);
  std::string value;
  ASSERT_TRUE(engine->Get("versioned", &value).ok());
  EXPECT_EQ(value, "genfinal");
  // Recovery restored the exact sequence number, not just the data.
  EXPECT_EQ(engine->LastSequence(), final_seq);
}

TEST(EngineWritePathTest, WriteStallsCountedAndResolvedInline) {
  // A single-threaded executor that defers forever forces the stalled
  // writer to do one background unit inline; the stall is still accounted.
  DeferringExecutor executor;
  EngineOptions opts;
  opts.memtable_bytes = 4 << 10;
  opts.max_immutable_memtables = 1;
  opts.background_executor = &executor;
  auto engine = *Engine::Open(opts);

  Random rnd(41);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(engine->Put("key" + std::to_string(i), rnd.String(256)).ok());
  }
  const EngineStats& stats = engine->stats();
  EXPECT_GT(stats.write_stalls, 0u);
  EXPECT_GT(stats.num_flushes, 0u);
  for (int i = 0; i < 200; ++i) {
    std::string value;
    ASSERT_TRUE(engine->Get("key" + std::to_string(i), &value).ok()) << i;
  }
}

TEST(EngineWritePathTest, GroupCommitConcurrentWritersAllApplied) {
  // Many threads write through the group-commit queue; every batch must
  // apply exactly once (sequence accounting proves no merge lost a write).
  auto engine = *Engine::Open({});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        WriteBatch batch;
        batch.Put("t" + std::to_string(t) + "-" + std::to_string(i), "v");
        batch.Put("shared", "t" + std::to_string(t));
        if (!engine->Write(batch).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine->LastSequence(), uint64_t{kThreads} * kPerThread * 2);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      std::string value;
      ASSERT_TRUE(
          engine->Get("t" + std::to_string(t) + "-" + std::to_string(i), &value)
              .ok());
    }
  }
}

TEST(EngineWritePathTest, LegacyModeMatchesGroupCommitResults) {
  // group_commit=false routes through the pre-PR whole-op-under-lock path
  // (the bench ablation baseline); both modes must produce identical state.
  for (const bool group_commit : {false, true}) {
    EngineOptions opts = SmallEngineOptions();
    opts.group_commit = group_commit;
    auto engine = *Engine::Open(opts);
    Random rnd(51);
    std::map<std::string, std::string> expected;
    for (int i = 0; i < 500; ++i) {
      const std::string key = "key" + std::to_string(rnd.Uniform(100));
      const std::string value = rnd.String(64);
      ASSERT_TRUE(engine->Put(key, value).ok());
      expected[key] = value;
    }
    EXPECT_EQ(engine->LastSequence(), 500u) << "group_commit=" << group_commit;
    for (const auto& [key, value] : expected) {
      std::string got;
      ASSERT_TRUE(engine->Get(key, &got).ok()) << key;
      EXPECT_EQ(got, value);
    }
  }
}

TEST(EngineWritePathTest, FlushDrainsImmutablesWithExecutor) {
  // Explicit Flush() must leave no data stranded in sealed memtables even
  // when the executor never ran the queued background work.
  DeferringExecutor executor;
  EngineOptions opts;
  opts.memtable_bytes = 4 << 10;
  opts.max_immutable_memtables = 100;
  opts.background_executor = &executor;
  auto engine = *Engine::Open(opts);

  Random rnd(61);
  int i = 0;
  while (engine->NumImmutableMemTables() < 2) {
    ASSERT_TRUE(engine->Put("key" + std::to_string(i++), rnd.String(256)).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());
  EXPECT_EQ(engine->NumImmutableMemTables(), 0);
  EXPECT_GT(engine->NumFilesAtLevel(0), 0);
  for (int j = 0; j < i; ++j) {
    std::string value;
    ASSERT_TRUE(engine->Get("key" + std::to_string(j), &value).ok()) << j;
  }
}

TEST(EngineWritePathTest, ThreadPoolExecutorDrainRunsEverything) {
  ThreadPoolExecutor pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    pool.Schedule([&] { ran.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(ran.load(), 50);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

}  // namespace
}  // namespace veloce::storage
