// Cross-module integration suites: KV node scaling, full-stack multi-tenant
// scenarios, and serializability stress over the whole SQL->KV->storage
// path.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "scenario/env_builder.h"
#include "serverless/cluster.h"
#include "workload/tpcc.h"

namespace veloce {
namespace {

// ---------------------------------------------------------------------------
// Dynamic KV node scaling (future-work extension)
// ---------------------------------------------------------------------------

class KvScalingTest : public ::testing::Test {
 protected:
  KvScalingTest() {
    kv::KVClusterOptions opts;
    opts.num_nodes = 3;
    cluster_ = std::make_unique<kv::KVCluster>(opts);
    VELOCE_CHECK_OK(cluster_->CreateTenantKeyspace(10));
    // Seed data and split into several ranges.
    for (int i = 0; i < 60; ++i) {
      kv::BatchRequest put;
      put.tenant_id = 10;
      put.ts = cluster_->Now();
      char name[16];
      std::snprintf(name, sizeof(name), "row%03d", i);
      put.AddPut(kv::AddTenantPrefix(10, name), "v" + std::to_string(i));
      VELOCE_CHECK(cluster_->Send(put).ok());
    }
    for (int i = 10; i < 60; i += 10) {
      char name[16];
      std::snprintf(name, sizeof(name), "row%03d", i);
      VELOCE_CHECK_OK(cluster_->SplitRange(kv::AddTenantPrefix(10, name)));
    }
  }

  int CountRows() {
    kv::BatchRequest scan;
    scan.tenant_id = 10;
    scan.ts = cluster_->Now();
    scan.AddScan(kv::TenantPrefix(10), kv::TenantPrefixEnd(10), 0);
    auto resp = cluster_->Send(scan);
    VELOCE_CHECK(resp.ok());
    return static_cast<int>(resp->responses[0].rows.size());
  }

  std::unique_ptr<kv::KVCluster> cluster_;
};

TEST_F(KvScalingTest, AddNodeStartsEmpty) {
  const auto id = *cluster_->AddNode("us-central1");
  EXPECT_EQ(id, 3u);
  EXPECT_EQ(cluster_->num_nodes(), 4u);
  EXPECT_EQ(cluster_->CountLeases(id), 0);
  EXPECT_EQ(cluster_->node(id)->region(), "us-central1");
}

TEST_F(KvScalingTest, MoveReplicaTransfersDataAndLease) {
  const auto new_node = *cluster_->AddNode();
  // Find a range led by node 0 and move that replica to the new node.
  kv::RangeId target = 0;
  for (const auto& desc : cluster_->Ranges()) {
    if (desc.tenant_id == 10 && desc.leaseholder == 0) {
      target = desc.range_id;
      break;
    }
  }
  ASSERT_NE(target, 0u);
  ASSERT_TRUE(cluster_->MoveReplica(target, 0, new_node).ok());
  // Descriptor updated; lease moved with the replica.
  bool found = false;
  for (const auto& desc : cluster_->Ranges()) {
    if (desc.range_id != target) continue;
    found = true;
    EXPECT_TRUE(desc.HasReplica(new_node));
    EXPECT_FALSE(desc.HasReplica(0));
    EXPECT_EQ(desc.leaseholder, new_node);
  }
  EXPECT_TRUE(found);
  // All data still readable (some now served from the new node).
  EXPECT_EQ(CountRows(), 60);
}

TEST_F(KvScalingTest, MoveReplicaRejectsBadArgs) {
  const auto new_node = *cluster_->AddNode();
  const auto ranges = cluster_->Ranges();
  const kv::RangeId some_range = ranges.back().range_id;
  EXPECT_FALSE(cluster_->MoveReplica(9999, 0, new_node).ok());
  EXPECT_FALSE(cluster_->MoveReplica(some_range, new_node, 0).ok());  // no replica there
  EXPECT_FALSE(cluster_->MoveReplica(some_range, 0, 1).ok());  // target already has one
}

TEST_F(KvScalingTest, RebalanceSpreadsOntoNewNodes) {
  ASSERT_TRUE(cluster_->AddNode().ok());
  ASSERT_TRUE(cluster_->AddNode().ok());
  const int moves = *cluster_->RebalanceReplicas();
  EXPECT_GT(moves, 0);
  // New nodes now hold replicas; counts are within 1 of each other.
  std::vector<int> counts(cluster_->num_nodes(), 0);
  for (const auto& desc : cluster_->Ranges()) {
    for (kv::NodeId n : desc.replicas) counts[n]++;
  }
  const int min = *std::min_element(counts.begin(), counts.end());
  const int max = *std::max_element(counts.begin(), counts.end());
  EXPECT_LE(max - min, 1);
  EXPECT_EQ(CountRows(), 60);
  // Writes still replicate correctly after the move.
  kv::BatchRequest put;
  put.tenant_id = 10;
  put.ts = cluster_->Now();
  put.AddPut(kv::AddTenantPrefix(10, "row999"), "new");
  EXPECT_TRUE(cluster_->Send(put).ok());
  EXPECT_EQ(CountRows(), 61);
}

TEST(KvAutoscalingTest, AddsNodeOnSustainedOverload) {
  serverless::ServerlessCluster::Options opts;
  opts.kv.num_nodes = 3;
  opts.autoscaler.window = kMinute;  // shorter window for the test
  serverless::ServerlessCluster cluster(opts);
  auto meta = cluster.CreateTenant("heavy");
  VELOCE_CHECK(meta.ok());

  double kv_utilization = 0.5;
  cluster.autoscaler()->EnableKvScaling(cluster.kv_cluster(),
                                        [&] { return kv_utilization; });
  cluster.autoscaler()->Start();
  cluster.loop()->RunFor(3 * kMinute);
  EXPECT_EQ(cluster.autoscaler()->kv_nodes_added(), 0);  // not hot enough

  kv_utilization = 0.95;
  cluster.loop()->RunFor(90 * kSecond);
  EXPECT_EQ(cluster.autoscaler()->kv_nodes_added(), 1);
  EXPECT_EQ(cluster.kv_cluster()->num_nodes(), 4u);

  // Utilization recovers: no runaway additions.
  kv_utilization = 0.4;
  cluster.loop()->RunFor(5 * kMinute);
  EXPECT_EQ(cluster.autoscaler()->kv_nodes_added(), 1);
}

// ---------------------------------------------------------------------------
// Full-stack multi-tenant scenarios
// ---------------------------------------------------------------------------

TEST(FullStackTest, ThreeTenantsRunTpccConcurrentlyIsolated) {
  serverless::ServerlessCluster cluster;
  struct TenantRun {
    kv::TenantId id;
    serverless::Proxy::Connection* conn;
    std::unique_ptr<workload::TpccWorkload> tpcc;
  };
  std::vector<TenantRun> runs;
  for (int t = 0; t < 3; ++t) {
    auto meta = cluster.CreateTenant("tpcc" + std::to_string(t));
    VELOCE_CHECK(meta.ok());
    auto conn = cluster.ConnectSync(meta->id);
    VELOCE_CHECK(conn.ok());
    workload::TpccWorkload::Options opts;
    opts.warehouses = 1;
    opts.districts_per_warehouse = 1;
    opts.customers_per_district = 5;
    opts.items = 20;
    auto tpcc = std::make_unique<workload::TpccWorkload>(opts, 100 + t);
    ASSERT_TRUE(tpcc->Setup((*conn)->session).ok());
    runs.push_back({meta->id, *conn, std::move(tpcc)});
  }
  // Interleave transactions across tenants.
  for (int round = 0; round < 15; ++round) {
    for (auto& run : runs) {
      ASSERT_TRUE(run.tpcc->RunTransaction(run.conn->session).ok());
    }
  }
  // Each tenant sees exactly its own state: district counters advanced by
  // its own NewOrder count only.
  for (auto& run : runs) {
    auto rs = *run.conn->session->Execute(
        "SELECT d_next_o_id FROM district WHERE w_id = 1 AND d_id = 1");
    EXPECT_EQ(rs.rows[0][0].int_value(),
              1 + static_cast<int64_t>(run.tpcc->stats().new_orders));
    EXPECT_EQ(run.tpcc->stats().committed(), 15u);
  }
}

TEST(FullStackTest, LifecycleScaleUpMigrateScaleDownQueryThroughout) {
  serverless::ServerlessCluster cluster;
  auto meta = cluster.CreateTenant("lifecycle");
  VELOCE_CHECK(meta.ok());
  auto conn = *cluster.ConnectSync(meta->id);
  ASSERT_TRUE(conn->session->Execute(
      "CREATE TABLE log (id INT PRIMARY KEY, note STRING)").ok());
  int inserted = 0;
  auto insert = [&] {
    ASSERT_TRUE(conn->session
                    ->Execute("INSERT INTO log VALUES (" + std::to_string(inserted) +
                              ", 'x')")
                    .ok());
    ++inserted;
  };
  insert();

  // Scale up: two more nodes; rebalance moves the connection if needed.
  for (int i = 0; i < 2; ++i) {
    bool done = false;
    cluster.pool()->Acquire(meta->id, [&](StatusOr<sql::SqlNode*> n) {
      VELOCE_CHECK(n.ok());
      done = true;
    });
    cluster.loop()->Run();
    ASSERT_TRUE(done);
  }
  cluster.proxy()->RebalanceTenant(meta->id);
  insert();

  // Migrate explicitly to each other node and keep writing.
  for (sql::SqlNode* node : cluster.pool()->NodesForTenant(meta->id)) {
    if (node == conn->node) continue;
    ASSERT_TRUE(cluster.proxy()->MigrateConnection(conn, node).ok());
    insert();
  }

  // Scale down: drain everything but the connection's node.
  for (sql::SqlNode* node : cluster.pool()->NodesForTenant(meta->id)) {
    if (node != conn->node) cluster.pool()->StartDraining(node);
  }
  cluster.loop()->RunFor(kMinute);
  insert();

  auto rs = *conn->session->Execute("SELECT COUNT(*) FROM log");
  EXPECT_EQ(rs.rows[0][0].int_value(), inserted);
}

// ---------------------------------------------------------------------------
// End-to-end observability: one TPC-C-lite run must light up series from
// every layer of the shared registry, plus per-statement request traces.
// ---------------------------------------------------------------------------

TEST(FullStackTest, TpccRunProducesMetricsFromEveryLayer) {
  serverless::ServerlessCluster cluster;
  auto meta = cluster.CreateTenant("obs");
  VELOCE_CHECK(meta.ok());
  auto conn = *cluster.ConnectSync(meta->id);

  workload::TpccWorkload::Options opts;
  opts.warehouses = 1;
  opts.districts_per_warehouse = 1;
  opts.customers_per_district = 5;
  opts.items = 20;
  workload::TpccWorkload tpcc(opts, 7, cluster.obs());
  ASSERT_TRUE(tpcc.Setup(conn->session).ok());
  for (int i = 0; i < 25; ++i) ASSERT_TRUE(tpcc.RunTransaction(conn->session).ok());
  cluster.HarvestUsage();
  (void)cluster.meter()->Cut(meta->id);

  obs::MetricsRegistry* metrics = cluster.metrics();
  // Storage: the engines ingested real write traffic through the WAL.
  EXPECT_GT(metrics->Sum("veloce_storage_ingest_bytes"), 0.0);
  EXPECT_GT(metrics->Sum("veloce_storage_wal_bytes"), 0.0);
  // KV: batches routed through leaseholders.
  EXPECT_GT(metrics->Sum("veloce_kv_read_batches_total"), 0.0);
  EXPECT_GT(metrics->Sum("veloce_kv_write_batches_total"), 0.0);
  // Admission: the batch interceptor admitted every batch.
  EXPECT_GT(metrics->Sum("veloce_admission_admitted_total"), 0.0);
  // Billing: the harvested interval produced eCPU and RU totals.
  EXPECT_GT(metrics->Sum("veloce_billing_ecpu_seconds_total"), 0.0);
  EXPECT_GT(metrics->Sum("veloce_billing_request_units_total"), 0.0);
  // SQL + serverless control plane.
  EXPECT_GT(metrics->Sum("veloce_sql_statements_total"), 0.0);
  EXPECT_GT(metrics->Sum("veloce_sql_marshal_cpu_ns_total"), 0.0);
  EXPECT_GT(metrics->Sum("veloce_serverless_connections_total"), 0.0);
  EXPECT_GT(metrics->Sum("veloce_serverless_pod_starts_total"), 0.0);
  // The workload's own counters share the registry.
  EXPECT_EQ(metrics->Sum("veloce_workload_tpcc_txns_total"),
            static_cast<double>(tpcc.stats().committed()));

  // Concurrent write path: commits went through group commit (the histogram
  // records one sample per commit group), and the stall/queue-depth series
  // are registered even when idle.
  EXPECT_GT(metrics->Sum("veloce_storage_commit_group_size"), 0.0);
  bool saw_stall_seconds = false;
  bool saw_bg_queue_depth = false;
  for (const auto& sample : metrics->Snapshot()) {
    if (sample.name == "veloce_storage_write_stall_seconds_total") {
      saw_stall_seconds = true;
    }
    if (sample.name == "veloce_storage_bg_queue_depth") {
      saw_bg_queue_depth = true;
    }
  }
  EXPECT_TRUE(saw_stall_seconds);
  EXPECT_TRUE(saw_bg_queue_depth);
  // Tracing: every statement produced a trace carrying the marshal stage.
  EXPECT_GT(cluster.traces()->finished_total(), 0u);
  bool saw_marshal = false;
  for (const auto& trace : cluster.traces()->Slowest(32)) {
    for (const auto& event : trace.events) {
      if (event.name == "marshal") saw_marshal = true;
    }
  }
  EXPECT_TRUE(saw_marshal);
}

TEST(FullStackTest, NodeFailureProducesRobustnessTelemetry) {
  serverless::ServerlessCluster cluster;
  auto meta = cluster.CreateTenant("chaos");
  VELOCE_CHECK(meta.ok());
  auto conn = *cluster.ConnectSync(meta->id);
  ASSERT_TRUE(conn->session->Execute("CREATE TABLE t (id INT PRIMARY KEY)").ok());
  ASSERT_TRUE(conn->session->Execute("INSERT INTO t VALUES (1)").ok());

  cluster.KillSqlNode(conn->node);
  auto rs = cluster.ExecuteSync(conn, "SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0].int_value(), 1);

  obs::MetricsRegistry* metrics = cluster.metrics();
  // Proxy failover: the node death, the retry, the successful re-attach,
  // and the backoff it waited all land in the shared registry.
  EXPECT_GE(metrics->Sum("veloce_serverless_node_failures_total"), 1.0);
  EXPECT_GE(metrics->Sum("veloce_serverless_failover_retries_total"), 1.0);
  EXPECT_GE(metrics->Sum("veloce_serverless_failovers_total"), 1.0);
  EXPECT_EQ(metrics->Sum("veloce_serverless_retry_budget_exhausted_total"), 0.0);
  // Engine fault-tolerance series: registered per KV node, all healthy here
  // (the degraded gauge exists and reads 0; no retries, no WAL truncation).
  bool saw_degraded_gauge = false;
  bool saw_backoff_histogram = false;
  for (const auto& sample : metrics->Snapshot()) {
    if (sample.name == "veloce_storage_degraded_mode") saw_degraded_gauge = true;
    if (sample.name == "veloce_serverless_failover_backoff_ns") {
      saw_backoff_histogram = true;
      EXPECT_GE(sample.value, 1.0);  // histogram count: >= 1 backoff taken
    }
  }
  EXPECT_TRUE(saw_degraded_gauge);
  EXPECT_TRUE(saw_backoff_histogram);
  EXPECT_EQ(metrics->Sum("veloce_storage_degraded_mode"), 0.0);
  EXPECT_EQ(metrics->Sum("veloce_storage_degraded_entries_total"), 0.0);
  EXPECT_EQ(metrics->Sum("veloce_storage_bg_retries_total"), 0.0);
  EXPECT_EQ(metrics->Sum("veloce_storage_wal_truncated_records_total"), 0.0);
}

// ---------------------------------------------------------------------------
// Serializability stress through the full SQL stack
// ---------------------------------------------------------------------------

TEST(SerializabilityStressTest, BankTransfersConserveMoney) {
  // The full SQL-over-KV stack through the same builder the scenario
  // harness and the figure benches use.
  auto stack = scenario::ScenarioEnvBuilder().KvNodes(3).BuildSqlStack();
  ASSERT_NE(stack, nullptr);

  // Two sessions interleave transfers between 10 accounts.
  sql::Session* s1 = stack->session;
  sql::Session* s2 = *stack->node->NewSession();
  ASSERT_TRUE(s1->Execute("CREATE TABLE acct (id INT PRIMARY KEY, bal INT)").ok());
  const int accounts = 10;
  const int64_t initial = 100;
  for (int i = 0; i < accounts; ++i) {
    ASSERT_TRUE(s1->Execute("INSERT INTO acct VALUES (" + std::to_string(i) +
                            ", " + std::to_string(initial) + ")").ok());
  }

  Random rng(77);
  int committed = 0, retried = 0;
  for (int i = 0; i < 120; ++i) {
    sql::Session* session = (i % 2 == 0) ? s1 : s2;
    const int from = static_cast<int>(rng.Uniform(accounts));
    int to = static_cast<int>(rng.Uniform(accounts));
    if (to == from) to = (to + 1) % accounts;
    const int64_t amount = 1 + static_cast<int64_t>(rng.Uniform(20));
    // Transfer with bounded retries.
    bool ok = false;
    for (int attempt = 0; attempt < 6 && !ok; ++attempt) {
      if (!session->Execute("BEGIN").ok()) break;
      auto read = session->Execute("SELECT bal FROM acct WHERE id = " +
                                   std::to_string(from));
      Status s = read.status();
      if (s.ok() && read->rows[0][0].int_value() >= amount) {
        s = session->Execute("UPDATE acct SET bal = bal - " +
                             std::to_string(amount) + " WHERE id = " +
                             std::to_string(from)).status();
        if (s.ok()) {
          s = session->Execute("UPDATE acct SET bal = bal + " +
                               std::to_string(amount) + " WHERE id = " +
                               std::to_string(to)).status();
        }
      }
      if (s.ok()) {
        s = session->Execute("COMMIT").status();
        if (s.ok()) {
          ok = true;
          ++committed;
          break;
        }
      }
      if (session->in_transaction()) (void)session->Execute("ROLLBACK");
      ++retried;
    }
  }
  EXPECT_GT(committed, 60);
  // Invariant: total money conserved and no negative balances.
  auto rs = *s1->Execute("SELECT SUM(bal), MIN(bal) FROM acct");
  EXPECT_EQ(rs.rows[0][0].int_value(), initial * accounts);
  EXPECT_GE(rs.rows[0][1].int_value(), 0);
}

}  // namespace
}  // namespace veloce
