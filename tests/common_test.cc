#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/clock.h"
#include "common/codec.h"
#include "common/crc32c.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"

namespace veloce {
namespace {

// ---------------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, AllFactoriesMapToCodes) {
  EXPECT_EQ(Status::Unauthorized("x").code(), Code::kUnauthorized);
  EXPECT_EQ(Status::RangeKeyMismatch("x").code(), Code::kRangeKeyMismatch);
  EXPECT_EQ(Status::TransactionRetry("x").code(), Code::kTransactionRetry);
  EXPECT_EQ(Status::WriteIntentError("x").code(), Code::kWriteIntentError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(), Code::kResourceExhausted);
  EXPECT_EQ(Status::Corruption("x").code(), Code::kCorruption);
  EXPECT_EQ(Status::Unavailable("x").code(), Code::kUnavailable);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
}

TEST(StatusOrTest, MoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOrTest, CopyAndAssign) {
  StatusOr<std::string> a = std::string("hello");
  StatusOr<std::string> b = a;
  EXPECT_EQ(*b, "hello");
  b = Status::Internal("boom");
  EXPECT_FALSE(b.ok());
  b = a;
  EXPECT_EQ(*b, "hello");
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  VELOCE_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(UseAssignOrReturn(-1, &out).ok());
}

// ---------------------------------------------------------------------------
// Slice
// ---------------------------------------------------------------------------

TEST(SliceTest, BasicOps) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_TRUE(s.StartsWith("he"));
  EXPECT_FALSE(s.StartsWith("hello world"));
  s.RemovePrefix(2);
  EXPECT_EQ(s.ToString(), "llo");
}

TEST(SliceTest, Compare) {
  EXPECT_LT(Slice("a").Compare(Slice("b")), 0);
  EXPECT_EQ(Slice("ab").Compare(Slice("ab")), 0);
  EXPECT_GT(Slice("b").Compare(Slice("a")), 0);
  // Bytewise: shorter prefix sorts first.
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

TEST(CodecTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  Slice in(buf);
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(GetFixed32(&in, &v32));
  ASSERT_TRUE(GetFixed64(&in, &v64));
  EXPECT_EQ(v32, 0xDEADBEEFu);
  EXPECT_EQ(v64, 0x0123456789ABCDEFull);
  EXPECT_TRUE(in.empty());
}

TEST(CodecTest, VarintRoundTrip) {
  std::string buf;
  const uint64_t values[] = {0, 1, 127, 128, 16383, 16384, 1ull << 32, UINT64_MAX};
  for (uint64_t v : values) PutVarint64(&buf, v);
  Slice in(buf);
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodecTest, VarintTruncated) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf.resize(buf.size() - 1);
  Slice in(buf);
  uint64_t got;
  EXPECT_FALSE(GetVarint64(&in, &got));
}

TEST(CodecTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "alpha");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(300, 'x'));
  Slice in(buf);
  Slice v;
  ASSERT_TRUE(GetLengthPrefixed(&in, &v));
  EXPECT_EQ(v.ToString(), "alpha");
  ASSERT_TRUE(GetLengthPrefixed(&in, &v));
  EXPECT_TRUE(v.empty());
  ASSERT_TRUE(GetLengthPrefixed(&in, &v));
  EXPECT_EQ(v.size(), 300u);
}

TEST(CodecTest, OrderedUint64PreservesOrder) {
  Random rnd(1);
  std::vector<uint64_t> values;
  for (int i = 0; i < 200; ++i) values.push_back(rnd.Next());
  values.push_back(0);
  values.push_back(UINT64_MAX);
  std::vector<std::pair<std::string, uint64_t>> encoded;
  for (uint64_t v : values) {
    std::string buf;
    OrderedPutUint64(&buf, v);
    encoded.emplace_back(buf, v);
  }
  std::sort(encoded.begin(), encoded.end());
  for (size_t i = 1; i < encoded.size(); ++i) {
    EXPECT_LE(encoded[i - 1].second, encoded[i].second);
  }
}

TEST(CodecTest, OrderedInt64PreservesOrderAcrossSign) {
  const int64_t values[] = {INT64_MIN, -1000, -1, 0, 1, 1000, INT64_MAX};
  std::string prev;
  for (int64_t v : values) {
    std::string buf;
    OrderedPutInt64(&buf, v);
    if (!prev.empty()) EXPECT_LT(prev, buf) << v;
    Slice in(buf);
    int64_t got;
    ASSERT_TRUE(OrderedGetInt64(&in, &got));
    EXPECT_EQ(got, v);
    prev = buf;
  }
}

TEST(CodecTest, OrderedStringRoundTripWithEmbeddedNulls) {
  const std::string cases[] = {"", "a", std::string("a\x00b", 3),
                               std::string("\x00\x00", 2), "zz"};
  for (const auto& s : cases) {
    std::string buf;
    OrderedPutString(&buf, s);
    Slice in(buf);
    std::string got;
    ASSERT_TRUE(OrderedGetString(&in, &got));
    EXPECT_EQ(got, s);
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodecTest, OrderedStringPreservesOrder) {
  std::vector<std::string> values = {"", "a", std::string("a\x00", 2),
                                     std::string("a\x00q", 3), "ab", "b"};
  for (size_t i = 1; i < values.size(); ++i) {
    std::string a, b;
    OrderedPutString(&a, values[i - 1]);
    OrderedPutString(&b, values[i]);
    EXPECT_LT(a, b) << i;
  }
}

TEST(CodecTest, OrderedStringIsSelfDelimiting) {
  // A string component followed by an int component must parse back exactly.
  std::string buf;
  OrderedPutString(&buf, "user");
  OrderedPutInt64(&buf, -5);
  Slice in(buf);
  std::string s;
  int64_t v;
  ASSERT_TRUE(OrderedGetString(&in, &s));
  ASSERT_TRUE(OrderedGetInt64(&in, &v));
  EXPECT_EQ(s, "user");
  EXPECT_EQ(v, -5);
}

TEST(CodecTest, OrderedDoubleOrder) {
  const double values[] = {-1e300, -2.5, -0.0, 0.0, 1e-300, 2.5, 1e300};
  std::string prev;
  for (double v : values) {
    std::string buf;
    OrderedPutDouble(&buf, v);
    if (!prev.empty()) EXPECT_LE(prev, buf) << v;
    Slice in(buf);
    double got;
    ASSERT_TRUE(OrderedGetDouble(&in, &got));
    EXPECT_EQ(got, v);
    prev = buf;
  }
}

TEST(CodecTest, PrefixEnd) {
  EXPECT_EQ(PrefixEnd("abc"), "abd");
  EXPECT_EQ(PrefixEnd(std::string("a\xff", 2)), "b");
  EXPECT_EQ(PrefixEnd(std::string("\xff\xff", 2)), "");
  // Everything with the prefix is < PrefixEnd.
  EXPECT_LT(std::string("abc\xff\xff"), PrefixEnd("abc"));
}

// ---------------------------------------------------------------------------
// CRC32C
// ---------------------------------------------------------------------------

TEST(Crc32cTest, KnownValues) {
  // Standard check value: crc32c("123456789") = 0xE3069283.
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, ExtendEqualsWhole) {
  const std::string data = "hello world, this is a crc test";
  const uint32_t whole = crc32c::Value(data.data(), data.size());
  const uint32_t part = crc32c::Extend(crc32c::Value(data.data(), 10),
                                       data.data() + 10, data.size() - 10);
  EXPECT_EQ(whole, part);
}

TEST(Crc32cTest, MaskRoundTrip) {
  const uint32_t crc = crc32c::Value("abc", 3);
  EXPECT_NE(crc32c::Mask(crc), crc);
  EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.SetTime(10);
  EXPECT_EQ(clock.Now(), 10);
}

TEST(ClockTest, RealClockMonotonic) {
  RealClock* clock = RealClock::Instance();
  const Nanos a = clock->Now();
  const Nanos b = clock->Now();
  EXPECT_LE(a, b);
}

// ---------------------------------------------------------------------------
// Random
// ---------------------------------------------------------------------------

TEST(RandomTest, Deterministic) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInRange) {
  Random rnd(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rnd.Uniform(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rnd.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random rnd(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rnd.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RandomTest, ZipfianSkewsTowardZero) {
  ZipfianGenerator zipf(1000, 0.99, 3);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = zipf.Next();
    EXPECT_LT(v, 1000u);
    if (v < 100) ++low;
  }
  // With theta=0.99 the head is strongly favored: >50% of draws in the
  // first 10% of the keyspace.
  EXPECT_GT(low, n / 2);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.P50(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, ExactSmallValues) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 9);
  EXPECT_NEAR(h.Mean(), 4.5, 0.001);
}

TEST(HistogramTest, QuantilesApproximate) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.Record(i * 1000);  // 1us..10ms
  // p50 within one bucket (~6%) of 5ms.
  EXPECT_NEAR(static_cast<double>(h.P50()), 5e6, 5e6 * 0.08);
  EXPECT_NEAR(static_cast<double>(h.P99()), 9.9e6, 9.9e6 * 0.08);
  EXPECT_EQ(h.max(), 10000000);
}

TEST(HistogramTest, MergeMatchesCombined) {
  Histogram a, b, combined;
  Random rnd(5);
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = static_cast<int64_t>(rnd.Uniform(1'000'000));
    if (i % 2 == 0) a.Record(v); else b.Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.P50(), combined.P50());
  EXPECT_EQ(a.P99(), combined.P99());
  EXPECT_EQ(a.max(), combined.max());
}

TEST(HistogramTest, FormatNanos) {
  EXPECT_EQ(Histogram::FormatNanos(500), "500ns");
  EXPECT_EQ(Histogram::FormatNanos(1'500'000), "1500.0us");
  EXPECT_EQ(Histogram::FormatNanos(25'000'000), "25.0ms");
  EXPECT_EQ(Histogram::FormatNanos(12'000'000'000LL), "12.00s");
}

}  // namespace
}  // namespace veloce
