// Differential tests for the vectorized columnar engine (sql/vec/): every
// query runs on the row engine, on the auto-dispatched vectorized engine,
// and on the vectorized engine with KV fragment pushdown, and the three
// ResultSets must agree. Coverage concentrates on the places the engines
// could diverge: NULL handling in aggregates and predicates, int64 SUM
// wraparound, GROUP BY emission order, join row order, and late
// materialization (unread columns).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "obs/metrics.h"
#include "sql/sql_node.h"
#include "tenant/controller.h"

namespace veloce::sql {
namespace {

// One sortable, comparable fingerprint per row: the ordered key encoding of
// every cell, concatenated. Byte-identical iff every Datum compares equal
// with matching kinds.
std::string RowKey(const Row& row) {
  std::string key;
  for (const Datum& d : row) d.EncodeKey(&key);
  return key;
}

// Strict equality, including row order. Used row-vs-vec: the vectorized
// engine reproduces the row engine's emission order exactly (sorted group
// keys, build-side insertion order for joins).
void ExpectIdentical(const ResultSet& a, const ResultSet& b,
                     const std::string& what) {
  ASSERT_EQ(a.rows.size(), b.rows.size()) << what;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    ASSERT_EQ(a.rows[i].size(), b.rows[i].size()) << what << " row " << i;
    for (size_t j = 0; j < a.rows[i].size(); ++j) {
      EXPECT_EQ(RowKey({a.rows[i][j]}), RowKey({b.rows[i][j]}))
          << what << " row " << i << " col " << j << ": "
          << a.rows[i][j].ToString() << " vs " << b.rows[i][j].ToString();
    }
  }
}

// Order-normalized equality with a relative tolerance on doubles. Used for
// the pushdown leg: per-range partial aggregates reassociate floating-point
// sums, so bit-identity is not guaranteed — 1e-9 relative is.
void ExpectEquivalent(const ResultSet& a, const ResultSet& b,
                      const std::string& what) {
  ASSERT_EQ(a.rows.size(), b.rows.size()) << what;
  auto order = [](const Row& x, const Row& y) { return RowKey(x) < RowKey(y); };
  std::vector<Row> ar = a.rows, br = b.rows;
  std::stable_sort(ar.begin(), ar.end(), order);
  std::stable_sort(br.begin(), br.end(), order);
  for (size_t i = 0; i < ar.size(); ++i) {
    ASSERT_EQ(ar[i].size(), br[i].size()) << what << " row " << i;
    for (size_t j = 0; j < ar[i].size(); ++j) {
      const Datum& x = ar[i][j];
      const Datum& y = br[i][j];
      if (x.kind() == TypeKind::kDouble && y.kind() == TypeKind::kDouble) {
        const double dx = x.double_value(), dy = y.double_value();
        if (dx == dy || (std::isnan(dx) && std::isnan(dy))) continue;
        const double scale = std::max(1.0, std::max(std::fabs(dx), std::fabs(dy)));
        EXPECT_LE(std::fabs(dx - dy), 1e-9 * scale)
            << what << " row " << i << " col " << j;
      } else {
        EXPECT_EQ(x.Compare(y), 0)
            << what << " row " << i << " col " << j << ": " << x.ToString()
            << " vs " << y.ToString();
      }
    }
  }
}

class SqlVecTest : public ::testing::Test {
 protected:
  SqlVecTest() {
    kv::KVClusterOptions opts;
    opts.num_nodes = 3;
    cluster_ = std::make_unique<kv::KVCluster>(opts);
    controller_ = std::make_unique<tenant::TenantController>(cluster_.get(), &ca_);
    service_ = std::make_unique<tenant::AuthorizedKvService>(cluster_.get(), &ca_);
    auto meta = *controller_->CreateTenant("app");
    tenant_id_ = meta.id;
    cert_ = *controller_->IssueCert(tenant_id_);

    SqlNode::Options options;
    options.mode = ProcessMode::kColocated;
    options.obs.metrics = &metrics_;
    node_ = std::make_unique<SqlNode>(1, options, cluster_->clock());
    VELOCE_CHECK_OK(node_->StartProcess());
    VELOCE_CHECK_OK(node_->StampTenant(service_.get(), cluster_.get(), cert_));
    session_ = *node_->NewSession();
  }

  ResultSet Exec(const std::string& sql) {
    auto result = session_->Execute(sql);
    VELOCE_CHECK(result.ok()) << sql << " -> " << result.status().ToString();
    return std::move(result).value();
  }

  // Runs `sql` on all three legs. Row vs vectorized must match exactly
  // (order included); the pushdown leg matches up to ordering and float
  // tolerance. Status codes must agree across legs.
  void Differential(const std::string& sql, bool expect_vectorized = true) {
    Exec("SET kv_pushdown = off");
    Exec("SET vectorize = off");
    auto row = session_->Execute(sql);
    Exec("SET vectorize = on");
    auto vec = session_->Execute(sql);
    EXPECT_EQ(session_->last_select_engine(),
              expect_vectorized ? "vectorized" : "row")
        << sql;
    Exec("SET kv_pushdown = on");
    auto pushed = session_->Execute(sql);
    Exec("SET kv_pushdown = off");

    ASSERT_EQ(row.status().code(), vec.status().code()) << sql;
    ASSERT_EQ(row.status().code(), pushed.status().code()) << sql;
    if (!row.ok()) return;
    ExpectIdentical(*row, *vec, "row vs vec: " + sql);
    ExpectEquivalent(*row, *pushed, "row vs pushed: " + sql);
  }

  double Metric(std::string_view name, obs::Labels labels = {}) {
    labels.emplace(labels.begin(), "tenant", std::to_string(tenant_id_));
    return metrics_.Value(name, labels);
  }

  tenant::CertificateAuthority ca_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<kv::KVCluster> cluster_;
  std::unique_ptr<tenant::TenantController> controller_;
  std::unique_ptr<tenant::AuthorizedKvService> service_;
  kv::TenantId tenant_id_;
  tenant::TenantCert cert_;
  std::unique_ptr<SqlNode> node_;
  Session* session_;
};

// ---------------------------------------------------------------------------
// Deterministic edge cases
// ---------------------------------------------------------------------------

class SqlVecEdgeTest : public SqlVecTest {
 protected:
  SqlVecEdgeTest() {
    Exec("CREATE TABLE t (id INT PRIMARY KEY, a INT, b DOUBLE, c STRING, "
         "grp INT)");
    Exec("INSERT INTO t VALUES "
         "(1, 10, 1.5, 'x', 1), "
         "(2, NULL, 2.5, 'y', 1), "
         "(3, 30, NULL, 'x', 2), "
         "(4, NULL, NULL, NULL, 2), "
         "(5, -7, 0.25, '', NULL), "
         "(6, 9223372036854775807, 1e300, 'z', 1), "
         "(7, 9223372036854775807, 1e300, 'z', 1)");
  }
};

TEST_F(SqlVecEdgeTest, FullScanAllColumns) {
  Differential("SELECT * FROM t");
}

TEST_F(SqlVecEdgeTest, NullsInPredicates) {
  // NULL comparisons are not-true in both engines; rows 2, 4, 5 drop out of
  // one predicate or another.
  Differential("SELECT id FROM t WHERE a > 0");
  Differential("SELECT id FROM t WHERE b < 2.0 OR c = 'x'");
  Differential("SELECT id, a FROM t WHERE grp = 1 AND a > 5");
}

TEST_F(SqlVecEdgeTest, AggregatesSkipNulls) {
  // COUNT(a)=5 vs COUNT(*)=7; SUM/AVG/MIN/MAX ignore the NULL slots.
  Differential(
      "SELECT COUNT(*), COUNT(a), SUM(a), AVG(b), MIN(a), MAX(c) FROM t");
}

TEST_F(SqlVecEdgeTest, Int64SumWraparound) {
  // Two INT64_MAX values: SUM wraps identically (two's complement) in both
  // engines rather than diverging through a double.
  Differential("SELECT SUM(a) FROM t WHERE id >= 6");
}

TEST_F(SqlVecEdgeTest, GroupByWithNullGroup) {
  // grp=NULL forms its own group; emission order is the sorted group-key
  // order in both engines.
  Differential("SELECT grp, COUNT(*), SUM(a) FROM t GROUP BY grp");
  Differential(
      "SELECT c, grp, AVG(b) FROM t GROUP BY c, grp ORDER BY c, grp");
}

TEST_F(SqlVecEdgeTest, ExpressionsAndLateMaterialization) {
  Differential("SELECT id, a * 2 + 1, b * (1 - b) FROM t WHERE id > 1");
  // Only `id` is read: the vectorized scan skips decoding every other
  // column; results must still match.
  Differential("SELECT id FROM t");
}

TEST_F(SqlVecEdgeTest, PointLookupFallsBackToRowEngine) {
  Differential("SELECT * FROM t WHERE id = 3", /*expect_vectorized=*/false);
}

TEST_F(SqlVecEdgeTest, ForceVectorizeErrorsOnUncoveredShapes) {
  Exec("SET vectorize = force");
  // Point lookups are planned KV-side, not by the columnar scan.
  auto result = session_->Execute("SELECT * FROM t WHERE id = 3");
  EXPECT_TRUE(result.status().code() == Code::kNotSupported);
  // Transactional reads always take the row engine.
  Exec("BEGIN");
  result = session_->Execute("SELECT * FROM t");
  EXPECT_TRUE(result.status().code() == Code::kNotSupported);
  Exec("COMMIT");
  Exec("SET vectorize = on");
  // Covered shapes still work under force.
  auto forced = session_->Execute("SELECT SUM(a) FROM t");
  EXPECT_TRUE(forced.ok());
}

TEST_F(SqlVecEdgeTest, EngineAndScanMetrics) {
  const double vec0 = Metric("veloce_sql_exec_engine_total",
                             {{"engine", "vectorized"}});
  const double row0 = Metric("veloce_sql_exec_engine_total", {{"engine", "row"}});
  const double scanned0 = Metric("veloce_sql_rows_scanned_total");
  const double batches0 = Metric("veloce_sql_batches_total");

  Exec("SELECT COUNT(*) FROM t");  // vectorized full scan, 7 rows, 1 batch
  EXPECT_EQ(Metric("veloce_sql_rows_scanned_total"), scanned0 + 7);
  EXPECT_EQ(Metric("veloce_sql_batches_total"), batches0 + 1);

  Exec("SET vectorize = off");
  Exec("SELECT COUNT(*) FROM t");  // row engine: scans rows but no batches
  Exec("SET vectorize = on");

  EXPECT_EQ(Metric("veloce_sql_exec_engine_total", {{"engine", "vectorized"}}),
            vec0 + 1);
  EXPECT_EQ(Metric("veloce_sql_exec_engine_total", {{"engine", "row"}}),
            row0 + 1);
  EXPECT_EQ(Metric("veloce_sql_rows_scanned_total"), scanned0 + 14);
  EXPECT_EQ(Metric("veloce_sql_batches_total"), batches0 + 1);
}

TEST_F(SqlVecEdgeTest, JoinMatchesRowEngineOrder) {
  Exec("CREATE TABLE u (uid INT PRIMARY KEY, grp INT, tag STRING)");
  Exec("INSERT INTO u VALUES (1, 1, 'one'), (2, 1, 'uno'), (3, 2, 'two'), "
       "(4, NULL, 'none')");
  // NULL join keys match nothing; duplicate build keys fan out in build
  // insertion order.
  Differential(
      "SELECT t.id, u.tag FROM t JOIN u ON t.grp = u.grp WHERE t.id < 6");
  Differential(
      "SELECT u.tag, COUNT(*), SUM(t.a) FROM t JOIN u ON t.grp = u.grp "
      "GROUP BY u.tag ORDER BY u.tag");
}

// ---------------------------------------------------------------------------
// Randomized differential
// ---------------------------------------------------------------------------

TEST_F(SqlVecTest, RandomizedDifferential) {
  Exec("CREATE TABLE r (id INT PRIMARY KEY, a INT, b DOUBLE, c STRING, "
       "g INT, h INT)");
  Exec("CREATE TABLE s (sid INT PRIMARY KEY, g INT, lbl STRING)");

  Random rng(20260809);
  const char* strings[] = {"'aa'", "'b'", "'ccc'", "''", "NULL"};
  // 400 rows across several ranges so pushdown merges per-range partials.
  for (int i = 0; i < 400; i += 50) {
    std::string stmt = "INSERT INTO r VALUES ";
    for (int j = i; j < i + 50; ++j) {
      if (j > i) stmt += ", ";
      std::string a = rng.Uniform(8) == 0
                          ? "NULL"
                          : std::to_string(static_cast<int64_t>(rng.Uniform(1000)) -
                                           500);
      if (rng.Uniform(40) == 0) a = "9223372036854775807";  // overflow fodder
      std::string b = rng.Uniform(8) == 0
                          ? "NULL"
                          : std::to_string(rng.Uniform(20000) / 100.0);
      std::string g =
          rng.Uniform(6) == 0 ? "NULL" : std::to_string(rng.Uniform(5));
      stmt += "(" + std::to_string(j) + ", " + a + ", " + b + ", " +
              strings[rng.Uniform(5)] + ", " + g + ", " +
              std::to_string(rng.Uniform(3)) + ")";
    }
    Exec(stmt);
  }
  for (int j = 0; j < 8; ++j) {
    Exec("INSERT INTO s VALUES (" + std::to_string(j) + ", " +
         (j < 6 ? std::to_string(j % 5) : "NULL") + ", 'L" +
         std::to_string(j) + "')");
  }

  // `q` qualifies column references ("r.") so join predicates stay
  // unambiguous; single-table queries pass "".
  auto pred = [&](const std::string& q) -> std::string {
    switch (rng.Uniform(6)) {
      case 0:
        return q + "a > " +
               std::to_string(static_cast<int64_t>(rng.Uniform(800)) - 400);
      case 1:
        return q + "b < " + std::to_string(rng.Uniform(20000) / 100.0);
      case 2:
        return q + "c = 'aa'";
      case 3:
        return q + "g = " + std::to_string(rng.Uniform(5));
      case 4:
        return q + "id >= " + std::to_string(rng.Uniform(400)) + " AND " + q +
               "h = " + std::to_string(rng.Uniform(3));
      default:
        return q + "a * 2 > " + q + "b OR " + q + "c = 'b'";
    }
  };

  for (int iter = 0; iter < 80; ++iter) {
    std::string sql;
    switch (rng.Uniform(5)) {
      case 0:  // projection + filter
        sql = "SELECT id, a, b FROM r WHERE " + pred("");
        break;
      case 1:  // expression projection
        sql = "SELECT id, a + h, b * 2.0 FROM r WHERE " + pred("");
        break;
      case 2:  // global aggregates
        sql = "SELECT COUNT(*), COUNT(a), SUM(a), AVG(b), MIN(b), MAX(c) "
              "FROM r WHERE " + pred("");
        break;
      case 3:  // grouped aggregates
        sql = "SELECT g, h, COUNT(*), SUM(a), AVG(b) FROM r WHERE " +
              pred("") + " GROUP BY g, h ORDER BY g, h";
        break;
      default:  // join, sometimes aggregated
        if (rng.Uniform(2) == 0) {
          sql = "SELECT r.id, s.lbl FROM r JOIN s ON r.g = s.g WHERE " +
                pred("r.");
        } else {
          sql = "SELECT s.lbl, COUNT(*), SUM(r.a) FROM r JOIN s ON r.g = s.g "
                "WHERE " + pred("r.") + " GROUP BY s.lbl ORDER BY s.lbl";
        }
        break;
    }
    SCOPED_TRACE("iter " + std::to_string(iter) + ": " + sql);
    Differential(sql);
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace veloce::sql
