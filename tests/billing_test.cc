#include <gtest/gtest.h>

#include "billing/ecpu_model.h"
#include "billing/token_bucket.h"
#include "common/clock.h"

namespace veloce::billing {
namespace {

// ---------------------------------------------------------------------------
// PiecewiseLinear
// ---------------------------------------------------------------------------

TEST(PiecewiseLinearTest, InterpolatesAndClamps) {
  PiecewiseLinear f({{0, 0}, {10, 100}});
  EXPECT_DOUBLE_EQ(f.Eval(5), 50);
  EXPECT_DOUBLE_EQ(f.Eval(-5), 0);    // clamp low
  EXPECT_DOUBLE_EQ(f.Eval(100), 100); // clamp high
}

TEST(PiecewiseLinearTest, MultiSegment) {
  PiecewiseLinear f({{0, 0}, {10, 100}, {20, 110}});
  EXPECT_DOUBLE_EQ(f.Eval(15), 105);
}

TEST(PiecewiseLinearTest, FitRecoversShape) {
  // Samples from y = 1000/x (decreasing cost curve like Fig 5).
  std::vector<PiecewiseLinear::Point> samples;
  for (int i = 1; i <= 200; ++i) {
    const double x = i * 10.0;
    samples.push_back({x, 1000.0 / x});
  }
  PiecewiseLinear fit = PiecewiseLinear::Fit(samples, 5);
  EXPECT_GT(fit.Eval(20), fit.Eval(2000));  // decreasing
  EXPECT_NEAR(fit.Eval(1000), 1.0, 0.6);
}

// ---------------------------------------------------------------------------
// EstimatedCpuModel
// ---------------------------------------------------------------------------

TEST(EcpuModelTest, ZeroFeaturesZeroCost) {
  EstimatedCpuModel model = EstimatedCpuModel::Default();
  EXPECT_DOUBLE_EQ(model.EstimateKvCpuSeconds({}, 10), 0);
}

TEST(EcpuModelTest, MoreWorkCostsMore) {
  EstimatedCpuModel model = EstimatedCpuModel::Default();
  IntervalFeatures small;
  small.read_batches = 100;
  small.read_requests = 100;
  small.read_bytes = 100 * 64;
  IntervalFeatures big = small;
  big.read_batches *= 10;
  big.read_requests *= 10;
  big.read_bytes *= 10;
  EXPECT_GT(model.EstimateKvCpuSeconds(big, 10),
            model.EstimateKvCpuSeconds(small, 10));
}

TEST(EcpuModelTest, BatchingIsMoreEfficientAtHigherRates) {
  // Same total batches, spread over different durations => different rates.
  // Per-batch cost must fall as the rate rises (Fig 5's shape).
  EstimatedCpuModel model = EstimatedCpuModel::Default();
  IntervalFeatures f;
  f.write_batches = 100000;
  const double slow = model.EstimateKvCpuSeconds(f, 1000);  // 100/s
  const double fast = model.EstimateKvCpuSeconds(f, 1);     // 100K/s
  EXPECT_GT(slow, fast);
}

TEST(EcpuModelTest, WritesCostMoreThanReads) {
  EstimatedCpuModel model = EstimatedCpuModel::Default();
  IntervalFeatures reads, writes;
  reads.read_batches = writes.write_batches = 1000;
  reads.read_requests = writes.write_requests = 5000;
  reads.read_bytes = writes.write_bytes = 1 << 20;
  EXPECT_GT(model.EstimateKvCpuSeconds(writes, 10),
            model.EstimateKvCpuSeconds(reads, 10));
}

TEST(EcpuModelTest, TotalAddsSqlCpu) {
  EstimatedCpuModel model = EstimatedCpuModel::Default();
  IntervalFeatures f;
  f.read_batches = 1000;
  const double kv = model.EstimateKvCpuSeconds(f, 10);
  EXPECT_DOUBLE_EQ(model.EstimateTotalCpuSeconds(2.5, f, 10), 2.5 + kv);
}

TEST(EcpuModelTest, RequestUnitsConversion) {
  EXPECT_NEAR(EcpuSecondsToRequestUnits(20e-6), 1.0, 1e-9);
  EXPECT_NEAR(EcpuSecondsToRequestUnits(1.0), 50000.0, 1.0);
}

// ---------------------------------------------------------------------------
// TokenBucketServer / Client
// ---------------------------------------------------------------------------

TEST(TokenBucketServerTest, UnlimitedGrantsEverything) {
  ManualClock clock(0);
  TokenBucketServer server(&clock, /*quota_vcpus=*/0);
  EXPECT_TRUE(server.unlimited());
  auto grant = server.Request(1, 1e9, 0);
  EXPECT_DOUBLE_EQ(grant.tokens, 1e9);
  EXPECT_DOUBLE_EQ(grant.trickle_rate, 0);
}

TEST(TokenBucketServerTest, RefillRateMatchesQuota) {
  ManualClock clock(0);
  TokenBucketServer server(&clock, /*quota_vcpus=*/10);
  EXPECT_DOUBLE_EQ(server.refill_rate(), 10000.0);  // 1000 tokens/s/vCPU
}

TEST(TokenBucketServerTest, GrantsFromBurstThenTrickles) {
  ManualClock clock(0);
  TokenBucketServer server(&clock, 1);  // 1000 tokens/s, 10s burst
  auto g1 = server.Request(1, 5000, 1000);
  EXPECT_DOUBLE_EQ(g1.tokens, 5000);
  EXPECT_DOUBLE_EQ(g1.trickle_rate, 0);
  auto g2 = server.Request(1, 10000, 1000);
  EXPECT_LT(g2.tokens, 10000);
  EXPECT_GT(g2.trickle_rate, 0);
  // The trickle rate never exceeds the refill rate for a single node.
  EXPECT_LE(g2.trickle_rate, 1000.0 + 1e-9);
}

TEST(TokenBucketServerTest, TrickleSharesAcrossNodes) {
  ManualClock clock(0);
  TokenBucketServer server(&clock, 2);  // 2000 tokens/s
  // Drain the burst.
  server.Request(1, 2000.0 * TokenBucketServer::kBurstSeconds, 1000);
  auto g1 = server.Request(1, 5000, 2000);
  auto g2 = server.Request(2, 5000, 2000);
  EXPECT_GT(g1.trickle_rate, 0);
  EXPECT_GT(g2.trickle_rate, 0);
  // Two active nodes: each gets at most ~half the refill rate.
  EXPECT_LE(g2.trickle_rate, 1000.0 * 1.1);
}

TEST(TokenBucketServerTest, TokensRegenerateOverTime) {
  ManualClock clock(0);
  TokenBucketServer server(&clock, 1);
  server.Request(1, 1000.0 * TokenBucketServer::kBurstSeconds, 0);  // drain
  EXPECT_LT(server.available(), 1.0);
  clock.Advance(2 * kSecond);
  EXPECT_NEAR(server.available(), 2000, 50);
}

TEST(TokenBucketClientTest, UnthrottledWhenQuotaAmple) {
  ManualClock clock(0);
  TokenBucketServer server(&clock, 100);
  TokenBucketClient client(&server, 1, &clock);
  Nanos total_delay = 0;
  for (int i = 0; i < 100; ++i) {
    clock.Advance(10 * kMilli);
    total_delay += client.Consume(5);  // 500 tokens/s << 100k/s quota
  }
  EXPECT_EQ(total_delay, 0);
  EXPECT_FALSE(client.throttled());
}

TEST(TokenBucketClientTest, ThrottledWhenOverQuota) {
  ManualClock clock(0);
  TokenBucketServer server(&clock, 1);  // 1000 tokens/s
  TokenBucketClient client(&server, 1, &clock);
  Nanos total_delay = 0;
  // Consume at ~10000 tokens/s for 30 simulated seconds.
  for (int i = 0; i < 3000; ++i) {
    clock.Advance(10 * kMilli);
    total_delay += client.Consume(100);
  }
  EXPECT_GT(total_delay, 0);
  EXPECT_TRUE(client.throttled());
}

TEST(TokenBucketClientTest, SmoothPacingNotStopStart) {
  // With trickle grants the imposed delays should be spread out, not one
  // giant stall: max delay << total delay.
  ManualClock clock(0);
  TokenBucketServer server(&clock, 1);
  TokenBucketClient client(&server, 1, &clock);
  Nanos total_delay = 0, max_delay = 0;
  for (int i = 0; i < 2000; ++i) {
    clock.Advance(10 * kMilli);
    const Nanos d = client.Consume(50);  // 5000 tokens/s demand vs 1000 quota
    total_delay += d;
    if (d > max_delay) max_delay = d;
  }
  EXPECT_GT(total_delay, 0);
  EXPECT_LT(max_delay, total_delay / 4);
}

}  // namespace
}  // namespace veloce::billing
