#include <gtest/gtest.h>

#include "common/logging.h"
#include "sql/sql_node.h"
#include "tenant/controller.h"
#include "workload/load_pattern.h"
#include "workload/tpcc.h"
#include "workload/tpch.h"
#include "workload/ycsb.h"

namespace veloce::workload {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() {
    kv::KVClusterOptions opts;
    opts.num_nodes = 3;
    cluster_ = std::make_unique<kv::KVCluster>(opts);
    controller_ = std::make_unique<tenant::TenantController>(cluster_.get(), &ca_);
    service_ = std::make_unique<tenant::AuthorizedKvService>(cluster_.get(), &ca_);
    auto meta = *controller_->CreateTenant("bench");
    auto cert = *controller_->IssueCert(meta.id);
    node_ = std::make_unique<sql::SqlNode>(1, sql::SqlNode::Options{}, cluster_->clock());
    VELOCE_CHECK_OK(node_->StartProcess());
    VELOCE_CHECK_OK(node_->StampTenant(service_.get(), cluster_.get(), cert));
    session_ = *node_->NewSession();
  }

  tenant::CertificateAuthority ca_;
  std::unique_ptr<kv::KVCluster> cluster_;
  std::unique_ptr<tenant::TenantController> controller_;
  std::unique_ptr<tenant::AuthorizedKvService> service_;
  std::unique_ptr<sql::SqlNode> node_;
  sql::Session* session_;
};

// ---------------------------------------------------------------------------
// TPC-C
// ---------------------------------------------------------------------------

TEST_F(WorkloadTest, TpccSetupAndMix) {
  TpccWorkload::Options opts;
  opts.warehouses = 1;
  opts.districts_per_warehouse = 2;
  opts.customers_per_district = 10;
  opts.items = 40;
  TpccWorkload tpcc(opts, 7);
  ASSERT_TRUE(tpcc.Setup(session_).ok());

  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(tpcc.RunTransaction(session_).ok()) << "txn " << i;
  }
  const auto& stats = tpcc.stats();
  EXPECT_EQ(stats.committed(), 60u);
  EXPECT_GT(stats.new_orders, 15u);  // ~45% of the mix
  EXPECT_GT(stats.payments, 15u);    // ~43%
  EXPECT_EQ(stats.aborts, 0u);
}

TEST_F(WorkloadTest, TpccNewOrderWritesConsistentRows) {
  TpccWorkload::Options opts;
  opts.warehouses = 1;
  opts.districts_per_warehouse = 1;
  opts.customers_per_district = 5;
  opts.items = 20;
  TpccWorkload tpcc(opts, 3);
  ASSERT_TRUE(tpcc.Setup(session_).ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(tpcc.NewOrder(session_).ok());

  // Every order's line count matches its o_ol_cnt, and the district counter
  // advanced exactly once per order.
  auto orders = *session_->Execute("SELECT o_id, o_ol_cnt FROM orders");
  ASSERT_EQ(orders.rows.size(), 10u);
  for (const auto& row : orders.rows) {
    auto lines = *session_->Execute(
        "SELECT COUNT(*) FROM order_line WHERE w_id = 1 AND d_id = 1 AND o_id = " +
        std::to_string(row[0].int_value()));
    EXPECT_EQ(lines.rows[0][0].int_value(), row[1].int_value());
  }
  auto next = *session_->Execute(
      "SELECT d_next_o_id FROM district WHERE w_id = 1 AND d_id = 1");
  EXPECT_EQ(next.rows[0][0].int_value(), 11);
}

TEST_F(WorkloadTest, TpccPaymentUpdatesBalances) {
  TpccWorkload::Options opts;
  opts.warehouses = 1;
  opts.districts_per_warehouse = 1;
  opts.customers_per_district = 5;
  opts.items = 10;
  TpccWorkload tpcc(opts, 5);
  ASSERT_TRUE(tpcc.Setup(session_).ok());
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(tpcc.Payment(session_).ok());
  // Warehouse YTD equals the sum of customer payments (money conservation).
  auto w = *session_->Execute("SELECT w_ytd FROM warehouse WHERE w_id = 1");
  auto c = *session_->Execute("SELECT SUM(c_ytd_payment) FROM customer");
  EXPECT_NEAR(w.rows[0][0].AsDouble(), c.rows[0][0].AsDouble(), 0.01);
  auto cnt = *session_->Execute("SELECT SUM(c_payment_cnt) FROM customer");
  EXPECT_EQ(cnt.rows[0][0].int_value(), 20);
}

// ---------------------------------------------------------------------------
// TPC-H
// ---------------------------------------------------------------------------

TEST_F(WorkloadTest, TpchQ1ShapesAndTotals) {
  TpchWorkload::Options opts;
  opts.lineitem_rows = 300;
  opts.orders = 60;
  TpchWorkload tpch(opts, 9);
  ASSERT_TRUE(tpch.Setup(session_).ok());
  auto rs = *tpch.RunQ1(session_);
  // At most 3 flags x 2 statuses groups; counts add to all rows.
  EXPECT_LE(rs.rows.size(), 6u);
  EXPECT_GE(rs.rows.size(), 2u);
  int64_t total = 0;
  for (const auto& row : rs.rows) total += row[8].int_value();  // count_order
  EXPECT_EQ(total, 300);
  // Discounted price <= base price per group.
  for (const auto& row : rs.rows) {
    EXPECT_LE(row[4].AsDouble(), row[3].AsDouble() + 1e-6);
  }
}

TEST_F(WorkloadTest, TpchQ9GroupsByNation) {
  TpchWorkload::Options opts;
  opts.lineitem_rows = 200;
  opts.orders = 40;
  opts.nations = 4;
  TpchWorkload tpch(opts, 13);
  ASSERT_TRUE(tpch.Setup(session_).ok());
  auto rs = *tpch.RunQ9(session_);
  EXPECT_GE(rs.rows.size(), 1u);
  EXPECT_LE(rs.rows.size(), 4u);
  // Output is (nation, profit) sorted by nation.
  for (size_t i = 1; i < rs.rows.size(); ++i) {
    EXPECT_LT(rs.rows[i - 1][0].string_value(), rs.rows[i][0].string_value());
  }
}

// ---------------------------------------------------------------------------
// YCSB
// ---------------------------------------------------------------------------

TEST_F(WorkloadTest, YcsbMixesRun) {
  YcsbWorkload::Options opts;
  opts.record_count = 100;
  opts.field_bytes = 16;
  for (auto mix : {YcsbWorkload::Mix::kA, YcsbWorkload::Mix::kC,
                   YcsbWorkload::Mix::kF}) {
    // Fresh table per mix (drop if it exists from the previous loop).
    (void)session_->Execute("DROP TABLE usertable");
    opts.mix = mix;
    YcsbWorkload ycsb(opts, 21);
    ASSERT_TRUE(ycsb.Setup(session_).ok());
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(ycsb.RunOp(session_).ok()) << YcsbWorkload::MixName(mix);
    }
    EXPECT_EQ(ycsb.stats().errors, 0u);
  }
}

TEST_F(WorkloadTest, YcsbWorkloadCIsReadOnly) {
  YcsbWorkload::Options opts;
  opts.mix = YcsbWorkload::Mix::kC;
  opts.record_count = 50;
  YcsbWorkload ycsb(opts, 23);
  ASSERT_TRUE(ycsb.Setup(session_).ok());
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(ycsb.RunOp(session_).ok());
  EXPECT_EQ(ycsb.stats().reads, 30u);
  EXPECT_EQ(ycsb.stats().updates + ycsb.stats().inserts, 0u);
}

TEST_F(WorkloadTest, ImportLoadsAllRows) {
  ASSERT_TRUE(RunImport(session_, "imported", 200, 128, 31).ok());
  auto rs = *session_->Execute("SELECT COUNT(*) FROM imported");
  EXPECT_EQ(rs.rows[0][0].int_value(), 200);
}

// ---------------------------------------------------------------------------
// LoadPattern
// ---------------------------------------------------------------------------

TEST(LoadPatternTest, InterpolatesSegments) {
  LoadPattern pattern({{10 * kSecond, 0, 10}, {10 * kSecond, 10, 10}});
  EXPECT_NEAR(pattern.At(0), 0, 1e-9);
  EXPECT_NEAR(pattern.At(5 * kSecond), 5, 1e-9);
  EXPECT_NEAR(pattern.At(15 * kSecond), 10, 1e-9);
  // Past the end: holds the final value.
  EXPECT_NEAR(pattern.At(kMinute), 10, 1e-9);
  EXPECT_EQ(pattern.TotalDuration(), 20 * kSecond);
}

TEST(LoadPatternTest, ProductionLikeHasSpikeAndIdle) {
  LoadPattern pattern = LoadPattern::ProductionLike();
  const Nanos total = pattern.TotalDuration();
  EXPECT_GT(total, 2 * kHour);
  double peak = 0;
  for (Nanos t = 0; t < total; t += kMinute) peak = std::max(peak, pattern.At(t));
  EXPECT_GT(peak, 8.0);                      // the spike
  EXPECT_NEAR(pattern.At(total - kMinute), 0.0, 0.5);  // idle tail
}

}  // namespace
}  // namespace veloce::workload
