// Write-path concurrency stress: group commit + background flush/compaction
// under real threads. Run under the `tsan` preset (scripts/check.sh --tsan)
// this doubles as the data-race gate for the storage engine's lock-free
// pieces (atomic skiplist publication, commit I/O outside the engine mutex,
// unlocked background table builds).
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/background.h"
#include "storage/engine.h"

namespace veloce::storage {
namespace {

EngineOptions StressOptions(BackgroundExecutor* executor) {
  EngineOptions options;
  options.memtable_bytes = 32 << 10;  // rotate often
  options.sstable_target_bytes = 16 << 10;
  options.block_bytes = 1024;
  options.level_base_bytes = 128 << 10;
  options.background_executor = executor;
  return options;
}

std::string Key(int writer, int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "w%02d-k%05d", writer, i);
  return buf;
}

std::string Value(int writer, int i, int version) {
  return "v" + std::to_string(version) + "-" + Key(writer, i) +
         std::string(64, 'x');
}

TEST(StorageConcurrencyTest, WritersReadersFlushCompactStress) {
  ThreadPoolExecutor executor(2);
  auto engine_or = Engine::Open(StressOptions(&executor));
  ASSERT_TRUE(engine_or.ok());
  auto engine = std::move(engine_or).value();

  constexpr int kWriters = 4;
  constexpr int kBatches = 300;
  constexpr int kOpsPerBatch = 4;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int b = 0; b < kBatches; ++b) {
        WriteBatch batch;
        for (int op = 0; op < kOpsPerBatch; ++op) {
          const int i = b * kOpsPerBatch + op;
          batch.Put(Key(w, i), Value(w, i, 0));
        }
        // Rewrite a rolling window so compaction sees shadowed versions.
        if (b > 0) batch.Put(Key(w, (b - 1) * kOpsPerBatch), Value(w, (b - 1) * kOpsPerBatch, 1));
        if (!engine->Write(batch).ok()) failures.fetch_add(1);
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      uint64_t probes = 0;
      while (!done.load(std::memory_order_acquire)) {
        // Point reads race the writers; a key is either absent or intact.
        std::string value;
        bool found = false;
        const std::string key = Key(probes % kWriters, (probes * 7) % (kBatches * kOpsPerBatch));
        Status s = engine->GetVisible(Slice(key), &value, &found);
        if (found && s.ok() && value.find(key) == std::string::npos) {
          failures.fetch_add(1);  // torn value
        }
        if (r == 0 && probes % 64 == 0) {
          // Snapshot scans must see a consistent prefix-free view.
          auto it = engine->NewBoundedIterator(Slice("w00"), Slice("w01"));
          int n = 0;
          for (it->SeekToFirst(); it->Valid() && n < 50; it->Next()) ++n;
        }
        if (r == 1 && probes % 256 == 0) {
          if (!engine->Flush().ok()) failures.fetch_add(1);
        }
        ++probes;
      }
    });
  }

  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  ASSERT_TRUE(engine->CompactAll().ok());
  EXPECT_EQ(failures.load(), 0);

  // Full verification: every key present with an intact value.
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kBatches * kOpsPerBatch; ++i) {
      std::string value;
      Status s = engine->Get(Slice(Key(w, i)), &value);
      ASSERT_TRUE(s.ok()) << Key(w, i) << ": " << s.ToString();
      EXPECT_NE(value.find(Key(w, i)), std::string::npos);
    }
  }
  // Group commit accounted every operation exactly once.
  const uint64_t expected_ops =
      uint64_t{kWriters} * (kBatches * kOpsPerBatch + (kBatches - 1));
  EXPECT_EQ(engine->LastSequence(), expected_ops);
}

TEST(StorageConcurrencyTest, ConcurrentWritersStallAndRecover) {
  // Tight thresholds force rotation + stalls while two workers drain.
  ThreadPoolExecutor executor(2);
  EngineOptions options = StressOptions(&executor);
  options.max_immutable_memtables = 1;
  options.l0_stall_files = 4;
  auto engine_or = Engine::Open(options);
  ASSERT_TRUE(engine_or.ok());
  auto engine = std::move(engine_or).value();

  constexpr int kWriters = 8;
  constexpr int kPerWriter = 150;
  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        if (!engine->Put(Key(w, i), Value(w, i, 0)).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(engine->Flush().ok());
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kPerWriter; ++i) {
      std::string value;
      ASSERT_TRUE(engine->Get(Slice(Key(w, i)), &value).ok()) << Key(w, i);
    }
  }
  const EngineStats& stats = engine->stats();
  EXPECT_GT(stats.num_flushes, 0u);
}

}  // namespace
}  // namespace veloce::storage
