// Transaction hot-path suite: the batched timestamp oracle, parallel-commit
// staging/recovery, read-span coalescing, per-path commit telemetry, and a
// seeded differential check that the classic, buffered-1PC, and fully
// pipelined/parallel commit paths produce identical committed state.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"
#include "kv/cluster.h"
#include "kv/keys.h"
#include "kv/timestamp.h"
#include "kv/timestamp_oracle.h"
#include "kv/transaction.h"
#include "kv/txn.h"
#include "storage/background.h"

namespace veloce::kv {
namespace {

// ---------------------------------------------------------------------------
// HLC batch reservation
// ---------------------------------------------------------------------------

TEST(HlcBatchTest, GenerateTimestampsReservesContiguousWindow) {
  ManualClock physical(1000);
  HybridLogicalClock hlc(&physical);
  const Timestamp first = hlc.GenerateTimestamps(10);
  // The whole batch shares one wall value; the i-th reserved timestamp is
  // {first.wall, first.logical + i}.
  const Timestamp last = {first.wall, first.logical + 9};
  EXPECT_EQ(hlc.Latest(), last);
  // Nothing else may be handed out inside the reserved window.
  const Timestamp after = hlc.Now();
  EXPECT_GT(after, last);
  // A second batch sits strictly above the first.
  const Timestamp second = hlc.GenerateTimestamps(10);
  EXPECT_GT(second, after);
}

TEST(HlcBatchTest, BatchNeverStraddlesWallValues) {
  ManualClock physical(1000);
  HybridLogicalClock hlc(&physical);
  // Push the logical component near the top of its range.
  hlc.Update({2000, UINT32_MAX - 3});
  const Timestamp first = hlc.GenerateTimestamps(16);
  // 16 timestamps no longer fit at wall=2000; the batch moves to a fresh
  // wall value so holders can enumerate it as {wall, logical + i}.
  EXPECT_EQ(first.logical, 0u);
  EXPECT_GT(first.wall, 2000);
}

// ---------------------------------------------------------------------------
// Batched timestamp oracle
// ---------------------------------------------------------------------------

TEST(OracleTest, BatchAmortizesClockTraffic) {
  ManualClock physical(1000);
  HybridLogicalClock hlc(&physical);
  TimestampOracleOptions opts;
  opts.batch_size = 8;
  opts.refill_threshold = 0;  // no prefetch: count exact refills
  TimestampOracle oracle(&hlc, opts);
  Timestamp prev = oracle.Next();
  for (int i = 1; i < 8; ++i) {
    const Timestamp t = oracle.Next();
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_EQ(oracle.sync_refills(), 1u);  // 8 Next() calls, one HLC trip
  oracle.Next();
  EXPECT_EQ(oracle.sync_refills(), 2u);
}

TEST(OracleTest, ObserveInsideWindowFastForwards) {
  ManualClock physical(1000);
  HybridLogicalClock hlc(&physical);
  TimestampOracleOptions opts;
  opts.batch_size = 100;
  opts.refill_threshold = 0;
  TimestampOracle oracle(&hlc, opts);
  const Timestamp first = oracle.Next();
  const Timestamp committed = {first.wall, first.logical + 50};
  oracle.Observe(committed);
  // Session guarantee: the next timestamp exceeds the observed commit, and
  // the fast-forward did not force a new HLC batch.
  EXPECT_GT(oracle.Next(), committed);
  EXPECT_EQ(oracle.sync_refills(), 1u);
}

TEST(OracleTest, ObserveBeyondWindowInvalidates) {
  ManualClock physical(1000);
  HybridLogicalClock hlc(&physical);
  TimestampOracleOptions opts;
  opts.batch_size = 100;
  opts.refill_threshold = 0;
  TimestampOracle oracle(&hlc, opts);
  oracle.Next();
  const Timestamp committed = {999999, 5};  // far past the cached window
  oracle.Observe(committed);
  EXPECT_GT(oracle.Next(), committed);
  EXPECT_EQ(oracle.sync_refills(), 2u);  // window was discarded and refilled
}

TEST(OracleTest, AsyncRefillRunsOnExecutor) {
  ManualClock physical(1000);
  HybridLogicalClock hlc(&physical);
  storage::ThreadPoolExecutor pool(2);
  TimestampOracleOptions opts;
  opts.batch_size = 16;
  opts.refill_threshold = 8;
  opts.executor = &pool;
  TimestampOracle oracle(&hlc, opts);
  // Draw the cache below the refill threshold, then let the prefetch land.
  for (int i = 0; i < 12; ++i) oracle.Next();
  pool.Drain();
  EXPECT_GE(oracle.async_refills(), 1u);
  // The refilled window keeps handing out strictly increasing timestamps.
  Timestamp prev = oracle.Next();
  for (int i = 0; i < 32; ++i) {
    const Timestamp t = oracle.Next();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

// TSan target (label `txn`): foreground Next() callers race with executor
// refills and Observe(); every handed-out timestamp must stay globally
// unique and per-thread strictly monotonic.
TEST(OracleTest, MonotonicUnderConcurrentRefills) {
  ManualClock physical(1000);  // frozen wall clock: logical-only pressure
  HybridLogicalClock hlc(&physical);
  storage::ThreadPoolExecutor pool(4);
  TimestampOracleOptions opts;
  opts.batch_size = 8;  // small batches: constant refill churn
  opts.refill_threshold = 4;
  opts.executor = &pool;
  TimestampOracle oracle(&hlc, opts);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<Timestamp>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&oracle, &seen, t] {
      seen[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        const Timestamp ts = oracle.Next();
        seen[t].push_back(ts);
        if ((i & 63) == 0) oracle.Observe(ts);  // commit-ack interleaving
      }
    });
  }
  for (auto& th : threads) th.join();
  pool.Drain();

  std::set<std::pair<Nanos, uint32_t>> unique;
  for (const auto& per_thread : seen) {
    for (size_t i = 0; i < per_thread.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(per_thread[i - 1], per_thread[i]);
      }
      unique.emplace(per_thread[i].wall, per_thread[i].logical);
    }
  }
  EXPECT_EQ(unique.size(), static_cast<size_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// TxnRegistry staging transitions
// ---------------------------------------------------------------------------

class TxnRegistryStagingTest : public ::testing::Test {
 protected:
  TxnRegistryStagingTest() : clock_(1000), registry_(&clock_) {}

  ManualClock clock_;
  TxnRegistry registry_;
};

TEST_F(TxnRegistryStagingTest, StageDeclaresCommitCondition) {
  const TxnRecord rec = registry_.Begin({100, 0}, 0);
  ASSERT_TRUE(registry_.Stage(rec.id, {100, 5}, {"a", "b"}).ok());
  const TxnRecord staged = *registry_.Get(rec.id);
  EXPECT_EQ(staged.status, TxnStatus::kStaging);
  EXPECT_EQ(staged.staged_ts, (Timestamp{100, 5}));
  EXPECT_GE(staged.write_ts, staged.staged_ts);
  ASSERT_EQ(staged.in_flight_writes.size(), 2u);
}

TEST_F(TxnRegistryStagingTest, PushLeavesStagingForRecovery) {
  const TxnRecord rec = registry_.Begin({100, 0}, 0);
  ASSERT_TRUE(registry_.Stage(rec.id, {100, 5}, {"a"}).ok());
  // Even a max-priority abort push cannot touch a staged record — it may
  // already be implicitly committed. The pusher must run recovery.
  const PushResult pr = registry_.Push(rec.id, INT32_MAX,
                                       TxnRegistry::PushType::kAbort,
                                       Timestamp{200, 0});
  EXPECT_FALSE(pr.pushed);
  EXPECT_EQ(pr.pushee_status, TxnStatus::kStaging);
  EXPECT_EQ(pr.commit_ts, (Timestamp{100, 5}));
  EXPECT_EQ(registry_.Get(rec.id)->status, TxnStatus::kStaging);
}

TEST_F(TxnRegistryStagingTest, ReStagingAfterBumpMovesCommitCondition) {
  const TxnRecord rec = registry_.Begin({100, 0}, 0);
  ASSERT_TRUE(registry_.Stage(rec.id, {100, 5}, {"a"}).ok());
  // A late pipelined write got bumped above the staged timestamp: the
  // commit condition fails and the coordinator refreshes + re-stages.
  ASSERT_TRUE(registry_.BumpWriteTimestamp(rec.id, {150, 0}).ok());
  ASSERT_TRUE(registry_.Stage(rec.id, {150, 0}, {"a", "b"}).ok());
  const TxnRecord staged = *registry_.Get(rec.id);
  EXPECT_EQ(staged.staged_ts, (Timestamp{150, 0}));
  EXPECT_EQ(staged.in_flight_writes.size(), 2u);
}

TEST_F(TxnRegistryStagingTest, StageFailsAfterPusherAborts) {
  const TxnRecord rec = registry_.Begin({100, 0}, 0);
  ASSERT_TRUE(registry_.Abort(rec.id).ok());
  const Status s = registry_.Stage(rec.id, {100, 5}, {"a"});
  EXPECT_EQ(s.code(), Code::kTransactionAborted);
}

TEST_F(TxnRegistryStagingTest, CommitFinalizesStagedRecord) {
  const TxnRecord rec = registry_.Begin({100, 0}, 0);
  ASSERT_TRUE(registry_.Stage(rec.id, {100, 5}, {"a"}).ok());
  ASSERT_TRUE(registry_.Commit(rec.id, {100, 5}).ok());
  const TxnRecord committed = *registry_.Get(rec.id);
  EXPECT_EQ(committed.status, TxnStatus::kCommitted);
  EXPECT_EQ(committed.write_ts, (Timestamp{100, 5}));
  EXPECT_TRUE(committed.in_flight_writes.empty());
  // Commit is idempotent (recovery may have finalized first).
  EXPECT_TRUE(registry_.Commit(rec.id, {100, 5}).ok());
}

TEST_F(TxnRegistryStagingTest, GcCollectsFinalizedButNeverStaging) {
  const TxnRecord committed = registry_.Begin({100, 0}, 0);
  const TxnRecord aborted = registry_.Begin({100, 0}, 0);
  const TxnRecord staged = registry_.Begin({100, 0}, 0);
  const TxnRecord pending = registry_.Begin({100, 0}, 0);
  ASSERT_TRUE(registry_.Commit(committed.id, {100, 1}).ok());
  ASSERT_TRUE(registry_.Abort(aborted.id).ok());
  ASSERT_TRUE(registry_.Stage(staged.id, {100, 2}, {"a"}).ok());
  clock_.Advance(TxnRegistry::kExpiration + 1);
  EXPECT_EQ(registry_.GarbageCollect(), 2u);  // committed + aborted
  EXPECT_EQ(registry_.size(), 2u);
  // The staged record may still be implicitly committed; only recovery may
  // finalize it. The pending record is abandoned but not yet finalized.
  EXPECT_EQ(registry_.Get(staged.id)->status, TxnStatus::kStaging);
  EXPECT_EQ(registry_.Get(pending.id)->status, TxnStatus::kPending);
}

// ---------------------------------------------------------------------------
// Parallel-commit recovery at the cluster
// ---------------------------------------------------------------------------

class TxnRecoveryTest : public ::testing::Test {
 protected:
  TxnRecoveryTest() : clock_(10 * kSecond) {
    KVClusterOptions opts;
    opts.num_nodes = 3;
    opts.replication_factor = 3;
    opts.clock = &clock_;
    cluster_ = std::make_unique<KVCluster>(opts);
    VELOCE_CHECK_OK(cluster_->CreateTenantKeyspace(10));
  }

  std::string Key(const std::string& k) { return AddTenantPrefix(10, k); }

  Status WriteIntent(const TxnRecord& rec, const std::string& key,
                     const std::string& value) {
    BatchRequest req;
    req.tenant_id = 10;
    req.ts = rec.read_ts;
    req.txn_id = rec.id;
    req.txn_priority = rec.priority;
    req.AddPut(key, value);
    return cluster_->Send(req).status();
  }

  StatusOr<BatchResponse> Read(const std::string& key) {
    BatchRequest req;
    req.tenant_id = 10;
    req.ts = cluster_->Now();
    req.AddGet(key);
    return cluster_->Send(req);
  }

  double Recoveries() {
    return cluster_->metrics()->Sum("veloce_txn_staging_recoveries_total");
  }

  ManualClock clock_;
  std::unique_ptr<KVCluster> cluster_;
};

TEST_F(TxnRecoveryTest, RecoveryCommitsImplicitlyCommittedTxn) {
  const TxnRecord rec = cluster_->BeginTxn();
  ASSERT_TRUE(WriteIntent(rec, Key("a"), "va").ok());
  ASSERT_TRUE(WriteIntent(rec, Key("b"), "vb").ok());
  Timestamp staged;
  ASSERT_TRUE(cluster_->StageTxn(rec.id, {Key("a"), Key("b")}, &staged).ok());

  // Every declared write holds an intent at or below staged_ts, so the txn
  // is implicitly committed: a conflicting reader's push triggers recovery,
  // which finalizes the record and lets the read observe the value.
  auto resp = Read(Key("a"));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_TRUE(resp->responses[0].found);
  EXPECT_EQ(resp->responses[0].value, "va");
  EXPECT_EQ(Recoveries(), 1.0);

  const TxnRecord after = *cluster_->txn_registry()->Get(rec.id);
  EXPECT_EQ(after.status, TxnStatus::kCommitted);
  EXPECT_EQ(after.write_ts, staged);

  // The coordinator's own commit arrives later and is an idempotent no-op
  // landing on the same timestamp recovery chose.
  Timestamp commit_ts;
  ASSERT_TRUE(cluster_->CommitTxn(rec.id, {Key("a"), Key("b")}, &commit_ts).ok());
  EXPECT_EQ(commit_ts, staged);
  auto b = Read(Key("b"));
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->responses[0].found);
}

TEST_F(TxnRecoveryTest, RecoveryBacksOffWhileCoordinatorIsLive) {
  const TxnRecord rec = cluster_->BeginTxn();
  ASSERT_TRUE(WriteIntent(rec, Key("a"), "va").ok());
  // Declare a write that has not landed yet: the commit condition is not
  // provable, and the record is fresh — the pusher must wait.
  Timestamp staged;
  ASSERT_TRUE(cluster_->StageTxn(rec.id, {Key("a"), Key("b")}, &staged).ok());

  const Status s = Read(Key("a")).status();
  EXPECT_TRUE(s.IsWriteIntentError()) << s.ToString();
  EXPECT_EQ(Recoveries(), 1.0);
  EXPECT_EQ(cluster_->txn_registry()->Get(rec.id)->status, TxnStatus::kStaging);
}

TEST_F(TxnRecoveryTest, RecoveryAbortsExpiredStagingAndFencesLateWrites) {
  const TxnRecord rec = cluster_->BeginTxn();
  ASSERT_TRUE(WriteIntent(rec, Key("a"), "va").ok());
  Timestamp staged;
  ASSERT_TRUE(cluster_->StageTxn(rec.id, {Key("a"), Key("b")}, &staged).ok());

  // The coordinator dies: the record expires with the commit condition
  // unprovable, so recovery aborts it and the reader proceeds.
  clock_.Advance(TxnRegistry::kExpiration + kSecond);
  auto resp = Read(Key("a"));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_FALSE(resp->responses[0].found);
  EXPECT_EQ(cluster_->txn_registry()->Get(rec.id)->status, TxnStatus::kAborted);

  // A late pipelined write from the dead coordinator cannot land and
  // retroactively satisfy the stale staging.
  const Status late = WriteIntent(rec, Key("b"), "vb");
  EXPECT_EQ(late.code(), Code::kTransactionAborted) << late.ToString();
}

TEST_F(TxnRecoveryTest, StageRefusesUnvalidatedWriteTimestamp) {
  const TxnRecord rec = cluster_->BeginTxn();
  ASSERT_TRUE(WriteIntent(rec, Key("a"), "va").ok());
  // A reader pushed the write timestamp above what the coordinator
  // validated its reads at. Staging anyway would let a concurrent recovery
  // commit the txn with unvalidated reads — StageTxn must refuse, hand
  // back the refresh target, and leave the record pending.
  const Timestamp bumped{20 * kSecond, 0};
  ASSERT_TRUE(cluster_->txn_registry()->BumpWriteTimestamp(rec.id, bumped).ok());
  Timestamp staged;
  const Status s = cluster_->StageTxn(rec.id, {Key("a")}, &staged, rec.read_ts);
  EXPECT_TRUE(s.IsTransactionRetry()) << s.ToString();
  EXPECT_EQ(staged, bumped);
  EXPECT_EQ(cluster_->txn_registry()->Get(rec.id)->status, TxnStatus::kPending);
  // Validated up to the bump, staging proceeds at it.
  ASSERT_TRUE(cluster_->StageTxn(rec.id, {Key("a")}, &staged, bumped).ok());
  EXPECT_EQ(staged, bumped);
  EXPECT_EQ(cluster_->txn_registry()->Get(rec.id)->status, TxnStatus::kStaging);
}

TEST_F(TxnRecoveryTest, CommitRefusesUnvalidatedWriteTimestamp) {
  const TxnRecord rec = cluster_->BeginTxn();
  ASSERT_TRUE(WriteIntent(rec, Key("a"), "va").ok());
  const Timestamp bumped{20 * kSecond, 0};
  ASSERT_TRUE(cluster_->txn_registry()->BumpWriteTimestamp(rec.id, bumped).ok());
  Timestamp target;
  const Status s = cluster_->CommitTxn(rec.id, {Key("a")}, &target, rec.read_ts);
  EXPECT_TRUE(s.IsTransactionRetry()) << s.ToString();
  EXPECT_EQ(target, bumped);
  EXPECT_EQ(cluster_->txn_registry()->Get(rec.id)->status, TxnStatus::kPending);
}

TEST_F(TxnRecoveryTest, GcSweepAbortsExpiredUnprovableStaging) {
  // Coordinator died right after staging with a declared write missing:
  // the record must not leak forever.
  const TxnRecord rec = cluster_->BeginTxn();
  ASSERT_TRUE(WriteIntent(rec, Key("a"), "va").ok());
  Timestamp staged;
  ASSERT_TRUE(cluster_->StageTxn(rec.id, {Key("a"), Key("b")}, &staged).ok());
  // A fresh staging record is left alone by the sweep.
  EXPECT_EQ(cluster_->GarbageCollectTxns(), 0u);
  EXPECT_EQ(cluster_->txn_registry()->Get(rec.id)->status, TxnStatus::kStaging);
  // Past expiration the sweep runs recovery: the commit condition is
  // unprovable, so the record is aborted and reaped in the same pass.
  clock_.Advance(TxnRegistry::kExpiration + kSecond);
  EXPECT_EQ(cluster_->GarbageCollectTxns(), 1u);
  EXPECT_TRUE(cluster_->txn_registry()->Get(rec.id).status().IsNotFound());
  // The leftover intent resolves as aborted on the next contact (unknown
  // record => aborted), so the write stays invisible.
  auto resp = Read(Key("a"));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_FALSE(resp->responses[0].found);
}

TEST_F(TxnRecoveryTest, GcSweepCommitsExpiredImplicitlyCommittedStaging) {
  // Coordinator died after every declared write landed: the sweep's
  // recovery pass must finalize the txn as COMMITTED, not abort it.
  const TxnRecord rec = cluster_->BeginTxn();
  ASSERT_TRUE(WriteIntent(rec, Key("a"), "va").ok());
  Timestamp staged;
  ASSERT_TRUE(cluster_->StageTxn(rec.id, {Key("a")}, &staged).ok());
  clock_.Advance(TxnRegistry::kExpiration + kSecond);
  EXPECT_EQ(cluster_->GarbageCollectTxns(), 0u);  // finalized now, reaped later
  EXPECT_EQ(cluster_->txn_registry()->Get(rec.id)->status, TxnStatus::kCommitted);
  auto resp = Read(Key("a"));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_TRUE(resp->responses[0].found);
  EXPECT_EQ(resp->responses[0].value, "va");
  clock_.Advance(TxnRegistry::kExpiration + kSecond);
  EXPECT_EQ(cluster_->GarbageCollectTxns(), 1u);
  EXPECT_TRUE(cluster_->txn_registry()->Get(rec.id).status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Coordinator paths: span coalescing, telemetry, pipelining, differential
// ---------------------------------------------------------------------------

class TxnPathTest : public ::testing::Test {
 protected:
  TxnPathTest() {
    KVClusterOptions opts;
    opts.num_nodes = 3;
    opts.replication_factor = 3;
    cluster_ = std::make_unique<KVCluster>(opts);
    VELOCE_CHECK_OK(cluster_->CreateTenantKeyspace(10));
  }

  std::string Key(const std::string& k) { return AddTenantPrefix(10, k); }

  double CommitCount(const std::string& path) {
    return cluster_->metrics()->Value("veloce_txn_commits_total",
                                      {{"path", path}});
  }

  std::unique_ptr<KVCluster> cluster_;
};

TEST_F(TxnPathTest, ReadSpansCoalesce) {
  Transaction txn(cluster_.get(), 10);
  std::optional<std::string> value;
  ASSERT_TRUE(txn.Get(Key("a"), &value).ok());
  ASSERT_TRUE(txn.Get(Key("c"), &value).ok());
  EXPECT_EQ(txn.read_span_count(), 2u);
  // A scan covering both point reads absorbs them into one span.
  std::vector<MvccScanEntry> rows;
  ASSERT_TRUE(txn.Scan(Key("a"), Key("d"), 0, &rows).ok());
  EXPECT_EQ(txn.read_span_count(), 1u);
  // A point read inside the merged span adds nothing.
  ASSERT_TRUE(txn.Get(Key("b"), &value).ok());
  EXPECT_EQ(txn.read_span_count(), 1u);
  // A disjoint read opens a second span.
  ASSERT_TRUE(txn.Get(Key("z"), &value).ok());
  EXPECT_EQ(txn.read_span_count(), 2u);
  ASSERT_TRUE(txn.Commit().ok());
}

TEST_F(TxnPathTest, CommitPathCountersDistinguishPaths) {
  {
    // Write-only, single range, still buffered at commit: 1PC.
    Transaction txn(cluster_.get(), 10);
    ASSERT_TRUE(txn.Put(Key("p1"), "v").ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  EXPECT_EQ(CommitCount("1pc"), 1.0);
  {
    // An explicit flush lays intents, so commit goes through STAGING.
    Transaction txn(cluster_.get(), 10);
    ASSERT_TRUE(txn.Put(Key("p2"), "v").ok());
    ASSERT_TRUE(txn.Flush().ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  EXPECT_EQ(CommitCount("parallel"), 1.0);
  {
    Transaction txn(cluster_.get(), 10, 0, nullptr, TxnOptions::Classic());
    ASSERT_TRUE(txn.Put(Key("p3"), "v").ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  EXPECT_EQ(CommitCount("classic"), 1.0);
  EXPECT_EQ(CommitCount("1pc"), 1.0);
  EXPECT_EQ(CommitCount("parallel"), 1.0);
}

TEST_F(TxnPathTest, OracleObservesAcknowledgedCommits) {
  Transaction txn(cluster_.get(), 10);
  ASSERT_TRUE(txn.Put(Key("obs"), "v").ok());
  ASSERT_TRUE(txn.Commit().ok());
  // Session guarantee: a transaction started after the commit ack must read
  // above the commit timestamp, or it would miss the committed write.
  const TxnRecord next = cluster_->BeginTxn();
  EXPECT_GT(next.read_ts, txn.commit_ts());
}

TEST_F(TxnPathTest, PipelinedFlushesProveBeforeParallelCommit) {
  storage::ThreadPoolExecutor pool(2);
  TxnOptions opts;
  opts.executor = &pool;
  opts.max_buffered_writes = 16;  // force several pipelined intent batches
  {
    Transaction txn(cluster_.get(), 10, 0, nullptr, opts);
    std::optional<std::string> value;
    for (int i = 0; i < 60; ++i) {
      const std::string k = "pipe" + std::to_string(100 + i);
      ASSERT_TRUE(txn.Put(Key(k), "v" + std::to_string(i)).ok());
    }
    // Reading an already-flushed key must wait for its in-flight batch.
    ASSERT_TRUE(txn.Get(Key("pipe100"), &value).ok());
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, "v0");
    ASSERT_TRUE(txn.Commit().ok());
    EXPECT_GE(txn.batches_sent(), 4u);  // 3 pipelined flushes + final
  }
  pool.Drain();
  BatchRequest scan;
  scan.tenant_id = 10;
  scan.ts = cluster_->Now();
  scan.AddScan(Key("pipe"), Key("pipf"), 0);
  auto resp = cluster_->Send(scan);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->responses[0].rows.size(), 60u);
}

TEST_F(TxnPathTest, PipelineFailureAfterStagingCommitsWhenWritesApplied) {
  // The second pipelined batch applies server-side but its response is
  // lost. The coordinator cannot know whether the writes landed, and a
  // blind rollback could contradict a concurrent recovery that proves the
  // commit condition. The recovery check must settle it: here every
  // declared write IS present, so the txn is committed and Commit succeeds.
  int batch_no = 0;
  Transaction::Sender sender =
      [this, &batch_no](const BatchRequest& req) -> StatusOr<BatchResponse> {
    auto resp = cluster_->Send(req);
    if (resp.ok() && ++batch_no == 2) {
      return Status::IOError("batch response lost after apply");
    }
    return resp;
  };
  storage::ThreadPoolExecutor pool(2);
  TxnOptions opts;
  opts.executor = &pool;
  opts.max_buffered_writes = 2;  // three pipelined intent batches
  Transaction txn(cluster_.get(), 10, 0, sender, opts);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(txn.Put(Key("pf" + std::to_string(i)), "v" + std::to_string(i)).ok());
  }
  const Status s = txn.Commit();
  EXPECT_TRUE(s.ok()) << s.ToString();
  pool.Drain();
  EXPECT_EQ(cluster_->txn_registry()->Get(txn.id())->status, TxnStatus::kCommitted);
  for (int i = 0; i < 6; ++i) {
    BatchRequest req;
    req.tenant_id = 10;
    req.ts = cluster_->Now();
    req.AddGet(Key("pf" + std::to_string(i)));
    auto resp = cluster_->Send(req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_TRUE(resp->responses[0].found) << "pf" << i;
  }
  EXPECT_EQ(CommitCount("parallel"), 1.0);
}

TEST_F(TxnPathTest, PipelineFailureAfterStagingAbortsWhenWritesMissing) {
  // The second pipelined batch is dropped before reaching the cluster: the
  // recovery check finds its declared writes missing, so the txn aborts
  // atomically — the batches that did land are resolved away.
  int batch_no = 0;
  Transaction::Sender sender =
      [this, &batch_no](const BatchRequest& req) -> StatusOr<BatchResponse> {
    if (++batch_no == 2) return Status::IOError("batch dropped before apply");
    return cluster_->Send(req);
  };
  storage::ThreadPoolExecutor pool(2);
  TxnOptions opts;
  opts.executor = &pool;
  opts.max_buffered_writes = 2;
  Transaction txn(cluster_.get(), 10, 0, sender, opts);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(txn.Put(Key("pd" + std::to_string(i)), "v" + std::to_string(i)).ok());
  }
  const Status s = txn.Commit();
  EXPECT_EQ(s.code(), Code::kIOError) << s.ToString();
  EXPECT_TRUE(txn.finalized());
  pool.Drain();
  EXPECT_EQ(cluster_->txn_registry()->Get(txn.id())->status, TxnStatus::kAborted);
  for (int i = 0; i < 6; ++i) {
    BatchRequest req;
    req.tenant_id = 10;
    req.ts = cluster_->Now();
    req.AddGet(Key("pd" + std::to_string(i)));
    auto resp = cluster_->Send(req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_FALSE(resp->responses[0].found) << "pd" << i;
  }
  EXPECT_EQ(CommitCount("parallel"), 0.0);
}

TEST_F(TxnPathTest, OnePhaseReplicationFailureLeavesRecordUncommitted) {
  // Quorum is lost before the 1PC batch replicates: the registry must not
  // claim COMMITTED for a txn that wrote nothing, and the client's
  // rollback must still work.
  cluster_->SetNodeLive(1, false);
  cluster_->SetNodeLive(2, false);
  Transaction txn(cluster_.get(), 10);
  ASSERT_TRUE(txn.Put(Key("q1"), "v").ok());
  const Status s = txn.Commit();
  EXPECT_EQ(s.code(), Code::kUnavailable) << s.ToString();
  EXPECT_EQ(cluster_->txn_registry()->Get(txn.id())->status, TxnStatus::kPending);
  EXPECT_TRUE(txn.Rollback().ok());
  EXPECT_EQ(cluster_->txn_registry()->Get(txn.id())->status, TxnStatus::kAborted);
  cluster_->SetNodeLive(1, true);
  cluster_->SetNodeLive(2, true);
  BatchRequest req;
  req.tenant_id = 10;
  req.ts = cluster_->Now();
  req.AddGet(Key("q1"));
  auto resp = cluster_->Send(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_FALSE(resp->responses[0].found);
  EXPECT_EQ(CommitCount("1pc"), 0.0);
}

// Differential check: the same seeded op script runs against three clusters
// whose transactions use (1) the classic path, (2) buffered writes + 1PC
// only, and (3) the full pipelined/parallel hot path. Every read observation
// and the final committed state must be identical.
std::vector<std::string> RunScript(const TxnOptions& opts) {
  KVClusterOptions copts;
  copts.num_nodes = 3;
  copts.replication_factor = 3;
  KVCluster cluster(copts);
  VELOCE_CHECK_OK(cluster.CreateTenantKeyspace(10));

  std::vector<std::string> log;
  Random rng(0xD1FFE7);
  auto key = [&](uint64_t i) {
    return AddTenantPrefix(10, "k" + std::to_string(10 + i));
  };
  for (int t = 0; t < 25; ++t) {
    Transaction txn(&cluster, 10, 0, nullptr, opts);
    const uint64_t nops = 1 + rng.Uniform(6);
    bool aborted = false;
    for (uint64_t i = 0; i < nops && !aborted; ++i) {
      const uint64_t kind = rng.Uniform(10);
      if (kind < 4) {
        const Status s =
            txn.Put(key(rng.Uniform(24)), "v" + std::to_string(rng.Next() % 1000));
        if (!s.ok()) aborted = true;
      } else if (kind < 5) {
        if (!txn.Delete(key(rng.Uniform(24))).ok()) aborted = true;
      } else if (kind < 8) {
        std::optional<std::string> value;
        const Status s = txn.Get(key(rng.Uniform(24)), &value);
        if (!s.ok()) {
          aborted = true;
        } else {
          log.push_back("get:" + (value.has_value() ? *value : "<miss>"));
        }
      } else {
        uint64_t a = rng.Uniform(24), b = rng.Uniform(24);
        if (a > b) std::swap(a, b);
        std::vector<MvccScanEntry> rows;
        const Status s = txn.Scan(key(a), key(b + 1), 0, &rows);
        if (!s.ok()) {
          aborted = true;
        } else {
          std::string line = "scan:";
          for (const auto& row : rows) line += row.key + "=" + row.value + ",";
          log.push_back(std::move(line));
        }
      }
    }
    if (aborted) {
      (void)txn.Rollback();
      log.push_back("txn:aborted-midway");
    } else if (rng.Uniform(10) < 9) {
      log.push_back("commit:" + std::to_string(static_cast<int>(txn.Commit().code())));
    } else {
      log.push_back("rollback:" +
                    std::to_string(static_cast<int>(txn.Rollback().code())));
    }
  }
  // Final committed state, observed outside any transaction.
  BatchRequest scan;
  scan.tenant_id = 10;
  scan.ts = cluster.Now();
  scan.AddScan(AddTenantPrefix(10, "k"), AddTenantPrefix(10, "l"), 0);
  auto resp = cluster.Send(scan);
  VELOCE_CHECK_OK(resp.status());
  std::string fin = "final:";
  for (const auto& row : resp->responses[0].rows) {
    fin += row.key + "=" + row.value + ",";
  }
  log.push_back(std::move(fin));
  return log;
}

TEST(TxnDifferentialTest, CommitPathsProduceIdenticalState) {
  const std::vector<std::string> classic = RunScript(TxnOptions::Classic());

  TxnOptions buffered_1pc;
  buffered_1pc.pipeline_writes = false;
  buffered_1pc.parallel_commit = false;
  const std::vector<std::string> buffered = RunScript(buffered_1pc);

  storage::ThreadPoolExecutor pool(4);
  TxnOptions fast;
  fast.executor = &pool;
  fast.max_buffered_writes = 4;  // exercise mid-txn pipelined flushes
  const std::vector<std::string> pipelined = RunScript(fast);
  pool.Drain();

  EXPECT_EQ(classic, buffered);
  EXPECT_EQ(classic, pipelined);
}

}  // namespace
}  // namespace veloce::kv
