#include <gtest/gtest.h>

#include <optional>

#include "common/logging.h"
#include "common/random.h"
#include "kv/cluster.h"
#include "kv/keys.h"
#include "kv/mvcc.h"
#include "kv/timestamp.h"
#include "kv/transaction.h"
#include "kv/txn.h"

namespace veloce::kv {
namespace {

// ---------------------------------------------------------------------------
// Timestamps / HLC
// ---------------------------------------------------------------------------

TEST(TimestampTest, Ordering) {
  Timestamp a{100, 0}, b{100, 1}, c{101, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a.Next(), b);
  EXPECT_EQ(b.Prev(), a);
  EXPECT_LT(Timestamp::Min(), a);
  EXPECT_LT(c, Timestamp::Max());
}

TEST(HlcTest, StrictlyMonotonic) {
  ManualClock physical(1000);
  HybridLogicalClock hlc(&physical);
  Timestamp prev = hlc.Now();
  for (int i = 0; i < 100; ++i) {
    const Timestamp t = hlc.Now();
    EXPECT_LT(prev, t);
    prev = t;
  }
  // Logical component grows while wall time is frozen.
  EXPECT_EQ(prev.wall, 1000);
  EXPECT_GT(prev.logical, 0u);
}

TEST(HlcTest, AdvancesWithPhysicalClock) {
  ManualClock physical(1000);
  HybridLogicalClock hlc(&physical);
  hlc.Now();
  physical.Advance(500);
  const Timestamp t = hlc.Now();
  EXPECT_EQ(t.wall, 1500);
  EXPECT_EQ(t.logical, 0u);
}

TEST(HlcTest, UpdateFoldsRemoteTimestamps) {
  ManualClock physical(1000);
  HybridLogicalClock hlc(&physical);
  hlc.Update({5000, 7});
  const Timestamp t = hlc.Now();
  EXPECT_GT(t, (Timestamp{5000, 7}));
}

// ---------------------------------------------------------------------------
// MVCC key encoding
// ---------------------------------------------------------------------------

TEST(MvccKeyTest, RoundTrip) {
  const std::string encoded = EncodeMvccKey("table/row1", {123456, 7});
  std::string user_key;
  Timestamp ts;
  bool is_intent = true;
  ASSERT_TRUE(DecodeMvccKey(encoded, &user_key, &ts, &is_intent));
  EXPECT_EQ(user_key, "table/row1");
  EXPECT_EQ(ts.wall, 123456);
  EXPECT_EQ(ts.logical, 7u);
  EXPECT_FALSE(is_intent);
}

TEST(MvccKeyTest, IntentSlotSortsFirst) {
  const std::string intent = EncodeIntentKey("key");
  const std::string newest = EncodeMvccKey("key", Timestamp::Max().Prev());
  const std::string old_version = EncodeMvccKey("key", {1, 0});
  EXPECT_LT(intent, newest);
  EXPECT_LT(newest, old_version);  // newer versions sort before older
}

TEST(MvccKeyTest, VersionsGroupedByUserKey) {
  // Every slot of "a" sorts before any slot of "b".
  EXPECT_LT(EncodeMvccKey("a", {1, 0}), EncodeIntentKey("b"));
  EXPECT_LT(EncodeIntentKey("a"), EncodeMvccKey("a", Timestamp::Max().Prev()));
  // Keys with embedded zero bytes don't interleave.
  const std::string k1("a", 1), k2("a\x00", 2);
  EXPECT_LT(EncodeMvccKey(k1, {1, 0}), EncodeIntentKey(k2));
}

// ---------------------------------------------------------------------------
// MVCC operations on a raw engine
// ---------------------------------------------------------------------------

class MvccTest : public ::testing::Test {
 protected:
  void SetUp() override { engine_ = std::move(storage::Engine::Open({})).value(); }

  void PutValue(Slice key, Timestamp ts, Slice value) {
    storage::WriteBatch batch;
    MvccPutValue(&batch, key, ts, value);
    ASSERT_TRUE(engine_->Write(batch).ok());
  }
  void PutTombstone(Slice key, Timestamp ts) {
    storage::WriteBatch batch;
    MvccPutTombstone(&batch, key, ts);
    ASSERT_TRUE(engine_->Write(batch).ok());
  }
  void PutIntent(Slice key, TxnId txn, Timestamp ts, Slice value) {
    storage::WriteBatch batch;
    MvccPutIntent(&batch, key, txn, ts, false, value);
    ASSERT_TRUE(engine_->Write(batch).ok());
  }

  std::unique_ptr<storage::Engine> engine_;
};

TEST_F(MvccTest, ReadsAtTimestamp) {
  PutValue("k", {10, 0}, "v10");
  PutValue("k", {20, 0}, "v20");
  auto r5 = *MvccGet(engine_.get(), "k", {5, 0});
  EXPECT_FALSE(r5.value.has_value());
  auto r15 = *MvccGet(engine_.get(), "k", {15, 0});
  ASSERT_TRUE(r15.value.has_value());
  EXPECT_EQ(*r15.value, "v10");
  auto r25 = *MvccGet(engine_.get(), "k", {25, 0});
  ASSERT_TRUE(r25.value.has_value());
  EXPECT_EQ(*r25.value, "v20");
  // Reading exactly at the write timestamp sees the write.
  auto r20 = *MvccGet(engine_.get(), "k", {20, 0});
  ASSERT_TRUE(r20.value.has_value());
  EXPECT_EQ(*r20.value, "v20");
}

TEST_F(MvccTest, TombstoneHidesValue) {
  PutValue("k", {10, 0}, "v");
  PutTombstone("k", {20, 0});
  auto r = *MvccGet(engine_.get(), "k", {30, 0});
  EXPECT_FALSE(r.value.has_value());
  EXPECT_FALSE(r.conflict.has_value());
  // Time travel below the tombstone still sees the value.
  auto old = *MvccGet(engine_.get(), "k", {15, 0});
  ASSERT_TRUE(old.value.has_value());
}

TEST_F(MvccTest, ForeignIntentBelowReadTsConflicts) {
  PutValue("k", {10, 0}, "committed");
  PutIntent("k", /*txn=*/42, {20, 0}, "provisional");
  auto r = *MvccGet(engine_.get(), "k", {30, 0});
  ASSERT_TRUE(r.conflict.has_value());
  EXPECT_EQ(r.conflict->txn_id, 42u);
  EXPECT_EQ(r.conflict->ts.wall, 20);
}

TEST_F(MvccTest, ForeignIntentAboveReadTsInvisible) {
  PutValue("k", {10, 0}, "committed");
  PutIntent("k", 42, {100, 0}, "future");
  auto r = *MvccGet(engine_.get(), "k", {30, 0});
  EXPECT_FALSE(r.conflict.has_value());
  ASSERT_TRUE(r.value.has_value());
  EXPECT_EQ(*r.value, "committed");
}

TEST_F(MvccTest, OwnIntentReadable) {
  PutValue("k", {10, 0}, "old");
  PutIntent("k", 42, {20, 0}, "mine");
  auto r = *MvccGet(engine_.get(), "k", {30, 0}, /*own_txn=*/42);
  EXPECT_FALSE(r.conflict.has_value());
  ASSERT_TRUE(r.value.has_value());
  EXPECT_EQ(*r.value, "mine");
}

TEST_F(MvccTest, ResolveIntentCommit) {
  PutIntent("k", 42, {20, 0}, "value");
  ASSERT_TRUE(MvccResolveIntent(engine_.get(), "k", 42, true, {25, 0}).ok());
  auto r = *MvccGet(engine_.get(), "k", {30, 0});
  ASSERT_TRUE(r.value.has_value());
  EXPECT_EQ(*r.value, "value");
  // The committed version is at the commit timestamp, not the intent's.
  auto r22 = *MvccGet(engine_.get(), "k", {22, 0});
  EXPECT_FALSE(r22.value.has_value());
  auto intent = *MvccGetIntent(engine_.get(), "k");
  EXPECT_FALSE(intent.has_value());
}

TEST_F(MvccTest, ResolveIntentAbort) {
  PutValue("k", {10, 0}, "old");
  PutIntent("k", 42, {20, 0}, "aborted-write");
  ASSERT_TRUE(MvccResolveIntent(engine_.get(), "k", 42, false, {}).ok());
  auto r = *MvccGet(engine_.get(), "k", {30, 0});
  ASSERT_TRUE(r.value.has_value());
  EXPECT_EQ(*r.value, "old");
}

TEST_F(MvccTest, ResolveWrongTxnIsNoop) {
  PutIntent("k", 42, {20, 0}, "value");
  ASSERT_TRUE(MvccResolveIntent(engine_.get(), "k", 99, true, {25, 0}).ok());
  auto intent = *MvccGetIntent(engine_.get(), "k");
  ASSERT_TRUE(intent.has_value());
  EXPECT_EQ(intent->txn_id, 42u);
}

TEST_F(MvccTest, UpdateIntentTimestamp) {
  PutIntent("k", 42, {20, 0}, "value");
  ASSERT_TRUE(MvccUpdateIntentTimestamp(engine_.get(), "k", 42, {50, 0}).ok());
  auto r = *MvccGet(engine_.get(), "k", {30, 0});
  EXPECT_FALSE(r.conflict.has_value()) << "pushed intent should be invisible";
  auto intent = *MvccGetIntent(engine_.get(), "k");
  ASSERT_TRUE(intent.has_value());
  EXPECT_EQ(intent->ts.wall, 50);
}

TEST_F(MvccTest, ScanVisibleVersions) {
  PutValue("a", {10, 0}, "1");
  PutValue("b", {10, 0}, "2");
  PutValue("b", {20, 0}, "2new");
  PutTombstone("c", {15, 0});
  PutValue("c", {5, 0}, "3");
  PutValue("d", {10, 0}, "4");
  auto res = *MvccScan(engine_.get(), "a", "e", {30, 0}, 0);
  ASSERT_EQ(res.entries.size(), 3u);
  EXPECT_EQ(res.entries[0].key, "a");
  EXPECT_EQ(res.entries[1].value, "2new");
  EXPECT_EQ(res.entries[2].key, "d");
}

TEST_F(MvccTest, ScanHonorsLimitAndResume) {
  for (int i = 0; i < 10; ++i) {
    PutValue("k" + std::to_string(i), {10, 0}, "v");
  }
  auto res = *MvccScan(engine_.get(), "k0", "k9\xff", {30, 0}, 4);
  EXPECT_EQ(res.entries.size(), 4u);
  EXPECT_EQ(res.resume_key, "k4");
  auto res2 = *MvccScan(engine_.get(), res.resume_key, "k9\xff", {30, 0}, 0);
  EXPECT_EQ(res2.entries.size(), 6u);
}

TEST_F(MvccTest, ScanStopsAtConflict) {
  PutValue("a", {10, 0}, "1");
  PutIntent("b", 42, {10, 0}, "locked");
  PutValue("c", {10, 0}, "3");
  auto res = *MvccScan(engine_.get(), "a", "z", {30, 0}, 0);
  ASSERT_TRUE(res.conflict.has_value());
  EXPECT_EQ(res.conflict->txn_id, 42u);
}

TEST_F(MvccTest, AnyNewerVersionsProbe) {
  PutValue("k1", {10, 0}, "v");
  PutValue("k2", {50, 0}, "v");
  EXPECT_FALSE(*MvccAnyNewerVersions(engine_.get(), "k", "l", {50, 0}, {100, 0}));
  EXPECT_TRUE(*MvccAnyNewerVersions(engine_.get(), "k", "l", {20, 0}, {60, 0}));
  EXPECT_FALSE(*MvccAnyNewerVersions(engine_.get(), "k", "l", {60, 0}, {200, 0}));
}

// ---------------------------------------------------------------------------
// TxnRegistry
// ---------------------------------------------------------------------------

class TxnRegistryTest : public ::testing::Test {
 protected:
  TxnRegistryTest() : clock_(1000), registry_(&clock_) {}
  ManualClock clock_;
  TxnRegistry registry_;
};

TEST_F(TxnRegistryTest, BeginCommit) {
  TxnRecord rec = registry_.Begin({100, 0}, 0);
  EXPECT_EQ(rec.status, TxnStatus::kPending);
  ASSERT_TRUE(registry_.Commit(rec.id, {110, 0}).ok());
  auto got = *registry_.Get(rec.id);
  EXPECT_EQ(got.status, TxnStatus::kCommitted);
  EXPECT_EQ(got.write_ts.wall, 110);
}

TEST_F(TxnRegistryTest, CommitAfterAbortFails) {
  TxnRecord rec = registry_.Begin({100, 0}, 0);
  ASSERT_TRUE(registry_.Abort(rec.id).ok());
  EXPECT_EQ(registry_.Commit(rec.id, {110, 0}).code(), Code::kTransactionAborted);
}

TEST_F(TxnRegistryTest, PushLosesAgainstHealthyEqualPriority) {
  TxnRecord rec = registry_.Begin({100, 0}, 0);
  PushResult pr = registry_.Push(rec.id, 0, TxnRegistry::PushType::kAbort, {200, 0});
  EXPECT_FALSE(pr.pushed);
  EXPECT_EQ(pr.pushee_status, TxnStatus::kPending);
}

TEST_F(TxnRegistryTest, HigherPriorityPusherAborts) {
  TxnRecord rec = registry_.Begin({100, 0}, 0);
  PushResult pr = registry_.Push(rec.id, 10, TxnRegistry::PushType::kAbort, {200, 0});
  EXPECT_TRUE(pr.pushed);
  EXPECT_EQ(pr.pushee_status, TxnStatus::kAborted);
}

TEST_F(TxnRegistryTest, TimestampPushMovesWriteTs) {
  TxnRecord rec = registry_.Begin({100, 0}, 0);
  PushResult pr =
      registry_.Push(rec.id, 10, TxnRegistry::PushType::kTimestamp, {200, 0});
  EXPECT_TRUE(pr.pushed);
  EXPECT_EQ(pr.pushee_status, TxnStatus::kPending);
  auto got = *registry_.Get(rec.id);
  EXPECT_GT(got.write_ts, (Timestamp{200, 0}));
  EXPECT_EQ(got.status, TxnStatus::kPending);
}

TEST_F(TxnRegistryTest, ExpiredTxnAbortable) {
  TxnRecord rec = registry_.Begin({100, 0}, 0);
  clock_.Advance(TxnRegistry::kExpiration + kSecond);
  PushResult pr = registry_.Push(rec.id, 0, TxnRegistry::PushType::kAbort, {200, 0});
  EXPECT_TRUE(pr.pushed);
  EXPECT_EQ(pr.pushee_status, TxnStatus::kAborted);
}

TEST_F(TxnRegistryTest, HeartbeatPreventsExpiration) {
  TxnRecord rec = registry_.Begin({100, 0}, 0);
  for (int i = 0; i < 5; ++i) {
    clock_.Advance(TxnRegistry::kExpiration / 2);
    ASSERT_TRUE(registry_.Heartbeat(rec.id).ok());
  }
  PushResult pr = registry_.Push(rec.id, 0, TxnRegistry::PushType::kAbort, {200, 0});
  EXPECT_FALSE(pr.pushed);
}

TEST_F(TxnRegistryTest, PushUnknownTxnTreatedAborted) {
  PushResult pr = registry_.Push(9999, 0, TxnRegistry::PushType::kAbort, {200, 0});
  EXPECT_TRUE(pr.pushed);
  EXPECT_EQ(pr.pushee_status, TxnStatus::kAborted);
}

TEST_F(TxnRegistryTest, GarbageCollectRemovesOldFinalized) {
  TxnRecord a = registry_.Begin({100, 0}, 0);
  TxnRecord b = registry_.Begin({100, 0}, 0);
  ASSERT_TRUE(registry_.Commit(a.id, {110, 0}).ok());
  clock_.Advance(TxnRegistry::kExpiration * 2);
  const size_t removed = registry_.GarbageCollect();
  EXPECT_EQ(removed, 1u);
  EXPECT_TRUE(registry_.Get(a.id).status().IsNotFound());
  EXPECT_TRUE(registry_.Get(b.id).ok());  // pending records are kept
}

// ---------------------------------------------------------------------------
// Batch encode/decode
// ---------------------------------------------------------------------------

TEST(BatchCodecTest, RequestRoundTrip) {
  BatchRequest req;
  req.tenant_id = 7;
  req.ts = {123, 4};
  req.txn_id = 99;
  req.txn_priority = -3;
  req.AddGet("key1");
  req.AddPut("key2", "value2");
  req.AddDelete("key3");
  req.AddScan("a", "z", 100);

  auto decoded = *BatchRequest::Decode(req.Encode());
  EXPECT_EQ(decoded.tenant_id, 7u);
  EXPECT_EQ(decoded.ts, req.ts);
  EXPECT_EQ(decoded.txn_id, 99u);
  EXPECT_EQ(decoded.txn_priority, -3);
  ASSERT_EQ(decoded.requests.size(), 4u);
  EXPECT_EQ(decoded.requests[0].type, RequestType::kGet);
  EXPECT_EQ(decoded.requests[1].value, "value2");
  EXPECT_EQ(decoded.requests[3].limit, 100u);
  EXPECT_EQ(decoded.PayloadBytes(), req.PayloadBytes());
}

TEST(BatchCodecTest, ResponseRoundTrip) {
  BatchResponse resp;
  resp.now = {55, 1};
  ResponseUnion r1;
  r1.found = true;
  r1.value = "hello";
  ResponseUnion r2;
  r2.rows.push_back({"k1", "v1"});
  r2.rows.push_back({"k2", "v2"});
  r2.resume_key = "k3";
  resp.responses = {r1, r2};

  auto decoded = *BatchResponse::Decode(resp.Encode());
  ASSERT_EQ(decoded.responses.size(), 2u);
  EXPECT_TRUE(decoded.responses[0].found);
  EXPECT_EQ(decoded.responses[0].value, "hello");
  ASSERT_EQ(decoded.responses[1].rows.size(), 2u);
  EXPECT_EQ(decoded.responses[1].resume_key, "k3");
  EXPECT_EQ(decoded.PayloadBytes(), resp.PayloadBytes());
}

TEST(BatchCodecTest, DecodeGarbageFails) {
  EXPECT_FALSE(BatchRequest::Decode("short").ok());
  EXPECT_FALSE(BatchResponse::Decode("x").ok());
}

// ---------------------------------------------------------------------------
// Tenant key helpers
// ---------------------------------------------------------------------------

TEST(TenantKeysTest, PrefixesAreDisjointAndOrdered) {
  const std::string p1 = TenantPrefix(1), p2 = TenantPrefix(2);
  EXPECT_LT(p1, p2);
  EXPECT_EQ(TenantPrefixEnd(1), p2);  // adjacent ids are adjacent spans
  EXPECT_TRUE(KeyInTenantKeyspace(AddTenantPrefix(1, "table/1"), 1));
  EXPECT_FALSE(KeyInTenantKeyspace(AddTenantPrefix(1, "table/1"), 2));
}

TEST(TenantKeysTest, AddStripRoundTrip) {
  const std::string prefixed = AddTenantPrefix(42, "some/key");
  EXPECT_EQ(*DecodeTenantFromKey(prefixed), 42u);
  EXPECT_EQ(*StripTenantPrefix(42, prefixed), "some/key");
  EXPECT_TRUE(StripTenantPrefix(43, prefixed).status().IsUnauthorized());
}

// ---------------------------------------------------------------------------
// KVCluster end-to-end
// ---------------------------------------------------------------------------

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() {
    KVClusterOptions opts;
    opts.num_nodes = 3;
    opts.replication_factor = 3;
    cluster_ = std::make_unique<KVCluster>(opts);
    VELOCE_CHECK_OK(cluster_->CreateTenantKeyspace(10));
    VELOCE_CHECK_OK(cluster_->CreateTenantKeyspace(11));
  }

  BatchRequest Req(TenantId tenant) {
    BatchRequest req;
    req.tenant_id = tenant;
    req.ts = cluster_->Now();
    return req;
  }

  std::string Key(TenantId tenant, const std::string& k) {
    return AddTenantPrefix(tenant, k);
  }

  std::unique_ptr<KVCluster> cluster_;
};

TEST_F(ClusterTest, PutThenGet) {
  BatchRequest put = Req(10);
  put.AddPut(Key(10, "row1"), "hello");
  ASSERT_TRUE(cluster_->Send(put).ok());

  BatchRequest get = Req(10);
  get.AddGet(Key(10, "row1"));
  auto resp = *cluster_->Send(get);
  ASSERT_TRUE(resp.responses[0].found);
  EXPECT_EQ(resp.responses[0].value, "hello");
}

TEST_F(ClusterTest, TenantCannotTouchForeignKeyspace) {
  BatchRequest put = Req(10);
  put.AddPut(Key(11, "row1"), "stolen");
  EXPECT_TRUE(cluster_->Send(put).status().IsUnauthorized());

  BatchRequest get = Req(10);
  get.AddGet(Key(11, "row1"));
  EXPECT_TRUE(cluster_->Send(get).status().IsUnauthorized());

  BatchRequest scan = Req(10);
  scan.AddScan(TenantPrefix(10), TenantPrefixEnd(11), 0);
  EXPECT_TRUE(cluster_->Send(scan).status().IsUnauthorized());
}

TEST_F(ClusterTest, SystemTenantSeesEverything) {
  BatchRequest put = Req(10);
  put.AddPut(Key(10, "row1"), "data");
  ASSERT_TRUE(cluster_->Send(put).ok());

  BatchRequest get = Req(kSystemTenantId);
  get.AddGet(Key(10, "row1"));
  auto resp = *cluster_->Send(get);
  EXPECT_TRUE(resp.responses[0].found);
}

TEST_F(ClusterTest, TenantsAreIsolatedLogically) {
  BatchRequest p10 = Req(10);
  p10.AddPut(Key(10, "same"), "ten");
  ASSERT_TRUE(cluster_->Send(p10).ok());
  BatchRequest p11 = Req(11);
  p11.AddPut(Key(11, "same"), "eleven");
  ASSERT_TRUE(cluster_->Send(p11).ok());

  BatchRequest g10 = Req(10);
  g10.AddGet(Key(10, "same"));
  EXPECT_EQ((*cluster_->Send(g10)).responses[0].value, "ten");
  BatchRequest g11 = Req(11);
  g11.AddGet(Key(11, "same"));
  EXPECT_EQ((*cluster_->Send(g11)).responses[0].value, "eleven");
}

TEST_F(ClusterTest, RangesNeverSpanTenants) {
  for (const auto& desc : cluster_->Ranges()) {
    if (desc.tenant_id == 0) continue;
    EXPECT_GE(Slice(desc.start_key), Slice(TenantPrefix(desc.tenant_id)));
    EXPECT_LE(Slice(desc.end_key), Slice(TenantPrefixEnd(desc.tenant_id)));
  }
  // Tenant creation produced at least one dedicated range per tenant.
  int tenant10 = 0, tenant11 = 0;
  for (const auto& desc : cluster_->Ranges()) {
    if (desc.tenant_id == 10) ++tenant10;
    if (desc.tenant_id == 11) ++tenant11;
  }
  EXPECT_GE(tenant10, 1);
  EXPECT_GE(tenant11, 1);
}

TEST_F(ClusterTest, ScanWithinTenant) {
  for (int i = 0; i < 20; ++i) {
    BatchRequest put = Req(10);
    char name[16];
    std::snprintf(name, sizeof(name), "row%02d", i);
    put.AddPut(Key(10, name), "v" + std::to_string(i));
    ASSERT_TRUE(cluster_->Send(put).ok());
  }
  BatchRequest scan = Req(10);
  scan.AddScan(Key(10, "row05"), Key(10, "row15"), 0);
  auto resp = *cluster_->Send(scan);
  EXPECT_EQ(resp.responses[0].rows.size(), 10u);
  EXPECT_EQ(resp.responses[0].rows[0].value, "v5");
}

TEST_F(ClusterTest, ScanAcrossRangeSplits) {
  for (int i = 0; i < 30; ++i) {
    BatchRequest put = Req(10);
    char name[16];
    std::snprintf(name, sizeof(name), "row%02d", i);
    put.AddPut(Key(10, name), "v");
    ASSERT_TRUE(cluster_->Send(put).ok());
  }
  ASSERT_TRUE(cluster_->SplitRange(Key(10, "row10")).ok());
  ASSERT_TRUE(cluster_->SplitRange(Key(10, "row20")).ok());
  BatchRequest scan = Req(10);
  scan.AddScan(Key(10, "row"), Key(10, "row99"), 0);
  auto resp = *cluster_->Send(scan);
  EXPECT_EQ(resp.responses[0].rows.size(), 30u);
}

TEST_F(ClusterTest, ScanLimitAcrossRanges) {
  for (int i = 0; i < 30; ++i) {
    BatchRequest put = Req(10);
    char name[16];
    std::snprintf(name, sizeof(name), "row%02d", i);
    put.AddPut(Key(10, name), "v");
    ASSERT_TRUE(cluster_->Send(put).ok());
  }
  ASSERT_TRUE(cluster_->SplitRange(Key(10, "row10")).ok());
  BatchRequest scan = Req(10);
  scan.AddScan(Key(10, "row"), Key(10, "row99"), 15);
  auto resp = *cluster_->Send(scan);
  EXPECT_EQ(resp.responses[0].rows.size(), 15u);
  EXPECT_FALSE(resp.responses[0].resume_key.empty());
}

TEST_F(ClusterTest, ReplicationReachesAllNodes) {
  BatchRequest put = Req(10);
  put.AddPut(Key(10, "replicated"), "value");
  ASSERT_TRUE(cluster_->Send(put).ok());
  // With RF=3 on 3 nodes, every engine holds the data.
  for (size_t n = 0; n < cluster_->num_nodes(); ++n) {
    auto res = *MvccGet(cluster_->node(static_cast<NodeId>(n))->engine(),
                        Key(10, "replicated"), Timestamp::Max().Prev());
    EXPECT_TRUE(res.value.has_value()) << "node " << n;
  }
}

TEST_F(ClusterTest, LosesQuorumWhenMajorityDown) {
  cluster_->SetNodeLive(1, false);
  cluster_->SetNodeLive(2, false);
  BatchRequest put = Req(10);
  put.AddPut(Key(10, "k"), "v");
  EXPECT_EQ(cluster_->Send(put).status().code(), Code::kUnavailable);
}

TEST_F(ClusterTest, LeaseShedsToLiveReplica) {
  const auto ranges = cluster_->Ranges();
  cluster_->SetNodeLive(0, false);
  for (const auto& desc : cluster_->Ranges()) {
    EXPECT_NE(desc.leaseholder, 0u) << "range " << desc.range_id;
  }
  // Still serving with one node down (quorum of 2/3).
  BatchRequest put = Req(10);
  put.AddPut(Key(10, "after-failure"), "v");
  EXPECT_TRUE(cluster_->Send(put).ok());
  (void)ranges;
}

TEST_F(ClusterTest, BalanceLeasesSpreadsLoad) {
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(cluster_->SplitRange(Key(10, "split" + std::to_string(i))).ok());
  }
  cluster_->BalanceLeases();
  int with_leases = 0;
  for (size_t n = 0; n < cluster_->num_nodes(); ++n) {
    if (cluster_->CountLeases(static_cast<NodeId>(n)) > 0) ++with_leases;
  }
  EXPECT_EQ(with_leases, 3);
}

TEST_F(ClusterTest, SizeTriggeredSplits) {
  KVClusterOptions opts;
  opts.num_nodes = 3;
  opts.range_split_bytes = 8 << 10;
  KVCluster small(opts);
  ASSERT_TRUE(small.CreateTenantKeyspace(10).ok());
  Random rnd(3);
  for (int i = 0; i < 200; ++i) {
    BatchRequest put;
    put.tenant_id = 10;
    put.ts = small.Now();
    put.AddPut(AddTenantPrefix(10, "key" + std::to_string(i)), rnd.String(200));
    ASSERT_TRUE(small.Send(put).ok());
  }
  const int splits = *small.MaybeSplitRanges();
  EXPECT_GT(splits, 0);
  // Data remains intact after splits.
  BatchRequest scan;
  scan.tenant_id = 10;
  scan.ts = small.Now();
  scan.AddScan(TenantPrefix(10), TenantPrefixEnd(10), 0);
  auto resp = *small.Send(scan);
  EXPECT_EQ(resp.responses[0].rows.size(), 200u);
}

TEST_F(ClusterTest, NodeStatsCountBatches) {
  BatchRequest put = Req(10);
  put.AddPut(Key(10, "a"), "1");
  put.AddPut(Key(10, "b"), "2");
  ASSERT_TRUE(cluster_->Send(put).ok());
  BatchRequest get = Req(10);
  get.AddGet(Key(10, "a"));
  ASSERT_TRUE(cluster_->Send(get).ok());

  uint64_t write_batches = 0, write_requests = 0, read_batches = 0;
  for (size_t n = 0; n < cluster_->num_nodes(); ++n) {
    const auto& s = cluster_->node(static_cast<NodeId>(n))->stats();
    write_batches += s.write_batches;
    write_requests += s.write_requests;
    read_batches += s.read_batches;
  }
  EXPECT_EQ(write_batches, 1u);
  EXPECT_EQ(write_requests, 2u);
  EXPECT_EQ(read_batches, 1u);
}

// ---------------------------------------------------------------------------
// Transactions end-to-end
// ---------------------------------------------------------------------------

class TransactionTest : public ClusterTest {};

TEST_F(TransactionTest, CommitMakesWritesVisible) {
  {
    Transaction txn(cluster_.get(), 10);
    ASSERT_TRUE(txn.Put(Key(10, "t1"), "v1").ok());
    ASSERT_TRUE(txn.Put(Key(10, "t2"), "v2").ok());
    // Not yet visible to others.
    BatchRequest get = Req(10);
    get.AddGet(Key(10, "t1"));
    auto resp = *cluster_->Send(get);
    EXPECT_FALSE(resp.responses[0].found);
    ASSERT_TRUE(txn.Commit().ok());
  }
  BatchRequest get = Req(10);
  get.AddGet(Key(10, "t1"));
  auto resp = *cluster_->Send(get);
  EXPECT_TRUE(resp.responses[0].found);
}

TEST_F(TransactionTest, RollbackDiscardsWrites) {
  {
    Transaction txn(cluster_.get(), 10);
    ASSERT_TRUE(txn.Put(Key(10, "gone"), "v").ok());
    ASSERT_TRUE(txn.Rollback().ok());
  }
  BatchRequest get = Req(10);
  get.AddGet(Key(10, "gone"));
  EXPECT_FALSE((*cluster_->Send(get)).responses[0].found);
}

TEST_F(TransactionTest, ReadYourOwnWrites) {
  Transaction txn(cluster_.get(), 10);
  ASSERT_TRUE(txn.Put(Key(10, "k"), "mine").ok());
  std::optional<std::string> value;
  ASSERT_TRUE(txn.Get(Key(10, "k"), &value).ok());
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "mine");
  ASSERT_TRUE(txn.Rollback().ok());
}

TEST_F(TransactionTest, DestructorRollsBack) {
  {
    Transaction txn(cluster_.get(), 10);
    ASSERT_TRUE(txn.Put(Key(10, "leak"), "v").ok());
    // No commit: destructor must clean up the intent.
  }
  BatchRequest get = Req(10);
  get.AddGet(Key(10, "leak"));
  EXPECT_FALSE((*cluster_->Send(get)).responses[0].found);
  // And the intent is gone from the engines.
  auto intent = *MvccGetIntent(cluster_->node(0)->engine(), Key(10, "leak"));
  EXPECT_FALSE(intent.has_value());
}

TEST_F(TransactionTest, WriteWriteConflictBlocksSecondWriter) {
  Transaction t1(cluster_.get(), 10);
  ASSERT_TRUE(t1.Put(Key(10, "contended"), "t1").ok());
  // Buffered writes conflict only once flushed as intents.
  ASSERT_TRUE(t1.Flush().ok());
  Transaction t2(cluster_.get(), 10);
  // Equal priority, healthy t1: t2's flushed write must fail with an
  // intent error.
  ASSERT_TRUE(t2.Put(Key(10, "contended"), "t2").ok());
  EXPECT_TRUE(t2.Flush().IsWriteIntentError());
  ASSERT_TRUE(t1.Commit().ok());
  // After t1 finishes, t2 can proceed.
  ASSERT_TRUE(t2.Put(Key(10, "contended"), "t2").ok());
  ASSERT_TRUE(t2.Commit().ok());
  BatchRequest get = Req(10);
  get.AddGet(Key(10, "contended"));
  EXPECT_EQ((*cluster_->Send(get)).responses[0].value, "t2");
}

TEST_F(TransactionTest, HighPriorityWriterAbortsLowPriority) {
  Transaction low(cluster_.get(), 10, /*priority=*/0);
  ASSERT_TRUE(low.Put(Key(10, "k"), "low").ok());
  ASSERT_TRUE(low.Flush().ok());
  Transaction high(cluster_.get(), 10, /*priority=*/100);
  ASSERT_TRUE(high.Put(Key(10, "k"), "high").ok());
  ASSERT_TRUE(high.Flush().ok());
  ASSERT_TRUE(high.Commit().ok());
  EXPECT_EQ(low.Commit().code(), Code::kTransactionAborted);
  BatchRequest get = Req(10);
  get.AddGet(Key(10, "k"));
  EXPECT_EQ((*cluster_->Send(get)).responses[0].value, "high");
}

TEST_F(TransactionTest, ReaderPushesWriterTimestamp) {
  Transaction writer(cluster_.get(), 10);
  ASSERT_TRUE(writer.Put(Key(10, "k"), "pending").ok());
  // A non-transactional read at a later timestamp pushes the writer's
  // timestamp instead of blocking, and sees the key as absent.
  BatchRequest get = Req(10);
  get.AddGet(Key(10, "k"));
  auto resp = *cluster_->Send(get);
  EXPECT_FALSE(resp.responses[0].found);
  // The writer can still commit (at a pushed timestamp).
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_GT(writer.commit_ts(), get.ts);
}

TEST_F(TransactionTest, WriteBelowReadTimestampGetsBumped) {
  // Someone reads key k at ts T.
  BatchRequest get = Req(10);
  get.AddGet(Key(10, "k"));
  ASSERT_TRUE(cluster_->Send(get).ok());
  // A later non-txn write at a timestamp <= T must commit above T.
  BatchRequest put;
  put.tenant_id = 10;
  put.ts = get.ts.Prev();
  put.AddPut(Key(10, "k"), "v");
  auto resp = *cluster_->Send(put);
  EXPECT_GT(resp.bumped_write_ts, get.ts);
}

TEST_F(TransactionTest, RefreshAllowsCommitWhenReadSetUnchanged) {
  Transaction txn(cluster_.get(), 10);
  std::optional<std::string> value;
  ASSERT_TRUE(txn.Get(Key(10, "read-key"), &value).ok());
  // Force a push: another client reads txn's write target above read_ts.
  BatchRequest get = Req(10);
  get.AddGet(Key(10, "write-key"));
  ASSERT_TRUE(cluster_->Send(get).ok());
  ASSERT_TRUE(txn.Put(Key(10, "write-key"), "v").ok());
  // Nothing in the read set changed: refresh passes and the commit lands
  // above the timestamp the txn started reading at.
  const Timestamp initial_read_ts = txn.read_ts();
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_GT(txn.commit_ts(), initial_read_ts);
}

TEST_F(TransactionTest, RefreshFailsWhenReadSetChanged) {
  Transaction txn(cluster_.get(), 10);
  std::optional<std::string> value;
  ASSERT_TRUE(txn.Get(Key(10, "watched"), &value).ok());
  // Concurrent writer commits to the watched key above txn.read_ts.
  BatchRequest put = Req(10);
  put.AddPut(Key(10, "watched"), "changed");
  ASSERT_TRUE(cluster_->Send(put).ok());
  // Force txn's write timestamp above read_ts via a read of its target.
  BatchRequest get = Req(10);
  get.AddGet(Key(10, "target"));
  ASSERT_TRUE(cluster_->Send(get).ok());
  ASSERT_TRUE(txn.Put(Key(10, "target"), "v").ok());
  EXPECT_EQ(txn.Commit().code(), Code::kTransactionRetry);
}

TEST_F(TransactionTest, SerializabilityUnderConcurrentCounters) {
  // Two txns increment a counter; with W-W conflict handling one must
  // observe the other or fail; the final value must be exactly 2.
  BatchRequest init = Req(10);
  init.AddPut(Key(10, "counter"), "0");
  ASSERT_TRUE(cluster_->Send(init).ok());

  int committed = 0;
  for (int attempt = 0; attempt < 2; ++attempt) {
    Transaction txn(cluster_.get(), 10);
    std::optional<std::string> value;
    ASSERT_TRUE(txn.Get(Key(10, "counter"), &value).ok());
    const int cur = std::stoi(value.value_or("0"));
    ASSERT_TRUE(txn.Put(Key(10, "counter"), std::to_string(cur + 1)).ok());
    if (txn.Commit().ok()) ++committed;
  }
  ASSERT_EQ(committed, 2);
  BatchRequest get = Req(10);
  get.AddGet(Key(10, "counter"));
  EXPECT_EQ((*cluster_->Send(get)).responses[0].value, "2");
}

}  // namespace
}  // namespace veloce::kv
