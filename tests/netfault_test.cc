#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/codec.h"
#include "common/logging.h"
#include "common/random.h"
#include "kv/cluster.h"
#include "kv/keys.h"
#include "kv/linearizability.h"
#include "kv/mvcc.h"
#include "obs/metrics.h"
#include "sim/faulty_mesh.h"
#include "storage/fault_env.h"
#include "tests/range_storm_harness.h"

namespace veloce::kv {
namespace {

uint64_t EnvOr(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  return v == nullptr ? def : std::strtoull(v, nullptr, 0);
}

constexpr TenantId kTenant = 10;

std::string K(const std::string& k) { return AddTenantPrefix(kTenant, k); }

StatusOr<BatchResponse> PutKV(KVCluster* cluster, const std::string& key,
                              const std::string& value) {
  BatchRequest req;
  req.tenant_id = kTenant;
  req.ts = cluster->Now();
  req.AddPut(K(key), value);
  return cluster->Send(req);
}

StatusOr<BatchResponse> GetKV(KVCluster* cluster, const std::string& key) {
  BatchRequest req;
  req.tenant_id = kTenant;
  req.ts = cluster->Now();
  req.AddGet(K(key));
  return cluster->Send(req);
}

/// Full engine-level (key, value) contents of one range's keyspan —
/// includes MVCC versions and intent slots, so two replicas compare
/// byte-identical only if they truly converged.
std::vector<std::pair<std::string, std::string>> RangeSpan(
    storage::Engine* engine, const RangeDescriptor& desc) {
  const std::string lower = EncodeIntentKey(desc.start_key);
  std::string upper;
  if (!desc.end_key.empty()) OrderedPutString(&upper, desc.end_key);
  std::vector<std::pair<std::string, std::string>> out;
  auto it = engine->NewBoundedIterator(lower, upper);
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    out.emplace_back(it->key().ToString(), it->value().ToString());
  }
  return out;
}

/// Asserts every replica of every range holding tenant data is
/// byte-identical to the leaseholder over the range's engine keyspan.
void ExpectReplicasConverged(KVCluster* cluster) {
  for (const RangeDescriptor& desc : cluster->Ranges()) {
    if (desc.tenant_id != kTenant) continue;
    auto lead = RangeSpan(cluster->node(desc.leaseholder)->engine(), desc);
    for (NodeId r : desc.replicas) {
      if (r == desc.leaseholder) continue;
      auto replica = RangeSpan(cluster->node(r)->engine(), desc);
      ASSERT_EQ(lead.size(), replica.size())
          << "range " << desc.range_id << " replica " << r << " has "
          << replica.size() << " engine keys vs leaseholder's " << lead.size();
      for (size_t i = 0; i < lead.size(); ++i) {
        ASSERT_EQ(lead[i], replica[i])
            << "range " << desc.range_id << " replica " << r
            << " diverges at engine key #" << i;
      }
    }
  }
}

std::unique_ptr<KVCluster> MakeCluster(Clock* clock,
                                       ReplicaTransport* transport,
                                       Nanos liveness = 3 * kSecond) {
  KVClusterOptions opts;
  opts.num_nodes = 3;
  opts.replication_factor = 3;
  opts.clock = clock;
  opts.transport = transport;
  opts.liveness_duration = liveness;
  auto cluster = std::make_unique<KVCluster>(opts);
  VELOCE_CHECK_OK(cluster->CreateTenantKeyspace(kTenant));
  return cluster;
}

RangeDescriptor TenantRange(KVCluster* cluster, const std::string& key) {
  auto desc = cluster->LookupRange(K(key));
  VELOCE_CHECK_OK(desc.status());
  return *desc;
}

// ---------------------------------------------------------------------------
// Transport seam
// ---------------------------------------------------------------------------

/// A healthy FaultyMesh (no profile, no partitions) must behave exactly
/// like the built-in passthrough: same responses, all replicas current.
TEST(ReplicaTransportTest, HealthyMeshIsPassthrough) {
  ManualClock clock(100 * kSecond);
  sim::FaultyMesh mesh(42);
  auto meshed = MakeCluster(&clock, &mesh);
  auto plain = MakeCluster(&clock, nullptr);

  for (int i = 0; i < 50; ++i) {
    const std::string key = "k" + std::to_string(i % 7);
    const std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(PutKV(meshed.get(), key, value).ok());
    ASSERT_TRUE(PutKV(plain.get(), key, value).ok());
  }
  for (int i = 0; i < 7; ++i) {
    const std::string key = "k" + std::to_string(i);
    auto a = GetKV(meshed.get(), key);
    auto b = GetKV(plain.get(), key);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->responses[0].value, b->responses[0].value);
  }
  ExpectReplicasConverged(meshed.get());
  ExpectReplicasConverged(plain.get());
  const RangeDescriptor desc = TenantRange(meshed.get(), "k0");
  for (NodeId r : desc.replicas) {
    EXPECT_EQ(meshed->RangeReplicaApplied(desc.range_id, r),
              meshed->RangeLogCommittedIndex(desc.range_id));
  }
}

TEST(ReplicaTransportTest, FaultyMeshIsDeterministic) {
  sim::MeshProfile profile;
  profile.drop = 0.2;
  profile.dup = 0.1;
  profile.delay_base = kMilli;
  profile.delay_jitter = 2 * kMilli;
  sim::FaultyMesh a(7), b(7), c(8);
  a.set_profile(profile);
  b.set_profile(profile);
  c.set_profile(profile);
  bool c_diverged = false;
  for (uint64_t i = 0; i < 2000; ++i) {
    const LinkDecision da = a.DeliverReplication(0, 1 + i % 2, i);
    const LinkDecision db = b.DeliverReplication(0, 1 + i % 2, i);
    const LinkDecision dc = c.DeliverReplication(0, 1 + i % 2, i);
    ASSERT_EQ(da.deliver, db.deliver);
    ASSERT_EQ(da.copies, db.copies);
    ASSERT_EQ(da.delay, db.delay);
    ASSERT_EQ(a.DeliverHeartbeat(1, 2), b.DeliverHeartbeat(1, 2));
    c_diverged |= (da.deliver != dc.deliver || da.delay != dc.delay);
    (void)c.DeliverHeartbeat(1, 2);
  }
  EXPECT_TRUE(c_diverged) << "different seeds produced identical trajectories";
  EXPECT_GT(a.stats().dropped, 0u);
  EXPECT_GT(a.stats().duplicated, 0u);
}

// ---------------------------------------------------------------------------
// Epoch-based leases (acceptance criterion a)
// ---------------------------------------------------------------------------

TEST(EpochLeaseTest, PartitionedLeaseholderRejectsWithEpochMismatch) {
  ManualClock clock(100 * kSecond);
  sim::FaultyMesh mesh(0xEB0C);
  auto cluster = MakeCluster(&clock, &mesh);

  ASSERT_TRUE(PutKV(cluster.get(), "key", "before").ok());
  cluster->TickHeartbeats();  // arm epoch-based lease enforcement
  ASSERT_TRUE(cluster->liveness_enabled());

  const RangeDescriptor before = TenantRange(cluster.get(), "key");
  const NodeId old_holder = before.leaseholder;
  const uint64_t old_epoch = cluster->NodeLivenessEpoch(old_holder);
  mesh.Isolate(old_holder, 3);

  // Phase 1 — lease still valid but quorum unreachable: the write is
  // rejected outright. No ack, nothing applied anywhere.
  auto during = PutKV(cluster.get(), "key", "split-brain");
  ASSERT_FALSE(during.ok());
  EXPECT_EQ(during.status().code(), Code::kUnavailable)
      << during.status().ToString();

  // Phase 2 — liveness expires: the same write now fails with the epoch
  // fence, the error the proxy/txn layers classify as redirectable.
  clock.Advance(4 * kSecond);
  auto expired = PutKV(cluster.get(), "key", "split-brain");
  ASSERT_FALSE(expired.ok());
  EXPECT_TRUE(expired.status().IsLeaseEpochMismatch())
      << expired.status().ToString();
  auto read = GetKV(cluster.get(), "key");
  ASSERT_FALSE(read.ok());  // stale leaseholder cannot serve reads either

  // Heartbeat tick: the isolated node's epoch bumps and the lease moves to
  // a caught-up majority-side replica. The retry (= the redirect) succeeds.
  cluster->TickHeartbeats();
  EXPECT_EQ(cluster->NodeLivenessEpoch(old_holder), old_epoch + 1);
  EXPECT_FALSE(cluster->NodeLivenessValid(old_holder));
  const RangeDescriptor after = TenantRange(cluster.get(), "key");
  EXPECT_NE(after.leaseholder, old_holder);
  ASSERT_TRUE(PutKV(cluster.get(), "key", "after-failover").ok());
  auto reread = GetKV(cluster.get(), "key");
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread->responses[0].value, "after-failover");

  // The epoch fence fired for both the expired put and the stale read.
  EXPECT_EQ(cluster->metrics()->Sum("veloce_kv_lease_epoch_mismatches_total"),
            2.0);

  // Heal: the deposed leaseholder rejoins, catches up, and converges.
  mesh.HealAll();
  clock.Advance(kSecond);
  cluster->TickHeartbeats();  // regains fresh liveness
  ASSERT_TRUE(cluster->CatchUpNode(old_holder).ok());
  ExpectReplicasConverged(cluster.get());
}

// ---------------------------------------------------------------------------
// Replica catch-up (acceptance criterion b + satellite: crash/heal)
// ---------------------------------------------------------------------------

TEST(CatchUpTest, HealedMinorityReplicaConverges) {
  ManualClock clock(100 * kSecond);
  sim::FaultyMesh mesh(0xCA7C);
  auto cluster = MakeCluster(&clock, &mesh);

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        PutKV(cluster.get(), "k" + std::to_string(i % 5), "w0-" + std::to_string(i))
            .ok());
  }
  const RangeDescriptor desc = TenantRange(cluster.get(), "k0");
  NodeId victim = 0;
  for (NodeId r : desc.replicas) {
    if (r != desc.leaseholder) victim = r;
  }

  // Crash the minority replica mid-workload; quorum (2/3) keeps serving.
  cluster->SetNodeLive(victim, false);
  for (int i = 20; i < 60; ++i) {
    ASSERT_TRUE(
        PutKV(cluster.get(), "k" + std::to_string(i % 5), "w1-" + std::to_string(i))
            .ok());
  }
  const uint64_t committed = cluster->RangeLogCommittedIndex(desc.range_id);
  EXPECT_LT(cluster->RangeReplicaApplied(desc.range_id, victim), committed);

  // Heal: SetNodeLive(true) replays the missed suffix of the range log.
  cluster->SetNodeLive(victim, true);
  EXPECT_GE(cluster->RangeReplicaApplied(desc.range_id, victim), committed);
  ExpectReplicasConverged(cluster.get());
  EXPECT_GT(cluster->metrics()->Sum("veloce_kv_replica_catchups_total"), 0.0);
  EXPECT_GT(cluster->metrics()->Sum("veloce_kv_replica_catchup_records_total"),
            0.0);

  // The healed replica counts toward quorum again: cut a *different*
  // replica's links; writes must still reach a majority through the healed
  // one.
  NodeId other = 0;
  for (NodeId r : desc.replicas) {
    if (r != desc.leaseholder && r != victim) other = r;
  }
  mesh.Isolate(other, 3);
  for (int i = 60; i < 70; ++i) {
    ASSERT_TRUE(
        PutKV(cluster.get(), "k" + std::to_string(i % 5), "w2-" + std::to_string(i))
            .ok())
        << "healed replica did not count toward quorum";
  }
  EXPECT_EQ(cluster->RangeReplicaApplied(desc.range_id, victim),
            cluster->RangeLogCommittedIndex(desc.range_id));
}

/// A replica that falls behind further than the log's retention window
/// converges through the snapshot path instead of replay.
TEST(CatchUpTest, SnapshotPathWhenLogTruncated) {
  ManualClock clock(100 * kSecond);
  auto cluster = MakeCluster(&clock, nullptr);

  ASSERT_TRUE(PutKV(cluster.get(), "k", "seed").ok());
  const RangeDescriptor desc = TenantRange(cluster.get(), "k");
  NodeId victim = 0;
  for (NodeId r : desc.replicas) {
    if (r != desc.leaseholder) victim = r;
  }
  cluster->SetNodeLive(victim, false);
  // Push the retained window past the victim's applied position: large
  // values overflow ReplicationLog::kMaxRetainedBytes quickly.
  const std::string big(64 << 10, 'x');
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(PutKV(cluster.get(), "big" + std::to_string(i % 8), big).ok());
  }
  cluster->SetNodeLive(victim, true);
  EXPECT_EQ(cluster->RangeReplicaApplied(desc.range_id, victim),
            cluster->RangeLogCommittedIndex(desc.range_id));
  ExpectReplicasConverged(cluster.get());
  EXPECT_GT(cluster->metrics()->Value("veloce_kv_replica_catchups_total",
                                      {{"mode", "snapshot"}}),
            0.0);
}

// ---------------------------------------------------------------------------
// Satellite: minority engine-write failure demotes instead of failing
// ---------------------------------------------------------------------------

TEST(CatchUpTest, MinorityEngineFailureDemotesNotFails) {
  auto base = storage::NewMemEnv();
  storage::FaultInjectionEnv fault(base.get(), 0xD3);

  KVClusterOptions opts;
  opts.num_nodes = 3;
  opts.replication_factor = 3;
  opts.engine_options.env = &fault;
  opts.engine_options.sync_wal = true;
  auto cluster = std::make_unique<KVCluster>(opts);
  VELOCE_CHECK_OK(cluster->CreateTenantKeyspace(kTenant));

  ASSERT_TRUE(PutKV(cluster.get(), "k", "healthy").ok());
  const RangeDescriptor desc = TenantRange(cluster.get(), "k");
  NodeId victim = 0;
  for (NodeId r : desc.replicas) {
    if (r != desc.leaseholder) victim = r;
  }

  // Every WAL append on the victim's engine fails while the rule is live:
  // its replica apply errors mid-loop, after the leaseholder applied.
  storage::FaultRule rule;
  rule.op = storage::FaultOp::kAppend;
  rule.path_substr = "kvnode-" + std::to_string(victim) + "/";
  rule.count = 1000000;
  const int rule_id = fault.AddRule(rule);

  const double demotions_before =
      cluster->metrics()->Sum("veloce_kv_replica_demotions_total");
  // Quorum (leaseholder + healthy replica) holds: the batch must succeed,
  // the victim is demoted to needs-catch-up.
  auto resp = PutKV(cluster.get(), "k", "during-fault");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_GT(cluster->metrics()->Sum("veloce_kv_replica_demotions_total"),
            demotions_before);
  EXPECT_LT(cluster->RangeReplicaApplied(desc.range_id, victim),
            cluster->RangeLogCommittedIndex(desc.range_id));

  fault.RemoveRule(rule_id);
  (void)cluster->node(victim)->engine()->Resume();
  ASSERT_TRUE(cluster->CatchUpNode(victim).ok());
  EXPECT_EQ(cluster->RangeReplicaApplied(desc.range_id, victim),
            cluster->RangeLogCommittedIndex(desc.range_id));
  ExpectReplicasConverged(cluster.get());
  EXPECT_GT(cluster->metrics()->Sum("veloce_kv_replica_catchups_total"), 0.0);
}

// ---------------------------------------------------------------------------
// Lease/replica handoff safety: only caught-up replicas take over
// ---------------------------------------------------------------------------

/// Returns the first replica in descriptor order that is not the
/// leaseholder — the candidate ShedLeases considers first.
NodeId FirstFollower(const RangeDescriptor& desc) {
  for (NodeId r : desc.replicas) {
    if (r != desc.leaseholder) return r;
  }
  VELOCE_CHECK(false);
  return 0;
}

/// A replica demoted to needs-catch-up (dropped deliveries) must not take
/// the lease as-is when the old holder dies: ShedLeases catches the
/// candidate up first, so the new leaseholder never serves reads missing
/// acked writes.
TEST(LeaseSafetyTest, ShedLeasesCatchesUpBehindReplica) {
  ManualClock clock(100 * kSecond);
  sim::FaultyMesh mesh(0x5AFE);
  auto cluster = MakeCluster(&clock, &mesh);

  ASSERT_TRUE(PutKV(cluster.get(), "k", "w0").ok());
  const RangeDescriptor desc = TenantRange(cluster.get(), "k");
  const NodeId leader = desc.leaseholder;
  const NodeId victim = FirstFollower(desc);

  // Drop every delivery to the victim; quorum (leaseholder + the other
  // replica) keeps acking writes the victim never sees.
  mesh.PartitionLink(leader, victim);
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(PutKV(cluster.get(), "k", "w" + std::to_string(i)).ok());
  }
  const uint64_t committed = cluster->RangeLogCommittedIndex(desc.range_id);
  ASSERT_LT(cluster->RangeReplicaApplied(desc.range_id, victim), committed);

  // Network heals, then the leaseholder dies. The lease must land on a
  // replica holding every committed record.
  mesh.HealAll();
  cluster->SetNodeLive(leader, false);
  const RangeDescriptor after = TenantRange(cluster.get(), "k");
  ASSERT_NE(after.leaseholder, leader);
  EXPECT_EQ(cluster->RangeReplicaApplied(desc.range_id, after.leaseholder),
            committed)
      << "lease landed on a behind replica";
  auto read = GetKV(cluster.get(), "k");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->responses[0].value, "w10");  // the last acked write
}

/// BalanceLeases round-robins leases across replicas; any replica it hands
/// a lease must hold every committed record afterwards.
TEST(LeaseSafetyTest, BalanceLeasesOnlyGrantsCaughtUpLeaseholders) {
  ManualClock clock(100 * kSecond);
  sim::FaultyMesh mesh(0xBA1A);
  auto cluster = MakeCluster(&clock, &mesh);

  ASSERT_TRUE(PutKV(cluster.get(), "k", "w0").ok());
  const RangeDescriptor desc = TenantRange(cluster.get(), "k");
  const NodeId leader = desc.leaseholder;
  const NodeId victim = FirstFollower(desc);

  mesh.PartitionLink(leader, victim);
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(PutKV(cluster.get(), "k", "w" + std::to_string(i)).ok());
  }
  ASSERT_LT(cluster->RangeReplicaApplied(desc.range_id, victim),
            cluster->RangeLogCommittedIndex(desc.range_id));

  // Rebalance while the victim is still behind (catch-up replays from the
  // shared log, so the partition does not block it). Every lease must land
  // on a fully-applied replica.
  cluster->BalanceLeases();
  for (const RangeDescriptor& d : cluster->Ranges()) {
    EXPECT_EQ(cluster->RangeReplicaApplied(d.range_id, d.leaseholder),
              cluster->RangeLogCommittedIndex(d.range_id))
        << "range " << d.range_id << " lease landed on a behind replica";
  }
  auto read = GetKV(cluster.get(), "k");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->responses[0].value, "w10");
}

/// MoveReplica records the target as fully applied, so its snapshot source
/// must itself hold every committed record — even right after a leader
/// death left a recently-behind replica in the survivor set.
TEST(LeaseSafetyTest, MoveReplicaSnapshotsFromCaughtUpSource) {
  ManualClock clock(100 * kSecond);
  sim::FaultyMesh mesh(0x30FE);
  auto cluster = MakeCluster(&clock, &mesh);

  ASSERT_TRUE(PutKV(cluster.get(), "k", "w0").ok());
  const RangeDescriptor desc = TenantRange(cluster.get(), "k");
  const NodeId leader = desc.leaseholder;
  const NodeId victim = FirstFollower(desc);

  mesh.PartitionLink(leader, victim);
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(PutKV(cluster.get(), "k", "w" + std::to_string(i)).ok());
  }
  mesh.HealAll();
  cluster->SetNodeLive(leader, false);  // lease moves to a caught-up replica

  // Replace the dead leader's replica with a fresh node: the snapshot must
  // come from a fully-applied source, and the target's recorded position
  // must match what its engine actually holds.
  auto added = cluster->AddNode();
  ASSERT_TRUE(added.ok());
  ASSERT_TRUE(cluster->MoveReplica(desc.range_id, leader, *added).ok());
  EXPECT_EQ(cluster->RangeReplicaApplied(desc.range_id, *added),
            cluster->RangeLogCommittedIndex(desc.range_id));
  const RangeDescriptor after = TenantRange(cluster.get(), "k");
  EXPECT_EQ(RangeSpan(cluster->node(after.leaseholder)->engine(), after),
            RangeSpan(cluster->node(*added)->engine(), after));

  // The new replica serves in quorum with the dead leader gone.
  ASSERT_TRUE(PutKV(cluster.get(), "k", "w11").ok());
  auto read = GetKV(cluster.get(), "k");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->responses[0].value, "w11");
  ExpectReplicasConverged(cluster.get());
}

// ---------------------------------------------------------------------------
// Tenant byte attribution: catch-up replay is not re-charged
// ---------------------------------------------------------------------------

/// Delivers everything but loses the ack from one replica, so the
/// leaseholder re-replays records that replica already applied.
class LostAckTransport final : public ReplicaTransport {
 public:
  LinkDecision DeliverReplication(uint32_t, uint32_t to, uint64_t) override {
    LinkDecision d;
    if (to == victim) d.ack = false;
    return d;
  }
  bool DeliverHeartbeat(uint32_t, uint32_t) override { return true; }

  static constexpr uint32_t kNoVictim = UINT32_MAX;
  uint32_t victim = kNoVictim;
};

TEST(TenantAccountingTest, CatchUpReplayDoesNotDoubleChargeWriteBytes) {
  ManualClock clock(100 * kSecond);
  LostAckTransport transport;
  auto cluster = MakeCluster(&clock, &transport);

  ASSERT_TRUE(PutKV(cluster.get(), "k", "w0").ok());
  const RangeDescriptor desc = TenantRange(cluster.get(), "k");
  const NodeId victim = FirstFollower(desc);
  transport.victim = victim;

  // Each write applies (and charges) on the victim, but the lost ack keeps
  // its recorded position behind — so every subsequent write re-replays the
  // previous, already-applied record first.
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(PutKV(cluster.get(), "k", "w" + std::to_string(i)).ok());
  }
  transport.victim = LostAckTransport::kNoVictim;
  ASSERT_TRUE(PutKV(cluster.get(), "k", "w6").ok());  // final replay + heal

  ExpectReplicasConverged(cluster.get());
  const uint64_t leader_bytes =
      cluster->node(desc.leaseholder)->TenantWriteBytes(kTenant);
  ASSERT_GT(leader_bytes, 0u);
  for (NodeId r : desc.replicas) {
    EXPECT_EQ(cluster->node(r)->TenantWriteBytes(kTenant), leader_bytes)
        << "replica " << r << " was charged for replayed records";
  }
}

// ---------------------------------------------------------------------------
// Linearizability checker: unit tests
// ---------------------------------------------------------------------------

HistoryOp Op(HistoryOp::Kind kind, const std::string& key,
             const std::string& value, bool acked, uint64_t invoke,
             uint64_t complete) {
  HistoryOp op;
  op.kind = kind;
  op.key = key;
  op.value = value;
  op.acked = acked;
  op.invoke = invoke;
  op.complete = complete;
  return op;
}

TEST(LinearizabilityTest, AcceptsSequentialHistory) {
  std::vector<HistoryOp> h;
  h.push_back(Op(HistoryOp::Kind::kWrite, "a", "1", true, 1, 2));
  h.push_back(Op(HistoryOp::Kind::kRead, "a", "1", true, 3, 4));
  h.push_back(Op(HistoryOp::Kind::kWrite, "a", "2", true, 5, 6));
  h.push_back(Op(HistoryOp::Kind::kRead, "a", "2", true, 7, 8));
  const auto r = CheckLinearizability(h);
  EXPECT_TRUE(r.ok) << r.explanation;
  EXPECT_EQ(r.keys_checked, 1u);
  EXPECT_EQ(r.ops_checked, 4u);
}

TEST(LinearizabilityTest, AcceptsConcurrentOverlap) {
  // w(1) overlaps w(2) and the read: r=2 is valid with order w1, w2, r.
  std::vector<HistoryOp> h;
  h.push_back(Op(HistoryOp::Kind::kWrite, "a", "1", true, 1, 10));
  h.push_back(Op(HistoryOp::Kind::kWrite, "a", "2", true, 2, 9));
  h.push_back(Op(HistoryOp::Kind::kRead, "a", "2", true, 3, 8));
  EXPECT_TRUE(CheckLinearizability(h).ok);
}

TEST(LinearizabilityTest, RejectsStaleRead) {
  // w(1) completed strictly before the read, yet the read saw nothing.
  std::vector<HistoryOp> h;
  h.push_back(Op(HistoryOp::Kind::kWrite, "a", "1", true, 1, 2));
  HistoryOp read = Op(HistoryOp::Kind::kRead, "a", "", true, 3, 4);
  read.found = false;
  h.push_back(read);
  const auto r = CheckLinearizability(h);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.explanation.find("\"a\""), std::string::npos);
}

TEST(LinearizabilityTest, RejectsValueFromNowhere) {
  std::vector<HistoryOp> h;
  h.push_back(Op(HistoryOp::Kind::kWrite, "a", "1", true, 1, 2));
  h.push_back(Op(HistoryOp::Kind::kRead, "a", "ghost", true, 3, 4));
  EXPECT_FALSE(CheckLinearizability(h).ok);
}

TEST(LinearizabilityTest, MaybeWriteMayOrMayNotApply) {
  // An indeterminate write may be read...
  std::vector<HistoryOp> h1;
  HistoryOp maybe = Op(HistoryOp::Kind::kWrite, "a", "m", false, 1,
                       HistoryOp::kForever);
  maybe.maybe = true;
  h1.push_back(maybe);
  h1.push_back(Op(HistoryOp::Kind::kRead, "a", "m", true, 2, 3));
  EXPECT_TRUE(CheckLinearizability(h1).ok);
  // ...or never surface.
  std::vector<HistoryOp> h2;
  h2.push_back(maybe);
  HistoryOp miss = Op(HistoryOp::Kind::kRead, "a", "", true, 2, 3);
  miss.found = false;
  h2.push_back(miss);
  EXPECT_TRUE(CheckLinearizability(h2).ok);
  // ...but it cannot flicker: once read, a strictly-later read (no
  // overlap) cannot observe its absence.
  std::vector<HistoryOp> h3;
  h3.push_back(maybe);
  h3.push_back(Op(HistoryOp::Kind::kRead, "a", "m", true, 2, 3));
  HistoryOp later_miss = Op(HistoryOp::Kind::kRead, "a", "", true, 4, 5);
  later_miss.found = false;
  h3.push_back(later_miss);
  EXPECT_FALSE(CheckLinearizability(h3).ok);
}

TEST(LinearizabilityTest, FailedDefiniteWriteNeverApplies) {
  std::vector<HistoryOp> h;
  h.push_back(Op(HistoryOp::Kind::kWrite, "a", "rejected", false, 1, 2));
  h.push_back(Op(HistoryOp::Kind::kRead, "a", "rejected", true, 3, 4));
  EXPECT_FALSE(CheckLinearizability(h).ok);
}

// ---------------------------------------------------------------------------
// Checker self-test (the "deliberately broken transport" criterion)
// ---------------------------------------------------------------------------

/// A lying transport: acks every delivery without ever performing it.
/// Physically impossible on a real network — it exists to manufacture a
/// split-brain history and prove the checker catches it.
class LyingTransport final : public ReplicaTransport {
 public:
  LinkDecision DeliverReplication(uint32_t, uint32_t, uint64_t) override {
    LinkDecision d;
    d.deliver = false;
    d.ack = true;
    return d;
  }
  bool DeliverHeartbeat(uint32_t, uint32_t) override { return true; }
};

TEST(LinearizabilityTest, CheckerRejectsBrokenTransport) {
  ManualClock clock(100 * kSecond);
  LyingTransport lying;
  auto cluster = MakeCluster(&clock, &lying);
  HistoryRecorder history;

  // Acked write: the leaseholder applied it; every "replicated" copy is a
  // phantom ack.
  size_t w = history.BeginWrite("key", "v1");
  auto put = PutKV(cluster.get(), "key", "v1");
  history.EndWrite(w, put.ok(), /*maybe=*/false);
  ASSERT_TRUE(put.ok());

  // The leaseholder dies; a phantom-acked replica takes the lease and
  // serves a read that has never seen v1 — split-brain made visible.
  const RangeDescriptor desc = TenantRange(cluster.get(), "key");
  cluster->SetNodeLive(desc.leaseholder, false);
  size_t r = history.BeginRead("key");
  auto get = GetKV(cluster.get(), "key");
  ASSERT_TRUE(get.ok()) << get.status().ToString();
  history.EndRead(r, true, get->responses[0].found, get->responses[0].value);

  const auto result = CheckLinearizability(history.Snapshot());
  EXPECT_FALSE(result.ok)
      << "checker accepted a history produced by a lying transport";
}

// ---------------------------------------------------------------------------
// Seeded partition-chaos harness (acceptance criterion c)
// ---------------------------------------------------------------------------

/// Runs a short seeded workload against a 3-node cluster behind a FaultyMesh
/// that drops, duplicates, delays, and asymmetrically partitions links,
/// with heartbeat ticks and clock advancement interleaved. Every operation
/// is recorded; the history must check out linearizable for EVERY seed.
void RunPartitionChaosIteration(uint64_t seed) {
  Random rnd(DeriveSeed(seed, "netfault-harness"));
  ManualClock clock(100 * kSecond);
  sim::FaultyMesh mesh(seed);
  sim::MeshProfile profile;
  profile.drop = rnd.NextDouble() * 0.3;
  profile.dup = rnd.NextDouble() * 0.2;
  profile.reorder = rnd.NextDouble() * 0.2;
  profile.delay_base = rnd.Uniform(2 * kMilli);
  profile.delay_jitter = rnd.Uniform(5 * kMilli);
  mesh.set_profile(profile);

  auto cluster = MakeCluster(&clock, &mesh, /*liveness=*/2 * kSecond);
  cluster->TickHeartbeats();

  HistoryRecorder history;
  const int kKeys = 3;
  int next_value = 0;
  const int ops = 30 + static_cast<int>(rnd.Uniform(30));
  for (int i = 0; i < ops; ++i) {
    // Mutate the partition set occasionally: isolate one node, cut one
    // directed link (a gray, asymmetric partition), or heal.
    const uint64_t dice = rnd.Uniform(12);
    if (dice == 0) {
      mesh.Isolate(static_cast<uint32_t>(rnd.Uniform(3)), 3);
    } else if (dice == 1) {
      const uint32_t from = static_cast<uint32_t>(rnd.Uniform(3));
      mesh.PartitionLink(from, static_cast<uint32_t>((from + 1) % 3));
    } else if (dice <= 3) {
      mesh.HealAll();
    }
    clock.Advance(rnd.Uniform(800 * kMilli));
    if (rnd.Uniform(3) == 0) cluster->TickHeartbeats();

    const std::string key = "k" + std::to_string(rnd.Uniform(kKeys));
    if (rnd.Uniform(2) == 0) {
      const std::string value = "v" + std::to_string(next_value++);
      const size_t id = history.BeginWrite(key, value);
      auto resp = PutKV(cluster.get(), key, value);
      // Any failure is conservatively "maybe": sound (acked stays strict),
      // and robust to new indeterminate failure modes.
      history.EndWrite(id, resp.ok(), /*maybe=*/!resp.ok());
    } else {
      const size_t id = history.BeginRead(key);
      auto resp = GetKV(cluster.get(), key);
      if (resp.ok()) {
        history.EndRead(id, true, resp->responses[0].found,
                        resp->responses[0].value);
      } else {
        history.EndRead(id, false, false, "");
      }
    }
  }
  // Quiesce: heal everything, let liveness recover, converge all replicas.
  mesh.HealAll();
  clock.Advance(3 * kSecond);
  cluster->TickHeartbeats();
  cluster->TickHeartbeats();
  for (NodeId n = 0; n < 3; ++n) {
    ASSERT_TRUE(cluster->CatchUpNode(n).ok());
  }
  ExpectReplicasConverged(cluster.get());

  // Final acked reads must see the converged state too.
  for (int k = 0; k < kKeys; ++k) {
    const std::string key = "k" + std::to_string(k);
    const size_t id = history.BeginRead(key);
    auto resp = GetKV(cluster.get(), key);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    history.EndRead(id, true, resp->responses[0].found,
                    resp->responses[0].value);
  }

  const auto result = CheckLinearizability(history.Snapshot());
  ASSERT_TRUE(result.ok) << "seed " << seed << ": " << result.explanation;
}

TEST(PartitionChaosTest, LinearizableAcrossSeeds) {
  const uint64_t iters = EnvOr("VELOCE_NETFAULT_ITERS", 200);
  const uint64_t base_seed = EnvOr("VELOCE_NETFAULT_SEED", 0x9E7F);
  for (uint64_t iter = 0; iter < iters; ++iter) {
    const uint64_t seed = base_seed + iter;
    SCOPED_TRACE("partition chaos iteration " + std::to_string(iter) +
                 " seed " + std::to_string(seed));
    RunPartitionChaosIteration(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Range-storm slice under partitions (splits/merges/moves + fault weather)
// ---------------------------------------------------------------------------

/// A fixed-seed slice of the range storm (tests/range_storm_harness.h) with
/// FaultyMesh partitions layered on top of the split/merge/move churn: the
/// harness asserts the directory invariants every iteration — including
/// that no lease ever carries an epoch ahead of its holder's liveness
/// record — and the whole run must linearize.
TEST(RangeStormSliceTest, StormUnderPartitionsIsLinearizable) {
  ManualClock clock(100 * kSecond);
  const uint64_t seed = EnvOr("VELOCE_RANGESTORM_SEED", 0x570A);
  sim::FaultyMesh mesh(seed);
  storm::StormOptions opts;
  opts.seed = seed;
  opts.nodes = 3;
  opts.replication = 3;
  opts.tenants = 2;
  opts.keys_per_tenant = 12;
  opts.iterations = 16;
  opts.ops_per_iteration = 24;
  opts.mesh = &mesh;
  KVClusterOptions co = storm::RangeStormHarness::ClusterOptions(opts, &clock);
  co.transport = &mesh;
  auto cluster = std::make_unique<KVCluster>(co);
  for (int i = 0; i < opts.tenants; ++i) {
    ASSERT_TRUE(cluster
                    ->CreateTenantKeyspace(opts.first_tenant +
                                           static_cast<TenantId>(i))
                    .ok());
  }
  storm::RangeStormHarness storm(opts, &clock, cluster.get());
  ASSERT_EQ(storm.Run(), "");
  // After the storm quiesces (mesh healed, every node caught up), all
  // replicas of all tenant ranges must be byte-identical.
  for (const RangeDescriptor& desc : cluster->Ranges()) {
    if (desc.tenant_id == 0) continue;
    auto lead = RangeSpan(cluster->node(desc.leaseholder)->engine(), desc);
    for (NodeId r : desc.replicas) {
      if (r == desc.leaseholder) continue;
      EXPECT_EQ(lead, RangeSpan(cluster->node(r)->engine(), desc))
          << "range " << desc.range_id << " replica " << r << " diverged";
    }
  }
}

/// A merge adopts the left range's *validated* lease, never the right's.
/// Scenario: one node holds both neighbours' leases, gets partitioned, and
/// only the left range fails over (bumping the holder's liveness epoch).
/// The right range still carries a lease stamped with the deposed epoch.
/// Merging must not resurrect it: the merged range serves under the
/// surviving lease, and its epoch can never be ahead of its holder's
/// liveness record.
TEST(RangeStormSliceTest, MergeNeverResurrectsStaleLeaseEpoch) {
  ManualClock clock(100 * kSecond);
  sim::FaultyMesh mesh(0x5EA1);
  auto cluster = MakeCluster(&clock, &mesh);
  ASSERT_TRUE(PutKV(cluster.get(), "a", "left").ok());
  ASSERT_TRUE(PutKV(cluster.get(), "z", "right").ok());
  ASSERT_TRUE(cluster->SplitRange(K("m")).ok());
  cluster->TickHeartbeats();  // arm epoch-based lease enforcement

  const RangeDescriptor left0 = TenantRange(cluster.get(), "a");
  const RangeDescriptor right0 = TenantRange(cluster.get(), "z");
  // The split inherits the parent's leaseholder, so one node holds both.
  ASSERT_EQ(left0.leaseholder, right0.leaseholder);
  const NodeId old_holder = left0.leaseholder;
  const uint64_t old_epoch = cluster->NodeLivenessEpoch(old_holder);

  // Partition the holder, expire its liveness, and fail over only the
  // left range (the right sees no traffic, so its lease stays stale).
  mesh.Isolate(old_holder, 3);
  clock.Advance(4 * kSecond);
  cluster->TickHeartbeats();
  ASSERT_EQ(cluster->NodeLivenessEpoch(old_holder), old_epoch + 1);
  ASSERT_TRUE(PutKV(cluster.get(), "a", "failover").ok());
  const RangeDescriptor left1 = TenantRange(cluster.get(), "a");
  ASSERT_NE(left1.leaseholder, old_holder);

  // Heal; the deposed node regains liveness at the bumped epoch.
  mesh.HealAll();
  clock.Advance(kSecond);
  cluster->TickHeartbeats();
  ASSERT_TRUE(cluster->CatchUpNode(old_holder).ok());

  ASSERT_TRUE(cluster->MergeRanges(left1.range_id).ok());
  const RangeDescriptor merged = TenantRange(cluster.get(), "z");
  EXPECT_EQ(merged.range_id, left1.range_id);
  EXPECT_EQ(merged.leaseholder, left1.leaseholder);
  EXPECT_EQ(merged.lease_epoch, left1.lease_epoch);
  // The stale (old_holder, old_epoch) lease is gone for good, and the
  // merged lease is consistent with liveness.
  EXPECT_FALSE(merged.leaseholder == old_holder &&
               merged.lease_epoch == old_epoch);
  EXPECT_LE(merged.lease_epoch,
            cluster->NodeLivenessEpoch(merged.leaseholder));

  // The merged range serves both halves of the keyspace.
  ASSERT_TRUE(PutKV(cluster.get(), "z", "post-merge").ok());
  auto a = GetKV(cluster.get(), "a");
  auto z = GetKV(cluster.get(), "z");
  ASSERT_TRUE(a.ok() && z.ok());
  EXPECT_EQ(a->responses[0].value, "failover");
  EXPECT_EQ(z->responses[0].value, "post-merge");
}

}  // namespace
}  // namespace veloce::kv
