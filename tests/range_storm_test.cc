#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "kv/cluster.h"
#include "kv/keys.h"
#include "kv/range_cache.h"
#include "obs/metrics.h"
#include "sim/faulty_mesh.h"
#include "tests/range_storm_harness.h"

namespace veloce::kv {
namespace {

using storm::RangeStormHarness;
using storm::StormOptions;
using storm::StormStats;
using storm::TenantSpanContents;

uint64_t EnvOr(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  return v == nullptr ? def : std::strtoull(v, nullptr, 0);
}

std::unique_ptr<KVCluster> MakeStormCluster(const StormOptions& opts,
                                            ManualClock* clock,
                                            ReplicaTransport* transport = nullptr,
                                            obs::MetricsRegistry* metrics = nullptr) {
  KVClusterOptions co = RangeStormHarness::ClusterOptions(opts, clock);
  co.transport = transport;
  co.obs.metrics = metrics;
  auto cluster = std::make_unique<KVCluster>(co);
  for (int i = 0; i < opts.tenants; ++i) {
    VELOCE_CHECK_OK(cluster->CreateTenantKeyspace(
        opts.first_tenant + static_cast<TenantId>(i)));
  }
  return cluster;
}

// ---------------------------------------------------------------------------
// Composed storm: splits + merges + moves + cached clients, one seed
// ---------------------------------------------------------------------------

TEST(RangeStormTest, ComposedStormSingleSeed) {
  ManualClock clock(100 * kSecond);
  StormOptions opts;
  opts.seed = EnvOr("VELOCE_RANGESTORM_SEED", 0xC10D);
  opts.iterations = 30;
  obs::MetricsRegistry metrics;
  auto cluster = MakeStormCluster(opts, &clock, nullptr, &metrics);
  RangeStormHarness storm(opts, &clock, cluster.get());

  EXPECT_EQ(storm.Run(), "");

  const StormStats& s = storm.stats();
  // The storm must actually storm: hot load splits ranges, the cooldown
  // phase merges them back, and clients observe the churn as redirects.
  EXPECT_GT(s.splits, 0u) << "no load splits fired";
  EXPECT_GT(s.merges, 0u) << "no cooldown merges fired";
  EXPECT_GT(s.max_ranges, static_cast<uint64_t>(opts.tenants));
  EXPECT_LT(s.final_ranges, s.max_ranges) << "merges did not shrink the directory";
  EXPECT_GT(s.cache_hits, s.cache_misses) << "directory cache never warmed";
  EXPECT_GT(s.redirects, 0u) << "clients never saw a stale route";
  EXPECT_EQ(s.write_failures, 0u);  // no faults in this run

  // Counter audit: the labeled split/merge counters agree with the
  // harness's own tally (manual splits from CreateTenantKeyspace excluded).
  EXPECT_EQ(static_cast<uint64_t>(
                metrics.Value("veloce_kv_range_splits_total",
                              {{"reason", "load"}})),
            s.splits);
  EXPECT_EQ(static_cast<uint64_t>(
                metrics.Value("veloce_kv_range_merges_total",
                              {{"reason", "cooldown"}})),
            s.merges);
  EXPECT_GT(metrics.Sum("veloce_kv_range_mismatches_total"), 0.0);
}

// Same seed, two independent runs: byte-identical storms — stats, latency
// samples, and final directory all match.
TEST(RangeStormTest, StormIsDeterministic) {
  StormOptions opts;
  opts.iterations = 12;
  opts.tenants = 3;
  auto run = [&](StormStats* out, std::vector<RangeDescriptor>* dir) {
    ManualClock clock(100 * kSecond);
    auto cluster = MakeStormCluster(opts, &clock);
    RangeStormHarness storm(opts, &clock, cluster.get());
    ASSERT_EQ(storm.Run(), "");
    *out = storm.stats();
    *dir = cluster->Ranges();
  };
  StormStats a, b;
  std::vector<RangeDescriptor> dir_a, dir_b;
  run(&a, &dir_a);
  run(&b, &dir_b);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.splits, b.splits);
  EXPECT_EQ(a.merges, b.merges);
  EXPECT_EQ(a.redirects, b.redirects);
  EXPECT_EQ(a.read_latency_ms, b.read_latency_ms);
  ASSERT_EQ(dir_a.size(), dir_b.size());
  for (size_t i = 0; i < dir_a.size(); ++i) {
    EXPECT_EQ(dir_a[i].start_key, dir_b[i].start_key);
    EXPECT_EQ(dir_a[i].end_key, dir_b[i].end_key);
  }
}

// ---------------------------------------------------------------------------
// 100-seed sweep (VELOCE_RANGESTORM_SEEDS / _ITERS override the scale)
// ---------------------------------------------------------------------------

TEST(RangeStormTest, InvariantsAcrossSeeds) {
  const uint64_t seeds = EnvOr("VELOCE_RANGESTORM_SEEDS", 100);
  const uint64_t iters = EnvOr("VELOCE_RANGESTORM_ITERS", 10);
  uint64_t total_splits = 0;
  uint64_t total_merges = 0;
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ManualClock clock(100 * kSecond);
    StormOptions opts;
    opts.seed = seed;
    opts.tenants = 3;
    opts.keys_per_tenant = 16;
    opts.iterations = static_cast<int>(iters);
    opts.ops_per_iteration = 32;
    auto cluster = MakeStormCluster(opts, &clock);
    RangeStormHarness storm(opts, &clock, cluster.get());
    ASSERT_EQ(storm.Run(), "");
    total_splits += storm.stats().splits;
    total_merges += storm.stats().merges;
    if (HasFatalFailure()) return;
  }
  // Across the sweep the storm must exercise both directions.
  EXPECT_GT(total_splits, 0u);
  EXPECT_GT(total_merges, 0u);
}

// ---------------------------------------------------------------------------
// Split + merge round-trip: tenant bytes survive byte-identical
// ---------------------------------------------------------------------------

TEST(RangeStormTest, SplitMergeRoundTripByteIdentical) {
  ManualClock clock(100 * kSecond);
  StormOptions opts;
  opts.tenants = 1;
  auto cluster = MakeStormCluster(opts, &clock);
  const TenantId tenant = opts.first_tenant;

  for (int i = 0; i < 64; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "k%03d", i);
    BatchRequest req;
    req.tenant_id = tenant;
    req.ts = cluster->Now();
    req.AddPut(AddTenantPrefix(tenant, buf), "v" + std::to_string(i));
    ASSERT_TRUE(cluster->Send(req).ok());
  }
  const auto before = TenantSpanContents(cluster.get(), tenant);
  ASSERT_EQ(before.size(), 64u);
  const size_t ranges_before = cluster->Ranges().size();

  // Shatter the tenant into five ranges, then fuse them back.
  for (const char* k : {"k010", "k020", "k030", "k040"}) {
    ASSERT_TRUE(cluster->SplitRange(AddTenantPrefix(tenant, k)).ok());
  }
  EXPECT_EQ(cluster->Ranges().size(), ranges_before + 4);
  EXPECT_EQ(TenantSpanContents(cluster.get(), tenant), before)
      << "splitting alone changed the tenant's bytes";

  // Merge left-to-right until the tenant is one range again.
  for (int guard = 0; guard < 16; ++guard) {
    bool merged = false;
    for (const RangeDescriptor& d : cluster->Ranges()) {
      if (d.tenant_id != tenant) continue;
      if (cluster->MergeRanges(d.range_id).ok()) {
        merged = true;
        break;
      }
    }
    if (!merged) break;
  }
  EXPECT_EQ(cluster->Ranges().size(), ranges_before);
  EXPECT_EQ(TenantSpanContents(cluster.get(), tenant), before)
      << "split+merge round-trip is not byte-identical";
}

// ---------------------------------------------------------------------------
// Merges never fuse across tenants
// ---------------------------------------------------------------------------

TEST(RangeStormTest, MergeRefusesTenantBoundary) {
  ManualClock clock(100 * kSecond);
  StormOptions opts;
  opts.tenants = 2;  // consecutive ids: their keyspans are adjacent
  auto cluster = MakeStormCluster(opts, &clock);
  const TenantId left = opts.first_tenant;

  auto desc = cluster->LookupRange(TenantPrefix(left));
  ASSERT_TRUE(desc.ok());
  ASSERT_EQ(desc->tenant_id, left);
  // The right neighbour is tenant left+1's range — same replica sets, both
  // idle; only the tenant guard stands between them.
  Status s = cluster->MergeRanges(desc->range_id);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("tenant"), std::string::npos) << s.ToString();
}

// ---------------------------------------------------------------------------
// Redirect contract: a stale cached route is always recoverable
// ---------------------------------------------------------------------------

TEST(RangeStormTest, StaleCacheRedirectRecovers) {
  ManualClock clock(100 * kSecond);
  StormOptions opts;
  opts.tenants = 1;
  obs::MetricsRegistry metrics;
  auto cluster = MakeStormCluster(opts, &clock, nullptr, &metrics);
  const TenantId tenant = opts.first_tenant;
  const std::string key = AddTenantPrefix(tenant, "k050");

  RangeDirectoryCache cache;
  auto fresh = cluster->LookupRange(key);
  ASSERT_TRUE(fresh.ok());
  cache.Insert(*fresh);

  // The directory splits behind the cache's back; the cached route now
  // covers only the left half while `key` lives in the right.
  ASSERT_TRUE(cluster->SplitRange(AddTenantPrefix(tenant, "k025")).ok());

  BatchRequest req;
  req.tenant_id = tenant;
  req.ts = cluster->Now();
  req.AddPut(key, "v");
  req.range_id = cache.Lookup(key)->range_id;
  auto resp = cluster->Send(req);
  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status().IsRangeKeyMismatch()) << resp.status().ToString();
  EXPECT_GT(metrics.Sum("veloce_kv_range_mismatches_total"), 0.0);

  // Invalidate + refresh + retry: exactly one redirect recovers.
  cache.Invalidate(key);
  auto refreshed = cluster->LookupRange(key);
  ASSERT_TRUE(refreshed.ok());
  cache.Insert(*refreshed);
  EXPECT_GT(refreshed->generation, fresh->generation);
  req.range_id = cache.Lookup(key)->range_id;
  EXPECT_TRUE(cluster->Send(req).ok());
}

// ---------------------------------------------------------------------------
// Metrics audit: aborted splits/merges must not count
// ---------------------------------------------------------------------------

TEST(RangeStormTest, AbortedSplitsAndMergesDoNotCount) {
  ManualClock clock(100 * kSecond);
  StormOptions opts;
  opts.tenants = 1;
  opts.nodes = 4;  // leave one node without a replica for the move
  obs::MetricsRegistry metrics;
  auto cluster = MakeStormCluster(opts, &clock, nullptr, &metrics);
  const TenantId tenant = opts.first_tenant;
  const std::string split_key = AddTenantPrefix(tenant, "k032");

  BatchRequest seed;
  seed.tenant_id = tenant;
  seed.ts = cluster->Now();
  seed.AddPut(AddTenantPrefix(tenant, "k001"), "v");
  ASSERT_TRUE(cluster->Send(seed).ok());

  const double splits0 = metrics.Sum("veloce_kv_range_splits_total");
  const double merges0 = metrics.Sum("veloce_kv_range_merges_total");

  // A pending replica move defers splits and merges on the range — the
  // rejected attempts must leave the counters untouched.
  auto desc = cluster->LookupRange(split_key);
  ASSERT_TRUE(desc.ok());
  ASSERT_TRUE(
      cluster->StartReplicaMove(desc->range_id, desc->replicas[0], 3).ok());
  EXPECT_FALSE(cluster->SplitRange(split_key).ok());
  EXPECT_FALSE(cluster->MergeRanges(desc->range_id).ok());
  EXPECT_EQ(metrics.Sum("veloce_kv_range_splits_total"), splits0);
  EXPECT_EQ(metrics.Sum("veloce_kv_range_merges_total"), merges0);

  // Splitting at an existing boundary is a no-op, not a split.
  ASSERT_TRUE(cluster->AbortReplicaMove(desc->range_id).ok());
  ASSERT_TRUE(cluster->SplitRange(TenantPrefix(tenant)).ok());
  EXPECT_EQ(metrics.Sum("veloce_kv_range_splits_total"), splits0);

  // A real split counts exactly once, under reason=manual.
  ASSERT_TRUE(cluster->SplitRange(split_key).ok());
  EXPECT_EQ(metrics.Sum("veloce_kv_range_splits_total"), splits0 + 1);
  EXPECT_EQ(metrics.Value("veloce_kv_range_splits_total",
                          {{"reason", "manual"}}),
            splits0 + 1);
}

// ---------------------------------------------------------------------------
// Pipelined move: writes land while the snapshot streams
// ---------------------------------------------------------------------------

TEST(RangeStormTest, PipelinedMoveAbsorbsConcurrentWrites) {
  ManualClock clock(100 * kSecond);
  StormOptions opts;
  opts.tenants = 1;
  opts.nodes = 4;
  auto cluster = MakeStormCluster(opts, &clock);
  const TenantId tenant = opts.first_tenant;
  auto put = [&](int i, const std::string& v) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "k%03d", i);
    BatchRequest req;
    req.tenant_id = tenant;
    req.ts = cluster->Now();
    req.AddPut(AddTenantPrefix(tenant, buf), v);
    return cluster->Send(req);
  };
  for (int i = 0; i < 32; ++i) ASSERT_TRUE(put(i, "pre").ok());

  auto desc = cluster->LookupRange(TenantPrefix(tenant));
  ASSERT_TRUE(desc.ok());
  const NodeId from = desc->replicas[0];
  ASSERT_TRUE(cluster->StartReplicaMove(desc->range_id, from, 3).ok());

  // Stream the snapshot one small chunk at a time, interleaving fresh
  // writes — the delta replay at cutover must carry them to the new
  // replica.
  bool done = false;
  int written = 0;
  while (!done) {
    auto step = cluster->StepReplicaMove(desc->range_id, 512);
    ASSERT_TRUE(step.ok()) << step.status().ToString();
    done = *step;
    ASSERT_TRUE(put(written % 32, "during" + std::to_string(written)).ok());
    ++written;
  }
  ASSERT_GT(written, 1) << "snapshot finished in one chunk; shrink max_bytes";
  ASSERT_TRUE(cluster->FinishReplicaMove(desc->range_id).ok());

  auto moved = cluster->LookupRange(TenantPrefix(tenant));
  ASSERT_TRUE(moved.ok());
  EXPECT_FALSE(moved->HasReplica(from));
  EXPECT_TRUE(moved->HasReplica(3));
  EXPECT_GT(moved->generation, desc->generation);
  // The new replica holds everything, including writes that raced the
  // stream.
  EXPECT_EQ(cluster->RangeReplicaApplied(moved->range_id, 3),
            cluster->RangeLogCommittedIndex(moved->range_id));
  auto lead = storm::TenantSpanContents(cluster.get(), tenant);
  ASSERT_FALSE(lead.empty());
}

// ---------------------------------------------------------------------------
// Fault weather: storm under partitions stays linearizable
// ---------------------------------------------------------------------------

TEST(RangeStormTest, StormUnderPartitionsStaysLinearizable) {
  const uint64_t seeds = EnvOr("VELOCE_RANGESTORM_FAULT_SEEDS", 10);
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ManualClock clock(100 * kSecond);
    sim::FaultyMesh mesh(seed);
    StormOptions opts;
    opts.seed = seed;
    opts.tenants = 2;
    opts.keys_per_tenant = 12;
    opts.iterations = 12;
    opts.ops_per_iteration = 24;
    opts.mesh = &mesh;
    auto cluster = MakeStormCluster(opts, &clock, &mesh);
    RangeStormHarness storm(opts, &clock, cluster.get());
    ASSERT_EQ(storm.Run(), "");
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace veloce::kv
