#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"
#include "kv/cluster.h"
#include "kv/keys.h"
#include "kv/linearizability.h"
#include "kv/transaction.h"
#include "obs/metrics.h"
#include "sim/event_loop.h"
#include "sim/faulty_mesh.h"
#include "sim/sim_executor.h"
#include "storage/background.h"
#include "storage/engine.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "storage/wal.h"
#include "storage/write_batch.h"

namespace veloce::storage {
namespace {

// ---------------------------------------------------------------------------
// FaultInjectionEnv: programmable schedule
// ---------------------------------------------------------------------------

Status AppendAndSync(Env* env, const std::string& fname, const std::string& data,
                     bool sync = true) {
  std::unique_ptr<WritableFile> file;
  VELOCE_RETURN_IF_ERROR(env->NewWritableFile(fname, &file));
  VELOCE_RETURN_IF_ERROR(file->Append(data));
  if (sync) VELOCE_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

TEST(FaultEnvTest, RuleSkipAndCountWindow) {
  auto base = NewMemEnv();
  FaultInjectionEnv fault(base.get());
  FaultRule rule;
  rule.op = FaultOp::kAppend;
  rule.skip = 2;   // first two appends pass
  rule.count = 2;  // then exactly two fail
  fault.AddRule(rule);

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fault.NewWritableFile("f", &file).ok());
  EXPECT_TRUE(file->Append("a").ok());
  EXPECT_TRUE(file->Append("b").ok());
  EXPECT_EQ(file->Append("c").code(), Code::kIOError);
  EXPECT_EQ(file->Append("d").code(), Code::kIOError);
  EXPECT_TRUE(file->Append("e").ok());
  EXPECT_EQ(fault.injected(FaultOp::kAppend), 2u);
  EXPECT_EQ(fault.injected_faults(), 2u);
}

TEST(FaultEnvTest, RulesFilterByPathSubstring) {
  auto base = NewMemEnv();
  FaultInjectionEnv fault(base.get());
  FaultRule rule;
  rule.op = FaultOp::kSync;
  rule.path_substr = ".sst";
  rule.count = -1;  // forever
  fault.AddRule(rule);

  EXPECT_TRUE(AppendAndSync(&fault, "db/wal-000001.log", "x").ok());
  EXPECT_EQ(AppendAndSync(&fault, "db/000002.sst", "x").code(), Code::kIOError);
}

TEST(FaultEnvTest, RemoveAndClearRules) {
  auto base = NewMemEnv();
  FaultInjectionEnv fault(base.get());
  FaultRule rule;
  rule.op = FaultOp::kAppend;
  rule.count = -1;
  const int id = fault.AddRule(rule);
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fault.NewWritableFile("f", &file).ok());
  EXPECT_FALSE(file->Append("a").ok());
  fault.RemoveRule(id);
  EXPECT_TRUE(file->Append("b").ok());
  fault.AddRule(rule);
  fault.ClearRules();
  EXPECT_TRUE(file->Append("c").ok());
}

TEST(FaultEnvTest, DownDeviceIsTransientlyUnavailable) {
  auto base = NewMemEnv();
  FaultInjectionEnv fault(base.get());
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fault.NewWritableFile("f", &file).ok());
  ASSERT_TRUE(file->Append("pre").ok());

  fault.SetDown(true);
  EXPECT_TRUE(fault.down());
  EXPECT_EQ(file->Append("x").code(), Code::kUnavailable);
  EXPECT_EQ(file->Sync().code(), Code::kUnavailable);
  EXPECT_TRUE(Engine::IsTransientError(file->Append("x")));

  fault.SetDown(false);
  EXPECT_TRUE(file->Append("post").ok());
  EXPECT_TRUE(file->Sync().ok());
  std::string out;
  ASSERT_TRUE(fault.ReadFileToString("f", &out).ok());
  EXPECT_EQ(out, "prepost");
}

TEST(FaultEnvTest, CrashDropsUnsyncedBytes) {
  auto base = NewMemEnv();
  FaultInjectionEnv fault(base.get());
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fault.NewWritableFile("f", &file).ok());
  ASSERT_TRUE(file->Append("durable").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append("-volatile").ok());
  file.reset();

  fault.CrashAndDropUnsynced(/*torn_tail=*/false);
  std::string out;
  ASSERT_TRUE(fault.ReadFileToString("f", &out).ok());
  EXPECT_EQ(out, "durable");
  EXPECT_EQ(fault.crash_count(), 1u);
}

TEST(FaultEnvTest, CrashTornTailKeepsStrictPrefixOfUnsynced) {
  auto base = NewMemEnv();
  FaultInjectionEnv fault(base.get(), /*seed=*/42);
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fault.NewWritableFile("f", &file).ok());
  ASSERT_TRUE(file->Append("sync").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append(std::string(100, 'u')).ok());
  file.reset();

  fault.CrashAndDropUnsynced(/*torn_tail=*/true);
  std::string out;
  ASSERT_TRUE(fault.ReadFileToString("f", &out).ok());
  // The synced prefix always survives; at most a strict prefix of the
  // unsynced tail does (a full tail would mean nothing was torn).
  ASSERT_GE(out.size(), 4u);
  EXPECT_LT(out.size(), 104u);
  EXPECT_EQ(out.substr(0, 4), "sync");
}

TEST(FaultEnvTest, RenameMovesShadowStateAndCanFail) {
  auto base = NewMemEnv();
  FaultInjectionEnv fault(base.get());
  ASSERT_TRUE(AppendAndSync(&fault, "a", "payload").ok());
  ASSERT_TRUE(fault.RenameFile("a", "b").ok());
  EXPECT_FALSE(fault.FileExists("a"));
  std::string out;
  ASSERT_TRUE(fault.ReadFileToString("b", &out).ok());
  EXPECT_EQ(out, "payload");
  // The renamed file keeps its synced prefix across a crash.
  fault.CrashAndDropUnsynced(/*torn_tail=*/false);
  ASSERT_TRUE(fault.ReadFileToString("b", &out).ok());
  EXPECT_EQ(out, "payload");

  FaultRule rule;
  rule.op = FaultOp::kRename;
  fault.AddRule(rule);
  EXPECT_EQ(fault.RenameFile("b", "c").code(), Code::kIOError);
  EXPECT_TRUE(fault.FileExists("b"));
}

TEST(FaultEnvTest, BitFlipCorruptsExactlyOneBit) {
  auto base = NewMemEnv();
  FaultInjectionEnv fault(base.get(), /*seed=*/7);
  const std::string original(64, '\0');
  ASSERT_TRUE(AppendAndSync(&fault, "f", original).ok());

  FaultRule rule;
  rule.op = FaultOp::kRead;
  rule.bit_flip = true;
  fault.AddRule(rule);

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(fault.NewRandomAccessFile("f", &file).ok());
  std::string out;
  ASSERT_TRUE(file->Read(0, 64, &out).ok());
  ASSERT_EQ(out.size(), original.size());
  int flipped_bits = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    unsigned char diff = static_cast<unsigned char>(out[i] ^ original[i]);
    while (diff != 0) {
      flipped_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(fault.injected(FaultOp::kRead), 1u);

  // Only the returned buffer was corrupted, not the file itself.
  ASSERT_TRUE(file->Read(0, 64, &out).ok());
  EXPECT_EQ(out, original);
}

TEST(FaultEnvTest, ExportsInjectedFaultCounters) {
  obs::MetricsRegistry metrics;
  auto base = NewMemEnv();
  FaultInjectionEnv fault(base.get(), 1, &metrics);
  FaultRule rule;
  rule.op = FaultOp::kAppend;
  fault.AddRule(rule);
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fault.NewWritableFile("f", &file).ok());
  EXPECT_FALSE(file->Append("x").ok());
  EXPECT_EQ(metrics.Value("veloce_storage_injected_faults_total",
                          {{"kind", "append"}}),
            1.0);
}

// ---------------------------------------------------------------------------
// WAL replay: torn tail vs mid-log corruption
// ---------------------------------------------------------------------------

std::string BuildLog(Env* env, const std::vector<std::string>& records) {
  std::unique_ptr<WritableFile> file;
  VELOCE_CHECK_OK(env->NewWritableFile("log", &file));
  LogWriter writer(std::move(file));
  for (const auto& r : records) VELOCE_CHECK_OK(writer.AddRecord(r));
  std::string contents;
  VELOCE_CHECK_OK(env->ReadFileToString("log", &contents));
  return contents;
}

TEST(WalFaultTest, TruncatedTailIsDroppedNotCorrupt) {
  auto env = NewMemEnv();
  std::string contents = BuildLog(env.get(), {"first", "second"});
  contents.resize(contents.size() - 3);  // tear the last record's payload

  LogReader reader(contents);
  std::string payload;
  bool corruption = false;
  ASSERT_TRUE(reader.ReadRecord(&payload, &corruption));
  EXPECT_EQ(payload, "first");
  EXPECT_FALSE(reader.ReadRecord(&payload, &corruption));
  EXPECT_FALSE(corruption);
  EXPECT_TRUE(reader.tail_truncated());
  EXPECT_EQ(reader.records_read(), 1u);
  EXPECT_GT(reader.truncated_bytes(), 0u);
}

TEST(WalFaultTest, PartialHeaderAtEofIsTornTail) {
  auto env = NewMemEnv();
  std::string contents = BuildLog(env.get(), {"first"});
  contents.append("\x01\x02\x03");  // 3 bytes of a never-finished header

  LogReader reader(contents);
  std::string payload;
  bool corruption = false;
  ASSERT_TRUE(reader.ReadRecord(&payload, &corruption));
  EXPECT_FALSE(reader.ReadRecord(&payload, &corruption));
  EXPECT_FALSE(corruption);
  EXPECT_TRUE(reader.tail_truncated());
  EXPECT_EQ(reader.truncated_bytes(), 3u);
}

TEST(WalFaultTest, CrcMismatchAtExactEofIsTornTail) {
  auto env = NewMemEnv();
  std::string contents = BuildLog(env.get(), {"first", "second"});
  contents.back() ^= 0x40;  // damage the final record's last payload byte

  LogReader reader(contents);
  std::string payload;
  bool corruption = false;
  ASSERT_TRUE(reader.ReadRecord(&payload, &corruption));
  EXPECT_FALSE(reader.ReadRecord(&payload, &corruption));
  // A bad CRC on a frame ending exactly at EOF is a torn final write, not
  // mid-log damage.
  EXPECT_FALSE(corruption);
  EXPECT_TRUE(reader.tail_truncated());
}

TEST(WalFaultTest, MidLogCrcMismatchIsHardCorruption) {
  auto env = NewMemEnv();
  std::string contents = BuildLog(env.get(), {"first", "second"});
  contents[9] ^= 0x40;  // damage the FIRST record's payload

  LogReader reader(contents);
  std::string payload;
  bool corruption = false;
  EXPECT_FALSE(reader.ReadRecord(&payload, &corruption));
  EXPECT_TRUE(corruption);
  EXPECT_FALSE(reader.tail_truncated());
  EXPECT_EQ(reader.offset(), 0u) << "failing offset reported";
}

TEST(WalFaultTest, EngineRejectsMidLogCorruptionWithRecordContext) {
  auto env = NewMemEnv();
  EngineOptions opts;
  opts.env = env.get();
  {
    auto engine = *Engine::Open(opts);
    ASSERT_TRUE(engine->Put("a", "1").ok());
    ASSERT_TRUE(engine->Put("b", "2").ok());
  }
  std::vector<std::string> children;
  ASSERT_TRUE(env->GetChildren("veloce-db", &children).ok());
  std::string wal;
  for (const auto& c : children) {
    if (c.find("wal-") != std::string::npos) wal = "veloce-db/" + c;
  }
  ASSERT_FALSE(wal.empty());
  std::string contents;
  ASSERT_TRUE(env->ReadFileToString(wal, &contents).ok());
  contents[9] ^= 0x01;  // first record payload byte
  ASSERT_TRUE(env->DeleteFile(wal).ok());
  ASSERT_TRUE(env->WriteStringToFile(wal, contents).ok());

  auto reopened = Engine::Open(opts);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), Code::kCorruption);
  // The error pinpoints the failing record and offset.
  EXPECT_NE(reopened.status().ToString().find("record #1"), std::string::npos)
      << reopened.status().ToString();
  EXPECT_NE(reopened.status().ToString().find("offset 0"), std::string::npos);
}

TEST(WalFaultTest, EngineTruncatesTornTailAndCountsIt) {
  auto env = NewMemEnv();
  obs::MetricsRegistry metrics;
  EngineOptions opts;
  opts.env = env.get();
  opts.obs.metrics = &metrics;
  {
    auto engine = *Engine::Open(opts);
    ASSERT_TRUE(engine->Put("kept", "v").ok());
    ASSERT_TRUE(engine->Put("torn", "v").ok());
  }
  std::vector<std::string> children;
  ASSERT_TRUE(env->GetChildren("veloce-db", &children).ok());
  std::string wal;
  for (const auto& c : children) {
    if (c.find("wal-") != std::string::npos) wal = "veloce-db/" + c;
  }
  ASSERT_FALSE(wal.empty());
  std::string contents;
  ASSERT_TRUE(env->ReadFileToString(wal, &contents).ok());
  contents.resize(contents.size() - 2);  // tear the final record
  ASSERT_TRUE(env->DeleteFile(wal).ok());
  ASSERT_TRUE(env->WriteStringToFile(wal, contents).ok());

  auto engine = *Engine::Open(opts);
  std::string value;
  ASSERT_TRUE(engine->Get("kept", &value).ok());
  EXPECT_TRUE(engine->Get("torn", &value).IsNotFound());
  EXPECT_GE(metrics.Sum("veloce_storage_wal_truncated_records_total"), 1.0);
}

// ---------------------------------------------------------------------------
// Engine error handling: severity, retries, degraded mode, Resume
// ---------------------------------------------------------------------------

TEST(EngineFaultTest, SeverityClassification) {
  EXPECT_TRUE(Engine::IsTransientError(Status::IOError("flake")));
  EXPECT_TRUE(Engine::IsTransientError(Status::Unavailable("down")));
  EXPECT_FALSE(Engine::IsTransientError(Status::Corruption("bad crc")));
  EXPECT_FALSE(Engine::IsTransientError(Status::NotFound("gone")));
  EXPECT_FALSE(Engine::IsTransientError(Status::OK()));
}

TEST(EngineFaultTest, WalAppendFailureFailsWriteWithoutPoisoningEngine) {
  auto base = NewMemEnv();
  FaultInjectionEnv fault(base.get());
  EngineOptions opts;
  opts.env = &fault;
  auto engine = *Engine::Open(opts);
  ASSERT_TRUE(engine->Put("before", "v").ok());

  FaultRule rule;
  rule.op = FaultOp::kAppend;
  rule.path_substr = "wal-";
  fault.AddRule(rule);
  EXPECT_EQ(engine->Put("dropped", "v").code(), Code::kIOError);

  // A transient foreground I/O error is the caller's to retry; the engine
  // itself stays healthy and the next write goes through.
  EXPECT_FALSE(engine->degraded());
  ASSERT_TRUE(engine->Put("after", "v").ok());
  std::string value;
  ASSERT_TRUE(engine->Get("after", &value).ok());
  EXPECT_TRUE(engine->Get("dropped", &value).IsNotFound());
}

/// Engine wired to a FaultInjectionEnv and a deterministic SimExecutor, the
/// harness every degraded-mode test drives.
struct FaultyEngineFixture {
  explicit FaultyEngineFixture(uint64_t seed = 0x5EED) {
    base = NewMemEnv();
    fault = std::make_unique<FaultInjectionEnv>(base.get(), seed);
    executor = std::make_unique<sim::SimExecutor>(&loop);
    opts.env = fault.get();
    opts.memtable_bytes = 1 << 10;
    opts.background_executor = executor.get();
    opts.max_immutable_memtables = 8;  // avoid stall assists mid-fault
    opts.l0_stall_files = 100;
    opts.max_bg_retries = 3;
    opts.obs.metrics = &metrics;
    engine = *Engine::Open(opts);
  }

  // Writes until at least one memtable is sealed (background flush queued).
  void FillUntilRotation() {
    Random rnd(1);
    int i = 0;
    while (engine->NumImmutableMemTables() < 1) {
      ASSERT_TRUE(engine->Put("fill" + std::to_string(i++), rnd.String(128)).ok());
    }
  }

  sim::EventLoop loop;
  obs::MetricsRegistry metrics;
  std::unique_ptr<Env> base;
  std::unique_ptr<FaultInjectionEnv> fault;
  std::unique_ptr<sim::SimExecutor> executor;
  EngineOptions opts;
  std::unique_ptr<Engine> engine;
};

TEST(EngineFaultTest, TransientFlushFailureSelfHealsViaBackoffRetry) {
  FaultyEngineFixture fx;
  FaultRule rule;
  rule.op = FaultOp::kAppend;
  rule.path_substr = ".sst";
  rule.count = 2;  // two transient failures, then the disk heals
  fx.fault->AddRule(rule);

  fx.FillUntilRotation();
  fx.loop.Run();  // flush fails twice, backs off, then succeeds

  EXPECT_FALSE(fx.engine->degraded());
  EXPECT_TRUE(fx.engine->background_error().ok());
  EXPECT_GE(fx.engine->NumFilesAtLevel(0), 1);
  EXPECT_GE(fx.engine->stats().num_flushes, 1u);
  EXPECT_GE(fx.metrics.Sum("veloce_storage_bg_retries_total"), 2.0);
  EXPECT_EQ(fx.metrics.Sum("veloce_storage_degraded_entries_total"), 0.0);
  // Retries were delayed, not immediate: simulated time advanced by at
  // least the base backoff.
  EXPECT_GE(fx.loop.Now(), fx.opts.bg_retry_base_backoff);
}

TEST(EngineFaultTest, ExhaustedRetriesEnterDegradedModeThenResume) {
  FaultyEngineFixture fx;
  FaultRule rule;
  rule.op = FaultOp::kAppend;
  rule.path_substr = ".sst";
  rule.count = -1;  // the disk never heals on its own
  fx.fault->AddRule(rule);

  ASSERT_TRUE(fx.engine->Put("acked", "survives").ok());
  fx.FillUntilRotation();
  fx.loop.Run();  // retries exhaust -> read-only degraded mode

  EXPECT_TRUE(fx.engine->degraded());
  EXPECT_FALSE(fx.engine->background_error().ok());
  EXPECT_EQ(fx.metrics.Sum("veloce_storage_degraded_entries_total"), 1.0);
  EXPECT_EQ(fx.metrics.Sum("veloce_storage_degraded_mode"), 1.0);
  EXPECT_EQ(static_cast<int>(fx.metrics.Sum("veloce_storage_bg_retries_total")),
            fx.opts.max_bg_retries);

  // Reads still work; writes are refused with a transient Unavailable so
  // upper layers fail over instead of treating the data as lost.
  std::string value;
  ASSERT_TRUE(fx.engine->Get("acked", &value).ok());
  EXPECT_EQ(value, "survives");
  const Status write = fx.engine->Put("rejected", "v");
  EXPECT_EQ(write.code(), Code::kUnavailable);
  EXPECT_NE(write.ToString().find("degraded"), std::string::npos);
  EXPECT_EQ(fx.engine->Flush().code(), Code::kUnavailable);

  // Resume with the fault still active fails and stays degraded.
  EXPECT_EQ(fx.engine->Resume().code(), Code::kUnavailable);
  EXPECT_TRUE(fx.engine->degraded());

  // Once the fault clears, Resume re-drives the pending flush and recovers.
  fx.fault->ClearRules();
  ASSERT_TRUE(fx.engine->Resume().ok());
  EXPECT_FALSE(fx.engine->degraded());
  EXPECT_GE(fx.engine->NumFilesAtLevel(0), 1);
  EXPECT_EQ(fx.metrics.Sum("veloce_storage_degraded_exits_total"), 1.0);
  EXPECT_EQ(fx.metrics.Sum("veloce_storage_degraded_mode"), 0.0);
  ASSERT_TRUE(fx.engine->Put("rejected", "now accepted").ok());
  fx.loop.Run();
  ASSERT_TRUE(fx.engine->Get("rejected", &value).ok());
  EXPECT_EQ(value, "now accepted");
}

TEST(EngineFaultTest, HardManifestErrorSkipsRetriesAndDegradesImmediately) {
  FaultyEngineFixture fx;
  FaultRule rule;
  rule.op = FaultOp::kRename;
  rule.path_substr = "MANIFEST";
  rule.count = -1;
  rule.error = Status::Corruption("manifest device torched");
  fx.fault->AddRule(rule);

  fx.FillUntilRotation();
  fx.loop.Run();

  // Corruption is not retryable: no backoff attempts, straight to degraded.
  EXPECT_TRUE(fx.engine->degraded());
  EXPECT_EQ(fx.engine->background_error().code(), Code::kCorruption);
  EXPECT_EQ(fx.metrics.Sum("veloce_storage_bg_retries_total"), 0.0);

  fx.fault->ClearRules();
  ASSERT_TRUE(fx.engine->Resume().ok());
  EXPECT_FALSE(fx.engine->degraded());
}

TEST(EngineFaultTest, TransientCompactionFailureSelfHeals) {
  FaultyEngineFixture fx;
  fx.FillUntilRotation();
  fx.loop.Run();
  ASSERT_GE(fx.engine->NumFilesAtLevel(0), 1);

  // Fail the next .sst write once (it lands on a flush or a compaction
  // output — both take the same retry path), then heal; keep writing until
  // a compaction has run end to end.
  FaultRule rule;
  rule.op = FaultOp::kAppend;
  rule.path_substr = ".sst";
  rule.count = 1;
  fx.fault->AddRule(rule);
  Random rnd(2);
  for (int i = 0; fx.engine->stats().num_compactions < 1; ++i) {
    ASSERT_LT(i, 20000) << "no compaction after 20k writes";
    ASSERT_TRUE(fx.engine->Put("more" + std::to_string(i), rnd.String(128)).ok());
    fx.loop.Run();
  }
  EXPECT_GE(fx.engine->stats().num_compactions, 1u);
  EXPECT_GE(fx.fault->injected(FaultOp::kAppend), 1u);
  EXPECT_FALSE(fx.engine->degraded());
  EXPECT_TRUE(fx.engine->background_error().ok());
}

TEST(EngineFaultTest, ReadBitFlipSurfacesCorruption) {
  auto base = NewMemEnv();
  FaultInjectionEnv fault(base.get(), /*seed=*/99);
  EngineOptions opts;
  opts.env = &fault;
  opts.block_cache_bytes = 0;  // force every read through the (faulty) disk
  opts.bloom_filters = false;
  auto engine = *Engine::Open(opts);
  Random rnd(3);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine->Put("key" + std::to_string(i), rnd.String(64)).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());

  FaultRule rule;
  rule.op = FaultOp::kRead;
  rule.path_substr = ".sst";
  rule.count = -1;
  rule.bit_flip = true;
  fault.AddRule(rule);

  std::string value;
  const Status s = engine->Get("key7", &value);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Code::kCorruption) << s.ToString();

  // Silent corruption is caught per-read; once the media heals the same
  // key reads fine again (nothing was cached corrupt).
  fault.ClearRules();
  ASSERT_TRUE(engine->Get("key7", &value).ok());
}

// ---------------------------------------------------------------------------
// Chaos harness: seeded randomized crash-point testing
// ---------------------------------------------------------------------------

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::strtoull(v, nullptr, 0);
}

std::string ChaosKey(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "key-%05d", i);
  return buf;
}

std::string ChaosValue(int i) {
  return ChaosKey(i) + "=" + std::string(20 + (i * 7) % 120,
                                         static_cast<char>('a' + i % 26));
}

/// The acked-writes invariant under crash injection: after writing keys
/// 0..n-1 in order, crashing (dropping unsynced bytes, possibly keeping a
/// torn tail), and reopening, the recovered state must equal the first K
/// writes for some K — never a gap, never a corrupt value, and with
/// sync_wal=true, K == n (every acked write was durable).
///
/// Deterministic and shrinkable: every iteration derives from
/// VELOCE_CHAOS_SEED + iteration index; to replay one failing iteration,
/// re-run with VELOCE_CHAOS_SEED=<seed printed in the failure> and
/// VELOCE_CHAOS_ITERS=1.
TEST(FaultChaosTest, CrashRecoveryPreservesAckedPrefix) {
  const uint64_t iters = EnvOr("VELOCE_CHAOS_ITERS", 500);
  const uint64_t base_seed = EnvOr("VELOCE_CHAOS_SEED", 0xC4A05u);

  for (uint64_t iter = 0; iter < iters; ++iter) {
    const uint64_t seed = base_seed + iter;
    SCOPED_TRACE("chaos iteration " + std::to_string(iter) + " seed " +
                 std::to_string(seed));
    Random rnd(seed);
    auto base = NewMemEnv();
    FaultInjectionEnv fault(base.get(), seed);

    EngineOptions opts;
    opts.env = &fault;
    opts.dir = "chaos";
    // Small memtables so flushes, manifest writes, WAL rotations, and
    // compactions all land inside the crash window.
    opts.memtable_bytes = 512 + rnd.Uniform(2048);
    opts.l0_compaction_trigger = 2;
    opts.sync_wal = (iter % 2 == 0);
    opts.group_commit = (iter % 4 < 2);
    opts.block_cache_bytes = 1 << 16;

    // Crash point: after a pseudo-random number of acked writes.
    const int n = 5 + static_cast<int>(rnd.Uniform(45));
    {
      auto engine = *Engine::Open(opts);
      for (int i = 0; i < n; ++i) {
        ASSERT_TRUE(engine->Put(ChaosKey(i), ChaosValue(i)).ok());
      }
    }  // destroy the engine before rewriting its files
    fault.CrashAndDropUnsynced(/*torn_tail=*/rnd.Uniform(2) == 0);

    auto reopened = Engine::Open(opts);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    auto& engine = *reopened;

    // Find K: the longest recovered prefix.
    int k = 0;
    std::string value;
    for (; k < n; ++k) {
      Status s = engine->Get(ChaosKey(k), &value);
      if (s.IsNotFound()) break;
      ASSERT_TRUE(s.ok()) << s.ToString();
      ASSERT_EQ(value, ChaosValue(k)) << "corrupt value for key " << k;
    }
    // Nothing beyond K may survive (writes are ordered through one WAL, so
    // the crash can only drop a suffix).
    for (int i = k; i < n; ++i) {
      EXPECT_TRUE(engine->Get(ChaosKey(i), &value).IsNotFound())
          << "key " << i << " survived but key " << k << " did not";
    }
    if (opts.sync_wal) {
      EXPECT_EQ(k, n) << "sync_wal=true lost acked writes";
    }
    // The recovered engine must accept new writes.
    ASSERT_TRUE(engine->Put("post-crash", "ok").ok());
    ASSERT_TRUE(engine->Get("post-crash", &value).ok());
  }
}

/// The transactional acked-write invariant under fault injection: commit
/// acknowledgements from the pipelined/parallel hot path must imply
/// durability. Transactions stream intent batches through the write
/// pipeline while transient WAL faults fire; Commit() may only acknowledge
/// after proving every pipelined batch landed, so an acked transaction's
/// writes are all visible afterwards and a failed commit leaves nothing
/// behind. Seeded like CrashRecoveryPreservesAckedPrefix above
/// (VELOCE_CHAOS_SEED / VELOCE_CHAOS_ITERS).
TEST(FaultChaosTest, PipelinedTxnsNeverLoseAckedWrites) {
  const uint64_t iters = EnvOr("VELOCE_CHAOS_ITERS", 150);
  const uint64_t base_seed = EnvOr("VELOCE_CHAOS_SEED", 0xC4A05u);

  auto base = NewMemEnv();
  FaultInjectionEnv fault(base.get(), base_seed);
  ThreadPoolExecutor pool(2);

  kv::KVClusterOptions copts;
  copts.num_nodes = 1;
  copts.replication_factor = 1;
  copts.engine_options.env = &fault;
  copts.engine_options.sync_wal = true;
  kv::KVCluster cluster(copts);
  VELOCE_CHECK_OK(cluster.CreateTenantKeyspace(10));

  kv::TxnOptions topts;
  topts.executor = &pool;
  topts.max_buffered_writes = 2;  // several pipelined intent batches per txn

  struct TxnWrite {
    std::string key;
    std::string value;
  };
  std::vector<TxnWrite> acked;
  std::vector<std::string> unacked_keys;

  for (uint64_t iter = 0; iter < iters; ++iter) {
    const uint64_t seed = base_seed + iter;
    SCOPED_TRACE("txn chaos iteration " + std::to_string(iter) + " seed " +
                 std::to_string(seed));
    Random rnd(seed);

    // Roughly a third of the iterations run inside a transient WAL fault
    // window wide enough to hit an in-flight pipelined batch.
    int rule_id = -1;
    if (rnd.Uniform(3) == 0) {
      FaultRule rule;
      rule.op = FaultOp::kAppend;
      rule.path_substr = "wal-";
      rule.skip = static_cast<int>(rnd.Uniform(4));
      rule.count = 1 + static_cast<int>(rnd.Uniform(2));
      rule_id = fault.AddRule(rule);
    }

    const int n = 3 + static_cast<int>(rnd.Uniform(8));
    std::vector<TxnWrite> writes;
    writes.reserve(n);
    kv::Transaction txn(&cluster, 10, 0, nullptr, topts);
    Status op_status = Status::OK();
    for (int i = 0; i < n && op_status.ok(); ++i) {
      TxnWrite w;
      w.key = kv::AddTenantPrefix(
          10, "t" + std::to_string(iter) + "-k" + std::to_string(i));
      w.value = "v" + std::to_string(rnd.Next() % 100000);
      op_status = txn.Put(w.key, w.value);
      writes.push_back(std::move(w));
    }
    const Status commit = op_status.ok() ? txn.Commit() : op_status;
    if (!txn.finalized()) (void)txn.Rollback();
    if (rule_id >= 0) fault.RemoveRule(rule_id);
    if (commit.ok()) {
      for (auto& w : writes) acked.push_back(std::move(w));
    } else {
      for (auto& w : writes) unacked_keys.push_back(std::move(w.key));
    }
  }
  pool.Drain();

  auto read = [&cluster](const std::string& key) {
    kv::BatchRequest req;
    req.tenant_id = 10;
    req.ts = cluster.Now();
    req.AddGet(key);
    return cluster.Send(req);
  };
  for (const auto& w : acked) {
    auto resp = read(w.key);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_TRUE(resp->responses[0].found) << "acked write lost: " << w.key;
    EXPECT_EQ(resp->responses[0].value, w.value);
  }
  // A commit that was NOT acknowledged must leave no trace: atomicity means
  // none of the transaction's writes become visible.
  for (const auto& key : unacked_keys) {
    auto resp = read(key);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_FALSE(resp->responses[0].found)
        << "write from unacked txn visible: " << key;
  }
  // With the default seed the fault windows actually bite; otherwise this
  // would degrade into a smoke test of the happy path.
  if (EnvOr("VELOCE_CHAOS_SEED", 0xC4A05u) == 0xC4A05u && iters >= 100) {
    EXPECT_GT(fault.injected(FaultOp::kAppend), 0u) << "no WAL fault ever fired";
  }
}

/// Storage faults and network faults composed from ONE scenario seed: every
/// iteration derives a disk-fault schedule (DeriveSeed "storage") and a
/// mesh trajectory (DeriveSeed "mesh", inside FaultyMesh) from the same
/// seed, runs a recorded workload against a 3-node replicated cluster
/// while WAL appends fail, links drop/duplicate, and nodes get isolated —
/// and asserts the per-key linearizability checker accepts the history on
/// EVERY iteration. Seeded like the harnesses above (VELOCE_CHAOS_SEED /
/// VELOCE_CHAOS_ITERS).
TEST(FaultChaosTest, ComposedStorageAndNetworkFaultsStayLinearizable) {
  const uint64_t iters = EnvOr("VELOCE_CHAOS_ITERS", 500);
  const uint64_t base_seed = EnvOr("VELOCE_CHAOS_SEED", 0xC4A05u);
  uint64_t storage_faults_fired = 0;
  uint64_t mesh_faults_fired = 0;

  for (uint64_t iter = 0; iter < iters; ++iter) {
    const uint64_t seed = base_seed + iter;
    SCOPED_TRACE("composed chaos iteration " + std::to_string(iter) +
                 " seed " + std::to_string(seed));
    Random rnd(seed);
    auto base = NewMemEnv();
    FaultInjectionEnv fault(base.get(), DeriveSeed(seed, "storage"));
    ManualClock clock(100 * kSecond);
    sim::FaultyMesh mesh(seed);
    sim::MeshProfile profile;
    profile.drop = rnd.NextDouble() * 0.25;
    profile.dup = rnd.NextDouble() * 0.15;
    profile.reorder = rnd.NextDouble() * 0.15;
    mesh.set_profile(profile);

    kv::KVClusterOptions copts;
    copts.num_nodes = 3;
    copts.replication_factor = 3;
    copts.clock = &clock;
    copts.transport = &mesh;
    copts.liveness_duration = 2 * kSecond;
    copts.engine_options.env = &fault;
    copts.engine_options.sync_wal = true;
    kv::KVCluster cluster(copts);
    VELOCE_CHECK_OK(cluster.CreateTenantKeyspace(10));
    cluster.TickHeartbeats();

    // Transient WAL-append fault window on one node's engine, composed
    // with whatever the mesh does to the links this iteration.
    int rule_id = -1;
    if (rnd.Uniform(2) == 0) {
      FaultRule rule;
      rule.op = FaultOp::kAppend;
      rule.path_substr =
          "kvnode-" + std::to_string(rnd.Uniform(3)) + "/wal-";
      rule.skip = static_cast<int>(rnd.Uniform(6));
      rule.count = 1 + static_cast<int>(rnd.Uniform(3));
      rule_id = fault.AddRule(rule);
    }

    kv::HistoryRecorder history;
    int next_value = 0;
    const int ops = 15 + static_cast<int>(rnd.Uniform(15));
    for (int i = 0; i < ops; ++i) {
      const uint64_t dice = rnd.Uniform(12);
      if (dice == 0) {
        mesh.Isolate(static_cast<uint32_t>(rnd.Uniform(3)), 3);
      } else if (dice == 1) {
        const uint32_t from = static_cast<uint32_t>(rnd.Uniform(3));
        mesh.PartitionLink(from, static_cast<uint32_t>((from + 1) % 3));
      } else if (dice <= 3) {
        mesh.HealAll();
      }
      clock.Advance(rnd.Uniform(700 * kMilli));
      if (rnd.Uniform(3) == 0) cluster.TickHeartbeats();

      const std::string key =
          kv::AddTenantPrefix(10, "c" + std::to_string(rnd.Uniform(3)));
      kv::BatchRequest req;
      req.tenant_id = 10;
      req.ts = cluster.Now();
      if (rnd.Uniform(2) == 0) {
        const std::string value = "v" + std::to_string(next_value++);
        const size_t id = history.BeginWrite(key, value);
        req.AddPut(key, value);
        auto resp = cluster.Send(req);
        // Conservative: any failure is "maybe applied" (sound — acked ops
        // keep their strict obligations).
        history.EndWrite(id, resp.ok(), /*maybe=*/!resp.ok());
      } else {
        const size_t id = history.BeginRead(key);
        req.AddGet(key);
        auto resp = cluster.Send(req);
        if (resp.ok()) {
          history.EndRead(id, true, resp->responses[0].found,
                          resp->responses[0].value);
        } else {
          history.EndRead(id, false, false, "");
        }
      }
    }

    // Quiesce: lift both fault layers, let liveness recover, converge.
    if (rule_id >= 0) fault.RemoveRule(rule_id);
    mesh.HealAll();
    clock.Advance(3 * kSecond);
    cluster.TickHeartbeats();
    cluster.TickHeartbeats();
    for (kv::NodeId n = 0; n < 3; ++n) {
      if (cluster.node(n)->engine() != nullptr) {
        (void)cluster.node(n)->engine()->Resume();
      }
      ASSERT_TRUE(cluster.CatchUpNode(n).ok());
    }
    for (int k = 0; k < 3; ++k) {
      const std::string key = kv::AddTenantPrefix(10, "c" + std::to_string(k));
      const size_t id = history.BeginRead(key);
      kv::BatchRequest req;
      req.tenant_id = 10;
      req.ts = cluster.Now();
      req.AddGet(key);
      auto resp = cluster.Send(req);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      history.EndRead(id, true, resp->responses[0].found,
                      resp->responses[0].value);
    }

    const auto result = kv::CheckLinearizability(history.Snapshot());
    ASSERT_TRUE(result.ok) << result.explanation;
    storage_faults_fired += fault.injected(FaultOp::kAppend);
    mesh_faults_fired += mesh.stats().dropped + mesh.stats().blocked;
  }
  // Both fault layers must actually bite under the default seed.
  if (base_seed == 0xC4A05u && iters >= 100) {
    EXPECT_GT(storage_faults_fired, 0u) << "no storage fault ever fired";
    EXPECT_GT(mesh_faults_fired, 0u) << "no network fault ever fired";
  }
}

}  // namespace
}  // namespace veloce::storage
