#include <gtest/gtest.h>

#include "kv/cluster.h"
#include "tenant/authorizer.h"
#include "tenant/controller.h"

namespace veloce::tenant {
namespace {

class TenantControllerTest : public ::testing::Test {
 protected:
  TenantControllerTest() {
    kv::KVClusterOptions opts;
    opts.num_nodes = 3;
    cluster_ = std::make_unique<kv::KVCluster>(opts);
    controller_ = std::make_unique<TenantController>(cluster_.get(), &ca_);
  }

  CertificateAuthority ca_;
  std::unique_ptr<kv::KVCluster> cluster_;
  std::unique_ptr<TenantController> controller_;
};

TEST_F(TenantControllerTest, CreateAssignsIdsAndKeyspace) {
  auto t1 = *controller_->CreateTenant("alpha");
  auto t2 = *controller_->CreateTenant("beta");
  EXPECT_NE(t1.id, t2.id);
  EXPECT_EQ(t1.state, TenantState::kActive);

  // Keyspaces are carved out as dedicated ranges.
  bool found = false;
  for (const auto& desc : cluster_->Ranges()) {
    if (desc.tenant_id == t1.id) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(TenantControllerTest, MetadataPersistsInSystemKeyspace) {
  auto t = *controller_->CreateTenant("gamma", {"us-central1", "europe-west1"});
  auto loaded = *controller_->GetTenant(t.id);
  EXPECT_EQ(loaded.name, "gamma");
  ASSERT_EQ(loaded.regions.size(), 2u);
  EXPECT_EQ(loaded.regions[1], "europe-west1");
}

TEST_F(TenantControllerTest, ListTenants) {
  ASSERT_TRUE(controller_->CreateTenant("a").ok());
  ASSERT_TRUE(controller_->CreateTenant("b").ok());
  ASSERT_TRUE(controller_->CreateTenant("c").ok());
  auto all = *controller_->ListTenants();
  EXPECT_EQ(all.size(), 3u);
}

TEST_F(TenantControllerTest, SuspendResumeLifecycle) {
  auto t = *controller_->CreateTenant("sleeper");
  ASSERT_TRUE(controller_->SuspendTenant(t.id).ok());
  EXPECT_EQ((*controller_->GetTenant(t.id)).state, TenantState::kSuspended);
  ASSERT_TRUE(controller_->ResumeTenant(t.id).ok());
  EXPECT_EQ((*controller_->GetTenant(t.id)).state, TenantState::kActive);
}

TEST_F(TenantControllerTest, DestroyRevokesCertAndDeletesData) {
  auto t = *controller_->CreateTenant("doomed");
  const TenantCert cert = *controller_->IssueCert(t.id);

  // Write some data as the tenant.
  AuthorizedKvService service(cluster_.get(), &ca_);
  kv::BatchRequest put;
  put.ts = cluster_->Now();
  put.AddPut(kv::AddTenantPrefix(t.id, "row"), "data");
  ASSERT_TRUE(service.Send(cert, put).ok());

  ASSERT_TRUE(controller_->DestroyTenant(t.id).ok());
  EXPECT_EQ((*controller_->GetTenant(t.id)).state, TenantState::kDestroyed);
  // The cert no longer works.
  kv::BatchRequest get;
  get.ts = cluster_->Now();
  get.AddGet(kv::AddTenantPrefix(t.id, "row"));
  EXPECT_TRUE(service.Send(cert, get).status().IsUnauthorized());
  // Data is gone (checked via the system tenant).
  kv::BatchRequest sysget;
  sysget.tenant_id = kv::kSystemTenantId;
  sysget.ts = cluster_->Now();
  sysget.AddGet(kv::AddTenantPrefix(t.id, "row"));
  EXPECT_FALSE((*cluster_->Send(sysget)).responses[0].found);
}

TEST_F(TenantControllerTest, EcpuLimitRoundTrips) {
  auto t = *controller_->CreateTenant("limited");
  ASSERT_TRUE(controller_->SetEcpuLimit(t.id, 10.0).ok());
  EXPECT_DOUBLE_EQ((*controller_->GetTenant(t.id)).ecpu_limit_vcpus, 10.0);
}

TEST_F(TenantControllerTest, GetUnknownTenantFails) {
  EXPECT_TRUE(controller_->GetTenant(9999).status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Certificates / authorization boundary
// ---------------------------------------------------------------------------

TEST(CertificateAuthorityTest, IssueValidateRevoke) {
  CertificateAuthority ca;
  const TenantCert cert = ca.Issue(42);
  EXPECT_TRUE(ca.Validate(cert));
  // Forged secret fails.
  EXPECT_FALSE(ca.Validate({42, cert.secret ^ 1}));
  // Cert for another tenant fails.
  EXPECT_FALSE(ca.Validate({43, cert.secret}));
  ca.Revoke(42);
  EXPECT_FALSE(ca.Validate(cert));
}

TEST(CertificateAuthorityTest, MultipleCertsPerTenantAllValid) {
  // Every SQL node of a tenant holds its own certificate; issuing for a
  // new node must not break nodes already serving.
  CertificateAuthority ca;
  const TenantCert first = ca.Issue(7);
  const TenantCert second = ca.Issue(7);
  EXPECT_NE(first.secret, second.secret);
  EXPECT_TRUE(ca.Validate(first));
  EXPECT_TRUE(ca.Validate(second));
  ca.Revoke(7);
  EXPECT_FALSE(ca.Validate(first));
  EXPECT_FALSE(ca.Validate(second));
}

class AuthBoundaryTest : public TenantControllerTest {};

TEST_F(AuthBoundaryTest, CertIdentityOverridesClaimedTenant) {
  auto t1 = *controller_->CreateTenant("one");
  auto t2 = *controller_->CreateTenant("two");
  const TenantCert cert1 = *controller_->IssueCert(t1.id);

  AuthorizedKvService service(cluster_.get(), &ca_);
  // A malicious SQL node claims tenant 2's identity in the request body but
  // presents tenant 1's certificate: the claimed id must be ignored and the
  // keyspace check applied to the authenticated identity.
  kv::BatchRequest req;
  req.tenant_id = t2.id;  // lie
  req.ts = cluster_->Now();
  req.AddGet(kv::AddTenantPrefix(t2.id, "secret-row"));
  EXPECT_TRUE(service.Send(cert1, req).status().IsUnauthorized());
}

TEST_F(AuthBoundaryTest, InvalidCertRejected) {
  AuthorizedKvService service(cluster_.get(), &ca_);
  kv::BatchRequest req;
  req.ts = cluster_->Now();
  req.AddGet("anything");
  EXPECT_TRUE(service.Send({12345, 999}, req).status().IsUnauthorized());
}

TEST_F(AuthBoundaryTest, ValidCertCanAccessOwnKeyspaceOnly) {
  auto t = *controller_->CreateTenant("worker");
  const TenantCert cert = *controller_->IssueCert(t.id);
  AuthorizedKvService service(cluster_.get(), &ca_);

  kv::BatchRequest put;
  put.ts = cluster_->Now();
  put.AddPut(kv::AddTenantPrefix(t.id, "mine"), "v");
  EXPECT_TRUE(service.Send(cert, put).ok());

  kv::BatchRequest stolen;
  stolen.ts = cluster_->Now();
  stolen.AddGet(kv::AddTenantPrefix(kv::kSystemTenantId, "tenants/"));
  EXPECT_TRUE(service.Send(cert, stolen).status().IsUnauthorized());
}

}  // namespace
}  // namespace veloce::tenant
