// Tests for the scenario harness: seed derivation, the deterministic
// JSON writer, the BenchReport snapshot schema, the env builder, the
// event log, and — the load-bearing property — that every built-in
// scenario is byte-deterministic under a fixed seed and trace-divergent
// under different seeds, and that invariant violations actually fail.

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "scenario/env_builder.h"
#include "scenario/json_writer.h"
#include "scenario/report.h"
#include "scenario/scenarios.h"

namespace veloce::scenario {
namespace {

// ---------------------------------------------------------------------------
// DeriveSeed

TEST(DeriveSeedTest, DeterministicPerStream) {
  EXPECT_EQ(DeriveSeed(42, "load"), DeriveSeed(42, "load"));
  EXPECT_NE(DeriveSeed(42, "load"), DeriveSeed(42, "fault"));
  EXPECT_NE(DeriveSeed(42, "load"), DeriveSeed(43, "load"));
}

TEST(DeriveSeedTest, StreamsAreWellMixed) {
  // Sub-seeds from one base must not collide across a realistic set of
  // stream names, and must all differ from the base itself.
  std::set<uint64_t> seen;
  for (const char* stream : {"load", "fault", "pacing", "stampede",
                             "workload", "jitter", "keys", "noise"}) {
    const uint64_t s = DeriveSeed(0xC10D, stream);
    EXPECT_NE(s, 0xC10Du) << stream;
    EXPECT_TRUE(seen.insert(s).second) << "collision on " << stream;
  }
}

// ---------------------------------------------------------------------------
// JsonWriter

TEST(JsonWriterTest, WritesNestedDocument) {
  JsonWriter w;
  w.BeginObject()
      .Field("name", "demo")
      .Field("count", 3)
      .Field("ratio", 0.5)
      .Field("ok", true)
      .Key("items")
      .BeginArray()
      .Value(1)
      .Value(2)
      .EndArray()
      .EndObject();
  ASSERT_TRUE(w.complete());
  EXPECT_EQ(w.str(),
            "{\"name\":\"demo\",\"count\":3,\"ratio\":0.5,\"ok\":true,"
            "\"items\":[1,2]}");
}

TEST(JsonWriterTest, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  JsonWriter w;
  w.BeginObject().Field("k", "line1\nline2").EndObject();
  EXPECT_EQ(w.str(), "{\"k\":\"line1\\nline2\"}");
}

TEST(JsonWriterTest, DeterministicDoubles) {
  JsonWriter a, b;
  a.BeginObject().Field("v", 3.140000).EndObject();
  b.BeginObject().Field("v", 3.14).EndObject();
  EXPECT_EQ(a.str(), b.str());
}

// ---------------------------------------------------------------------------
// BenchReport

TEST(BenchReportTest, SchemaLayoutIsFrozen) {
  BenchReport r("demo", 7);
  r.AddParam("tenants", 8);
  r.AddMetric("p99_ms", 12.5);
  r.AssertLe("p99_bound", 12.5, 100.0, "p99 under bound");
  r.Gate("speedup", 3.0, 2.0);
  const std::string json = r.ToJson();
  // Top-level keys in frozen order.
  const char* keys[] = {"\"name\"",       "\"seed\"",  "\"schema_version\"",
                        "\"params\"",     "\"metrics\"", "\"invariants\"",
                        "\"gates\"",      "\"passed\""};
  size_t pos = 0;
  for (const char* key : keys) {
    const size_t found = json.find(key, pos);
    ASSERT_NE(found, std::string::npos) << key << " missing in " << json;
    pos = found;
  }
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"passed\":true"), std::string::npos);
}

TEST(BenchReportTest, PassedIsAndOfInvariantsAndGates) {
  BenchReport r("demo");
  EXPECT_TRUE(r.passed());  // vacuously
  r.AssertGe("enough", 5, 1);
  EXPECT_TRUE(r.passed());
  r.AssertEq("exact", 3, 4);
  EXPECT_FALSE(r.passed());
  EXPECT_FALSE(r.invariants()[1].passed);
}

TEST(BenchReportTest, GateFailsBelowThreshold) {
  BenchReport r("demo");
  r.Gate("speedup", 1.5, 2.0);
  EXPECT_FALSE(r.passed());
  EXPECT_NE(r.ToJson().find("\"passed\":false"), std::string::npos);
}

TEST(BenchReportTest, MetricLookupAndWriteFile) {
  BenchReport r("write_file_demo");
  r.AddMetric("acked", static_cast<int64_t>(41));
  EXPECT_DOUBLE_EQ(r.Metric("acked"), 41.0);
  EXPECT_DOUBLE_EQ(r.Metric("missing"), 0.0);

  auto path = r.WriteFile(::testing::TempDir());
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_NE(path->find("BENCH_write_file_demo.json"), std::string::npos);
  FILE* f = std::fopen(path->c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path->c_str());
}

// ---------------------------------------------------------------------------
// EventLog

TEST(EventLogTest, SerializeAndFingerprint) {
  EventLog log;
  log.Record(5 * kMilli, "phase", "warmup");
  log.Record(kSecond, "fault", "kAppend .sst");
  EXPECT_EQ(log.Serialize(),
            "5000000 phase warmup\n1000000000 fault kAppend .sst\n");

  EventLog same;
  same.Record(5 * kMilli, "phase", "warmup");
  same.Record(kSecond, "fault", "kAppend .sst");
  EXPECT_EQ(log.Fingerprint(), same.Fingerprint());

  EventLog other;
  other.Record(5 * kMilli, "phase", "warmup");
  other.Record(kSecond, "fault", "kAppend .wal");
  EXPECT_NE(log.Fingerprint(), other.Fingerprint());
}

// ---------------------------------------------------------------------------
// ScenarioEnvBuilder

TEST(EnvBuilderTest, BuildKvAssignsRoundRobinRegions) {
  auto env = ScenarioEnvBuilder()
                 .KvNodes(4)
                 .Regions({"us-east1", "europe-west1"})
                 .BuildKv();
  ASSERT_NE(env.cluster, nullptr);
  EXPECT_EQ(env.cluster->num_nodes(), 4u);
  EXPECT_EQ(env.cluster->node(0)->region(), "us-east1");
  EXPECT_EQ(env.cluster->node(1)->region(), "europe-west1");
  EXPECT_EQ(env.cluster->node(2)->region(), "us-east1");
}

TEST(EnvBuilderTest, BuildSqlStackServesQueries) {
  auto stack = ScenarioEnvBuilder().KvNodes(3).BuildSqlStack();
  ASSERT_NE(stack, nullptr);
  ASSERT_NE(stack->session, nullptr);
  ASSERT_TRUE(stack->session->Execute("CREATE TABLE t (id INT PRIMARY KEY)")
                  .status()
                  .ok());
  ASSERT_TRUE(
      stack->session->Execute("INSERT INTO t VALUES (1)").status().ok());
  auto rows = stack->session->Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows[0][0].int_value(), 1);
}

TEST(EnvBuilderTest, WithFaultEnvWiresInjectionUnderTheEngines) {
  auto env = ScenarioEnvBuilder().KvNodes(1).WithFaultEnv().BuildServerless();
  ASSERT_NE(env.fault, nullptr);
  ASSERT_NE(env.cluster, nullptr);
  // The rules surface is live: arming and clearing must be reachable from
  // what the builder returned (the scenarios drive exactly this).
  storage::FaultRule rule;
  rule.op = storage::FaultOp::kAppend;
  rule.path_substr = ".sst";
  rule.count = 1;
  env.fault->AddRule(rule);
  env.fault->ClearRules();
}

// ---------------------------------------------------------------------------
// RunScenario + registry

TEST(ScenarioRegistryTest, BuiltinsAreRegistered) {
  RegisterBuiltinScenarios();
  const auto names = ScenarioNames();
  for (const char* want : {"az-outage", "black-friday", "gray-partition",
                           "range-storm", "rolling-upgrade-under-chaos",
                           "tenant-stampede"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << want;
  }
}

TEST(ScenarioRegistryTest, UnknownScenarioIsNotFound) {
  auto result = RunScenario("no-such-weather", {});
  EXPECT_FALSE(result.ok());
}

// The harness must detect violated invariants, not just record them: a
// scenario that "loses" an acked write has passed=false end to end.
TEST(ScenarioRegistryTest, InvariantViolationFailsTheRun) {
  class LossyScenario final : public Scenario {
   public:
    std::string_view name() const override { return "test-lossy"; }
    std::string_view description() const override {
      return "deliberately drops an acked write";
    }
    void Run(ScenarioContext& ctx) override {
      const int64_t acked = 10;
      const int64_t durable = 9;  // one acked write missing after recovery
      ctx.report()->AddMetric("writes_acked", acked);
      ctx.report()->AddMetric("final_rows", durable);
      ctx.report()->AssertEq("no_acked_write_loss",
                             static_cast<double>(durable),
                             static_cast<double>(acked));
    }
  };
  RegisterScenario("test-lossy",
                   [] { return std::make_unique<LossyScenario>(); });
  auto result = RunScenario("test-lossy", {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->passed);
  EXPECT_FALSE(result->report.passed());
  ASSERT_EQ(result->report.invariants().size(), 1u);
  EXPECT_FALSE(result->report.invariants()[0].passed);
  EXPECT_NE(result->report.ToJson().find("\"passed\":false"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Determinism of the built-in scenarios (the tentpole property)

class ScenarioDeterminismTest : public ::testing::TestWithParam<const char*> {
 protected:
  static void SetUpTestSuite() { RegisterBuiltinScenarios(); }
};

TEST_P(ScenarioDeterminismTest, SameSeedSameTrace) {
  ScenarioOptions options;
  options.seed = 0xC10D;
  options.fast = true;
  auto first = RunScenario(GetParam(), options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = RunScenario(GetParam(), options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  EXPECT_TRUE(first->passed) << first->report.ToJson();
  // Byte-identical event logs, and therefore identical fingerprints and
  // identical JSON snapshots.
  EXPECT_EQ(first->event_log, second->event_log);
  EXPECT_EQ(first->fingerprint, second->fingerprint);
  EXPECT_EQ(first->report.ToJson(), second->report.ToJson());
  EXPECT_FALSE(first->event_log.empty());
}

TEST_P(ScenarioDeterminismTest, DifferentSeedDifferentTrace) {
  ScenarioOptions a, b;
  a.fast = b.fast = true;
  a.seed = 0xC10D;
  b.seed = 7;
  auto run_a = RunScenario(GetParam(), a);
  ASSERT_TRUE(run_a.ok());
  auto run_b = RunScenario(GetParam(), b);
  ASSERT_TRUE(run_b.ok());
  EXPECT_TRUE(run_b->passed) << run_b->report.ToJson();
  EXPECT_NE(run_a->fingerprint, run_b->fingerprint)
      << "trace is seed-independent:\n"
      << run_a->event_log;
}

INSTANTIATE_TEST_SUITE_P(AllBuiltins, ScenarioDeterminismTest,
                         ::testing::Values("black-friday", "tenant-stampede",
                                           "az-outage",
                                           "rolling-upgrade-under-chaos",
                                           "gray-partition", "range-storm"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace veloce::scenario
