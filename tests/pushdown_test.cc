#include <gtest/gtest.h>

#include "common/logging.h"
#include "sql/pushdown.h"
#include "sql/row.h"
#include "sql/sql_node.h"
#include "tenant/controller.h"

namespace veloce::sql {
namespace {

// ---------------------------------------------------------------------------
// Spec codec + evaluator
// ---------------------------------------------------------------------------

TEST(PushdownSpecTest, RoundTrip) {
  PushdownSpec spec;
  spec.filters.push_back({2, PushdownOp::kGt, Datum::Int(10)});
  spec.filters.push_back({3, PushdownOp::kEq, Datum::String("x")});
  spec.projection = {2, 4};
  auto decoded = *PushdownSpec::Decode(spec.Encode());
  ASSERT_EQ(decoded.filters.size(), 2u);
  EXPECT_EQ(decoded.filters[0].column_id, 2u);
  EXPECT_EQ(decoded.filters[0].op, PushdownOp::kGt);
  EXPECT_EQ(decoded.filters[0].value.int_value(), 10);
  EXPECT_EQ(decoded.projection, (std::vector<uint32_t>{2, 4}));
}

TEST(PushdownSpecTest, DecodeGarbageFails) {
  EXPECT_FALSE(PushdownSpec::Decode("\xff\xff\xff garbage").ok());
}

class PushdownEvalTest : public ::testing::Test {
 protected:
  PushdownEvalTest() {
    desc_.id = 100;
    desc_.name = "t";
    desc_.columns = {{1, "id", TypeKind::kInt, false},
                     {2, "v", TypeKind::kInt, true},
                     {3, "s", TypeKind::kString, true}};
    desc_.primary.column_ids = {1};
  }

  std::string RowValue(int64_t id, std::optional<int64_t> v, const std::string& s) {
    Row row = {Datum::Int(id), v ? Datum::Int(*v) : Datum::Null(), Datum::String(s)};
    return EncodeRowValue(desc_, row);
  }

  TableDescriptor desc_;
};

TEST_F(PushdownEvalTest, FilterKeepsAndDrops) {
  PushdownSpec spec;
  spec.filters.push_back({2, PushdownOp::kGe, Datum::Int(5)});
  const std::string encoded = spec.Encode();
  auto keep = *EvaluatePushdown(RowValue(1, 7, "a"), encoded);
  EXPECT_TRUE(keep.has_value());
  auto drop = *EvaluatePushdown(RowValue(2, 3, "b"), encoded);
  EXPECT_FALSE(drop.has_value());
}

TEST_F(PushdownEvalTest, NullColumnsAreFiltered) {
  PushdownSpec spec;
  spec.filters.push_back({2, PushdownOp::kNe, Datum::Int(0)});
  auto result = *EvaluatePushdown(RowValue(1, std::nullopt, "x"), spec.Encode());
  EXPECT_FALSE(result.has_value());  // NULL != 0 is unknown -> rejected
}

TEST_F(PushdownEvalTest, ProjectionTrimsValue) {
  PushdownSpec spec;
  spec.projection = {2};  // keep only column v
  const std::string full = RowValue(1, 42, std::string(500, 'x'));
  auto projected = *EvaluatePushdown(full, spec.Encode());
  ASSERT_TRUE(projected.has_value());
  EXPECT_LT(projected->size(), full.size() / 4);
  // The projected value still decodes; missing columns read as NULL.
  Row row;
  const std::string key = EncodePrimaryKeyFromDatums(desc_, {Datum::Int(1)});
  ASSERT_TRUE(DecodeRow(desc_, key, *projected, &row).ok());
  EXPECT_EQ(row[1].int_value(), 42);
  EXPECT_TRUE(row[2].is_null());
}

// ---------------------------------------------------------------------------
// End-to-end through SQL
// ---------------------------------------------------------------------------

class PushdownEndToEndTest : public ::testing::Test {
 protected:
  PushdownEndToEndTest() {
    kv::KVClusterOptions opts;
    opts.num_nodes = 3;
    cluster_ = std::make_unique<kv::KVCluster>(opts);
    controller_ = std::make_unique<tenant::TenantController>(cluster_.get(), &ca_);
    service_ = std::make_unique<tenant::AuthorizedKvService>(cluster_.get(), &ca_);
    auto meta = *controller_->CreateTenant("app");
    auto cert = *controller_->IssueCert(meta.id);
    node_ = std::make_unique<SqlNode>(1, SqlNode::Options{}, cluster_->clock());
    VELOCE_CHECK_OK(node_->StartProcess());
    VELOCE_CHECK_OK(node_->StampTenant(service_.get(), cluster_.get(), cert));
    session_ = *node_->NewSession();
    VELOCE_CHECK(session_->Execute(
        "CREATE TABLE t (id INT PRIMARY KEY, grp INT, payload STRING)").ok());
    for (int i = 0; i < 100; ++i) {
      VELOCE_CHECK(session_->Execute(
          "INSERT INTO t VALUES (" + std::to_string(i) + ", " +
          std::to_string(i % 10) + ", '" + std::string(200, 'p') + "')").ok());
    }
  }

  ResultSet Exec(const std::string& sql) {
    auto result = session_->Execute(sql);
    VELOCE_CHECK(result.ok()) << sql << ": " << result.status().ToString();
    return std::move(result).value();
  }

  tenant::CertificateAuthority ca_;
  std::unique_ptr<kv::KVCluster> cluster_;
  std::unique_ptr<tenant::TenantController> controller_;
  std::unique_ptr<tenant::AuthorizedKvService> service_;
  std::unique_ptr<SqlNode> node_;
  Session* session_;
};

TEST_F(PushdownEndToEndTest, SameResultsWithAndWithoutPushdown) {
  ResultSet off = Exec("SELECT id FROM t WHERE grp = 3 ORDER BY id");
  Exec("SET kv_pushdown = on");
  ResultSet on = Exec("SELECT id FROM t WHERE grp = 3 ORDER BY id");
  ASSERT_EQ(on.rows.size(), off.rows.size());
  for (size_t i = 0; i < on.rows.size(); ++i) {
    EXPECT_EQ(on.rows[i][0].int_value(), off.rows[i][0].int_value());
  }
}

TEST_F(PushdownEndToEndTest, FilterPushdownShrinksTransfer) {
  sql::KvConnector* connector = node_->connector();
  connector->ResetFeatures();
  Exec("SELECT id FROM t WHERE grp = 3");
  const double bytes_without = connector->features().read_bytes;

  Exec("SET kv_pushdown = on");
  connector->ResetFeatures();
  ResultSet rs = Exec("SELECT id FROM t WHERE grp = 3");
  const double bytes_with = connector->features().read_bytes;

  EXPECT_EQ(rs.rows.size(), 10u);
  // 90% of rows are filtered at the KV node, and the payload column is
  // projected away: the transfer shrinks dramatically.
  EXPECT_LT(bytes_with, bytes_without / 5);
}

TEST_F(PushdownEndToEndTest, ProjectionPushdownAloneShrinksTransfer) {
  sql::KvConnector* connector = node_->connector();
  connector->ResetFeatures();
  Exec("SELECT grp FROM t");  // full scan, no filter, narrow projection
  const double bytes_without = connector->features().read_bytes;

  Exec("SET kv_pushdown = on");
  connector->ResetFeatures();
  ResultSet rs = Exec("SELECT grp FROM t");
  const double bytes_with = connector->features().read_bytes;
  EXPECT_EQ(rs.rows.size(), 100u);
  EXPECT_LT(bytes_with, bytes_without / 5);  // the 200B payload stays behind
}

TEST_F(PushdownEndToEndTest, AggregatesCorrectUnderPushdown) {
  Exec("SET kv_pushdown = on");
  ResultSet rs = Exec("SELECT grp, COUNT(*) FROM t WHERE grp >= 8 GROUP BY grp ORDER BY grp");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].int_value(), 8);
  EXPECT_EQ(rs.rows[0][1].int_value(), 10);
}

TEST_F(PushdownEndToEndTest, RangeFiltersPushDown) {
  Exec("SET kv_pushdown = on");
  ResultSet rs = Exec("SELECT COUNT(*) FROM t WHERE grp > 2 AND grp <= 5");
  EXPECT_EQ(rs.rows[0][0].int_value(), 30);
}

TEST_F(PushdownEndToEndTest, TransactionalScansBypassPushdown) {
  // Txn scans must see their own uncommitted writes; pushdown is skipped on
  // that path and results stay correct.
  Exec("SET kv_pushdown = on");
  Exec("BEGIN");
  Exec("INSERT INTO t VALUES (1000, 3, 'new')");
  ResultSet rs = Exec("SELECT COUNT(*) FROM t WHERE grp = 3");
  EXPECT_EQ(rs.rows[0][0].int_value(), 11);
  Exec("ROLLBACK");
  rs = Exec("SELECT COUNT(*) FROM t WHERE grp = 3");
  EXPECT_EQ(rs.rows[0][0].int_value(), 10);
}

TEST_F(PushdownEndToEndTest, UpdatesUnaffectedByPushdownSetting) {
  Exec("SET kv_pushdown = on");
  ResultSet updated = Exec("UPDATE t SET payload = 'small' WHERE grp = 1");
  EXPECT_EQ(updated.rows_affected, 10u);
  ResultSet rs = Exec("SELECT COUNT(*) FROM t WHERE payload = 'small'");
  EXPECT_EQ(rs.rows[0][0].int_value(), 10);
}

}  // namespace
}  // namespace veloce::sql
