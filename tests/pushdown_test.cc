#include <gtest/gtest.h>

#include "common/logging.h"
#include "kv/keys.h"
#include "sql/pushdown.h"
#include "sql/row.h"
#include "sql/sql_node.h"
#include "tenant/controller.h"

namespace veloce::sql {
namespace {

// ---------------------------------------------------------------------------
// Spec codec + evaluator
// ---------------------------------------------------------------------------

TEST(PushdownSpecTest, RoundTrip) {
  PushdownSpec spec;
  spec.filters.push_back({2, PushdownOp::kGt, Datum::Int(10)});
  spec.filters.push_back({3, PushdownOp::kEq, Datum::String("x")});
  spec.projection = {2, 4};
  auto decoded = *PushdownSpec::Decode(spec.Encode());
  ASSERT_EQ(decoded.filters.size(), 2u);
  EXPECT_EQ(decoded.filters[0].column_id, 2u);
  EXPECT_EQ(decoded.filters[0].op, PushdownOp::kGt);
  EXPECT_EQ(decoded.filters[0].value.int_value(), 10);
  EXPECT_EQ(decoded.projection, (std::vector<uint32_t>{2, 4}));
}

TEST(PushdownSpecTest, DecodeGarbageFails) {
  EXPECT_FALSE(PushdownSpec::Decode("\xff\xff\xff garbage").ok());
}

TEST(PushdownSpecTest, AggregationFragmentRoundTrip) {
  PushdownSpec spec;
  spec.filters.push_back({4, PushdownOp::kLe, Datum::Int(19980902)});
  spec.group_by = {2, 3};
  PushdownAggregate count;
  count.func = AggFunc::kCount;
  count.input = std::make_unique<PushdownExpr>();
  count.input->kind = PushdownExpr::Kind::kStar;
  spec.aggregates.push_back(std::move(count));
  // SUM(extprice * (1 - discount)): an arithmetic tree over two columns.
  PushdownAggregate sum;
  sum.func = AggFunc::kSum;
  sum.input = std::make_unique<PushdownExpr>();
  sum.input->kind = PushdownExpr::Kind::kBinary;
  sum.input->op = BinOp::kMul;
  sum.input->left = std::make_unique<PushdownExpr>();
  sum.input->left->kind = PushdownExpr::Kind::kColumn;
  sum.input->left->column_id = 5;
  sum.input->right = std::make_unique<PushdownExpr>();
  sum.input->right->kind = PushdownExpr::Kind::kBinary;
  sum.input->right->op = BinOp::kSub;
  sum.input->right->left = std::make_unique<PushdownExpr>();
  sum.input->right->left->kind = PushdownExpr::Kind::kLiteral;
  sum.input->right->left->literal = Datum::Double(1.0);
  sum.input->right->right = std::make_unique<PushdownExpr>();
  sum.input->right->right->kind = PushdownExpr::Kind::kColumn;
  sum.input->right->right->column_id = 6;
  spec.aggregates.push_back(std::move(sum));

  auto decoded = *PushdownSpec::Decode(spec.Encode());
  EXPECT_TRUE(decoded.has_aggregation());
  EXPECT_EQ(decoded.group_by, (std::vector<uint32_t>{2, 3}));
  ASSERT_EQ(decoded.aggregates.size(), 2u);
  EXPECT_EQ(decoded.aggregates[0].func, AggFunc::kCount);
  EXPECT_EQ(decoded.aggregates[0].input->kind, PushdownExpr::Kind::kStar);
  EXPECT_EQ(decoded.aggregates[1].func, AggFunc::kSum);
  const PushdownExpr& in = *decoded.aggregates[1].input;
  ASSERT_EQ(in.kind, PushdownExpr::Kind::kBinary);
  EXPECT_EQ(in.op, BinOp::kMul);
  EXPECT_EQ(in.left->column_id, 5u);
  EXPECT_EQ(in.right->left->literal.double_value(), 1.0);
  EXPECT_EQ(in.right->right->column_id, 6u);
  // Re-encoding the decoded spec is byte-stable.
  EXPECT_EQ(decoded.Encode(), spec.Encode());
}

TEST(PushdownSpecTest, FilterOnlyEncodingIsBackwardCompatible) {
  // Specs without an aggregation fragment keep the original frozen wire
  // shape (no trailing sections), so pre-fragment KV nodes decode them and
  // post-fragment nodes decode pre-fragment bytes.
  PushdownSpec spec;
  spec.filters.push_back({2, PushdownOp::kGt, Datum::Int(1)});
  spec.projection = {2, 3};
  std::string legacy;
  PutVarint64(&legacy, 1);        // one filter
  PutVarint32(&legacy, 2);        // column 2
  legacy.push_back(static_cast<char>(PushdownOp::kGt));
  Datum::Int(1).EncodeValue(&legacy);
  PutVarint64(&legacy, 2);        // two projected columns
  PutVarint32(&legacy, 2);
  PutVarint32(&legacy, 3);
  EXPECT_EQ(spec.Encode(), legacy);
  auto decoded = *PushdownSpec::Decode(legacy);
  EXPECT_FALSE(decoded.has_aggregation());
  EXPECT_EQ(decoded.projection, (std::vector<uint32_t>{2, 3}));
}

TEST(PushdownSpecTest, MakeFilterSpecSortsAndDedupesProjection) {
  // Needed columns arrive in expression-reference order with repeats
  // (SELECT id, a + h, b * 2 WHERE a > 0 yields a,h,b,a). The projected
  // row value must keep ascending-id order or the decoders' merge walk
  // silently drops the out-of-order columns.
  TableDescriptor desc;
  desc.id = 100;
  desc.columns = {{1, "id", TypeKind::kInt, false},
                  {2, "a", TypeKind::kInt, true},
                  {3, "b", TypeKind::kDouble, true},
                  {6, "h", TypeKind::kInt, true}};
  desc.primary.column_ids = {1};
  ScanConstraints plan;
  const std::vector<uint32_t> needed = {1, 2, 6, 3, 2};
  PushdownSpec spec = MakeFilterSpec(plan, &needed, desc);
  EXPECT_EQ(spec.projection, (std::vector<uint32_t>{2, 3, 6}));
}

TEST(PartialAggRowCodecTest, RoundTrip) {
  std::vector<Datum> groups = {Datum::String("A"), Datum::Null()};
  std::vector<AggState> states(3);
  states[0].count = 7;              // COUNT
  states[1].count = 5;              // SUM(int): wrapped int sum + mirror
  states[1].isum = int64_t{1} << 62;
  states[1].sum = 4.6e18;
  states[1].sum_is_int = true;
  states[2].count = 4;              // MIN/MAX carrier
  states[2].has_minmax = true;
  states[2].min = Datum::Double(-1.5);
  states[2].max = Datum::Double(99.25);

  std::vector<Datum> got_groups;
  std::vector<AggState> got_states;
  ASSERT_TRUE(DecodePartialAggRow(EncodePartialAggRow(groups, states),
                                  &got_groups, &got_states)
                  .ok());
  ASSERT_EQ(got_groups.size(), 2u);
  EXPECT_EQ(got_groups[0].string_value(), "A");
  EXPECT_TRUE(got_groups[1].is_null());
  ASSERT_EQ(got_states.size(), 3u);
  EXPECT_EQ(got_states[0].count, 7u);
  EXPECT_EQ(got_states[1].isum, int64_t{1} << 62);
  EXPECT_EQ(got_states[1].sum, 4.6e18);
  EXPECT_TRUE(got_states[1].sum_is_int);
  EXPECT_TRUE(got_states[2].has_minmax);
  EXPECT_EQ(got_states[2].min.double_value(), -1.5);
  EXPECT_EQ(got_states[2].max.double_value(), 99.25);
}

TEST(PartialAggRowCodecTest, TruncatedInputFails) {
  std::vector<Datum> groups = {Datum::Int(1)};
  std::vector<AggState> states(1);
  states[0].count = 3;
  const std::string full = EncodePartialAggRow(groups, states);
  std::vector<Datum> g;
  std::vector<AggState> s;
  for (size_t cut = 1; cut < full.size(); ++cut) {
    EXPECT_FALSE(DecodePartialAggRow(Slice(full.data(), cut), &g, &s).ok())
        << "cut " << cut;
  }
}

class PushdownEvalTest : public ::testing::Test {
 protected:
  PushdownEvalTest() {
    desc_.id = 100;
    desc_.name = "t";
    desc_.columns = {{1, "id", TypeKind::kInt, false},
                     {2, "v", TypeKind::kInt, true},
                     {3, "s", TypeKind::kString, true}};
    desc_.primary.column_ids = {1};
  }

  std::string RowValue(int64_t id, std::optional<int64_t> v, const std::string& s) {
    Row row = {Datum::Int(id), v ? Datum::Int(*v) : Datum::Null(), Datum::String(s)};
    return EncodeRowValue(desc_, row);
  }

  TableDescriptor desc_;
};

TEST_F(PushdownEvalTest, FilterKeepsAndDrops) {
  PushdownSpec spec;
  spec.filters.push_back({2, PushdownOp::kGe, Datum::Int(5)});
  const std::string encoded = spec.Encode();
  auto keep = *EvaluatePushdown(RowValue(1, 7, "a"), encoded);
  EXPECT_TRUE(keep.has_value());
  auto drop = *EvaluatePushdown(RowValue(2, 3, "b"), encoded);
  EXPECT_FALSE(drop.has_value());
}

TEST_F(PushdownEvalTest, NullColumnsAreFiltered) {
  PushdownSpec spec;
  spec.filters.push_back({2, PushdownOp::kNe, Datum::Int(0)});
  auto result = *EvaluatePushdown(RowValue(1, std::nullopt, "x"), spec.Encode());
  EXPECT_FALSE(result.has_value());  // NULL != 0 is unknown -> rejected
}

TEST_F(PushdownEvalTest, ProjectionTrimsValue) {
  PushdownSpec spec;
  spec.projection = {2};  // keep only column v
  const std::string full = RowValue(1, 42, std::string(500, 'x'));
  auto projected = *EvaluatePushdown(full, spec.Encode());
  ASSERT_TRUE(projected.has_value());
  EXPECT_LT(projected->size(), full.size() / 4);
  // The projected value still decodes; missing columns read as NULL.
  Row row;
  const std::string key = EncodePrimaryKeyFromDatums(desc_, {Datum::Int(1)});
  ASSERT_TRUE(DecodeRow(desc_, key, *projected, &row).ok());
  EXPECT_EQ(row[1].int_value(), 42);
  EXPECT_TRUE(row[2].is_null());
}

// ---------------------------------------------------------------------------
// End-to-end through SQL
// ---------------------------------------------------------------------------

class PushdownEndToEndTest : public ::testing::Test {
 protected:
  PushdownEndToEndTest() {
    kv::KVClusterOptions opts;
    opts.num_nodes = 3;
    cluster_ = std::make_unique<kv::KVCluster>(opts);
    controller_ = std::make_unique<tenant::TenantController>(cluster_.get(), &ca_);
    service_ = std::make_unique<tenant::AuthorizedKvService>(cluster_.get(), &ca_);
    auto meta = *controller_->CreateTenant("app");
    auto cert = *controller_->IssueCert(meta.id);
    node_ = std::make_unique<SqlNode>(1, SqlNode::Options{}, cluster_->clock());
    VELOCE_CHECK_OK(node_->StartProcess());
    VELOCE_CHECK_OK(node_->StampTenant(service_.get(), cluster_.get(), cert));
    session_ = *node_->NewSession();
    VELOCE_CHECK(session_->Execute(
        "CREATE TABLE t (id INT PRIMARY KEY, grp INT, payload STRING)").ok());
    for (int i = 0; i < 100; ++i) {
      VELOCE_CHECK(session_->Execute(
          "INSERT INTO t VALUES (" + std::to_string(i) + ", " +
          std::to_string(i % 10) + ", '" + std::string(200, 'p') + "')").ok());
    }
  }

  ResultSet Exec(const std::string& sql) {
    auto result = session_->Execute(sql);
    VELOCE_CHECK(result.ok()) << sql << ": " << result.status().ToString();
    return std::move(result).value();
  }

  tenant::CertificateAuthority ca_;
  std::unique_ptr<kv::KVCluster> cluster_;
  std::unique_ptr<tenant::TenantController> controller_;
  std::unique_ptr<tenant::AuthorizedKvService> service_;
  std::unique_ptr<SqlNode> node_;
  Session* session_;
};

TEST_F(PushdownEndToEndTest, SameResultsWithAndWithoutPushdown) {
  ResultSet off = Exec("SELECT id FROM t WHERE grp = 3 ORDER BY id");
  Exec("SET kv_pushdown = on");
  ResultSet on = Exec("SELECT id FROM t WHERE grp = 3 ORDER BY id");
  ASSERT_EQ(on.rows.size(), off.rows.size());
  for (size_t i = 0; i < on.rows.size(); ++i) {
    EXPECT_EQ(on.rows[i][0].int_value(), off.rows[i][0].int_value());
  }
}

TEST_F(PushdownEndToEndTest, FilterPushdownShrinksTransfer) {
  sql::KvConnector* connector = node_->connector();
  connector->ResetFeatures();
  Exec("SELECT id FROM t WHERE grp = 3");
  const double bytes_without = connector->features().read_bytes;

  Exec("SET kv_pushdown = on");
  connector->ResetFeatures();
  ResultSet rs = Exec("SELECT id FROM t WHERE grp = 3");
  const double bytes_with = connector->features().read_bytes;

  EXPECT_EQ(rs.rows.size(), 10u);
  // 90% of rows are filtered at the KV node, and the payload column is
  // projected away: the transfer shrinks dramatically.
  EXPECT_LT(bytes_with, bytes_without / 5);
}

TEST_F(PushdownEndToEndTest, ProjectionPushdownAloneShrinksTransfer) {
  sql::KvConnector* connector = node_->connector();
  connector->ResetFeatures();
  Exec("SELECT grp FROM t");  // full scan, no filter, narrow projection
  const double bytes_without = connector->features().read_bytes;

  Exec("SET kv_pushdown = on");
  connector->ResetFeatures();
  ResultSet rs = Exec("SELECT grp FROM t");
  const double bytes_with = connector->features().read_bytes;
  EXPECT_EQ(rs.rows.size(), 100u);
  EXPECT_LT(bytes_with, bytes_without / 5);  // the 200B payload stays behind
}

TEST_F(PushdownEndToEndTest, AggregatesCorrectUnderPushdown) {
  Exec("SET kv_pushdown = on");
  ResultSet rs = Exec("SELECT grp, COUNT(*) FROM t WHERE grp >= 8 GROUP BY grp ORDER BY grp");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].int_value(), 8);
  EXPECT_EQ(rs.rows[0][1].int_value(), 10);
}

TEST_F(PushdownEndToEndTest, RangeFiltersPushDown) {
  Exec("SET kv_pushdown = on");
  ResultSet rs = Exec("SELECT COUNT(*) FROM t WHERE grp > 2 AND grp <= 5");
  EXPECT_EQ(rs.rows[0][0].int_value(), 30);
}

TEST_F(PushdownEndToEndTest, GroupByMergesAcrossRanges) {
  // Split the table so the aggregation fragment produces one partial state
  // per group per range segment; the SQL side must merge them.
  TableDescriptor desc = *node_->catalog()->GetTable("t");
  for (int split : {25, 50, 75}) {
    const std::string key = kv::AddTenantPrefix(
        node_->tenant_id(),
        EncodePrimaryKeyFromDatums(desc, {Datum::Int(split)}));
    VELOCE_CHECK_OK(cluster_->SplitRange(key));
  }
  ResultSet off = Exec(
      "SELECT grp, COUNT(*), SUM(id), MIN(id), MAX(id) FROM t "
      "GROUP BY grp ORDER BY grp");
  Exec("SET kv_pushdown = on");
  ResultSet on = Exec(
      "SELECT grp, COUNT(*), SUM(id), MIN(id), MAX(id) FROM t "
      "GROUP BY grp ORDER BY grp");
  ASSERT_EQ(on.rows.size(), off.rows.size());
  for (size_t i = 0; i < on.rows.size(); ++i) {
    for (size_t j = 0; j < on.rows[i].size(); ++j) {
      EXPECT_EQ(on.rows[i][j].Compare(off.rows[i][j]), 0)
          << "row " << i << " col " << j;
    }
  }
}

TEST_F(PushdownEndToEndTest, AggregationFragmentShrinksMarshal) {
  // With the fragment pushed, only per-group partial states cross the
  // SQL/KV boundary instead of every (wide) row.
  sql::KvConnector* connector = node_->connector();
  const char* sql = "SELECT grp, COUNT(*) FROM t GROUP BY grp ORDER BY grp";
  (void)Exec(sql);  // warm
  uint64_t m0 = connector->marshaled_bytes();
  (void)Exec(sql);
  const uint64_t bytes_off = connector->marshaled_bytes() - m0;
  Exec("SET kv_pushdown = on");
  m0 = connector->marshaled_bytes();
  (void)Exec(sql);
  const uint64_t bytes_on = connector->marshaled_bytes() - m0;
  EXPECT_LT(bytes_on, bytes_off / 3) << bytes_on << " vs " << bytes_off;
}

TEST_F(PushdownEndToEndTest, TransactionalScansBypassPushdown) {
  // Txn scans must see their own uncommitted writes; pushdown is skipped on
  // that path and results stay correct.
  Exec("SET kv_pushdown = on");
  Exec("BEGIN");
  Exec("INSERT INTO t VALUES (1000, 3, 'new')");
  ResultSet rs = Exec("SELECT COUNT(*) FROM t WHERE grp = 3");
  EXPECT_EQ(rs.rows[0][0].int_value(), 11);
  Exec("ROLLBACK");
  rs = Exec("SELECT COUNT(*) FROM t WHERE grp = 3");
  EXPECT_EQ(rs.rows[0][0].int_value(), 10);
}

TEST_F(PushdownEndToEndTest, UpdatesUnaffectedByPushdownSetting) {
  Exec("SET kv_pushdown = on");
  ResultSet updated = Exec("UPDATE t SET payload = 'small' WHERE grp = 1");
  EXPECT_EQ(updated.rows_affected, 10u);
  ResultSet rs = Exec("SELECT COUNT(*) FROM t WHERE payload = 'small'");
  EXPECT_EQ(rs.rows[0][0].int_value(), 10);
}

}  // namespace
}  // namespace veloce::sql
