#include <gtest/gtest.h>

#include <vector>

#include "sim/event_loop.h"
#include "sim/region_topology.h"
#include "sim/sim_executor.h"
#include "sim/virtual_cpu.h"

namespace veloce::sim {
namespace {

// ---------------------------------------------------------------------------
// EventLoop
// ---------------------------------------------------------------------------

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(30, [&] { order.push_back(3); });
  loop.Schedule(10, [&] { order.push_back(1); });
  loop.Schedule(20, [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.Now(), 30);
}

TEST(EventLoopTest, SameTimeFiresInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) loop.Schedule(100, [&, i] { order.push_back(i); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, RunUntilAdvancesClockToDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.Schedule(50, [&] { ++fired; });
  loop.Schedule(200, [&] { ++fired; });
  loop.RunUntil(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.Now(), 100);
  loop.Run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoopTest, EventsCanScheduleEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) loop.Schedule(10, recurse);
  };
  loop.Schedule(10, recurse);
  loop.Run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(loop.Now(), 100);
}

TEST(EventLoopTest, NegativeDelayClampsToNow) {
  EventLoop loop;
  loop.RunUntil(500);
  bool fired = false;
  loop.Schedule(-100, [&] { fired = true; });
  loop.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(loop.Now(), 500);
}

TEST(PeriodicTaskTest, FiresEveryPeriodUntilCancelled) {
  EventLoop loop;
  int count = 0;
  PeriodicTask task(&loop, 100, [&] { ++count; });
  task.Start();
  loop.RunUntil(550);
  EXPECT_EQ(count, 5);
  task.Cancel();
  loop.RunUntil(2000);
  EXPECT_EQ(count, 5);
}

// ---------------------------------------------------------------------------
// VirtualCpu
// ---------------------------------------------------------------------------

TEST(VirtualCpuTest, SingleTaskRunsAtFullSpeed) {
  EventLoop loop;
  VirtualCpu cpu(&loop, /*vcpus=*/4);
  Nanos done_at = -1;
  cpu.Submit(1, 10 * kMilli, [&] { done_at = loop.Now(); });
  loop.Run();
  // One task on 4 vCPUs finishes in ~its demand (quantized to 1ms).
  EXPECT_GE(done_at, 10 * kMilli);
  EXPECT_LE(done_at, 12 * kMilli);
  EXPECT_EQ(cpu.total_busy(), 10 * kMilli);
  EXPECT_EQ(cpu.tenant_busy(1), 10 * kMilli);
}

TEST(VirtualCpuTest, OversubscribedTasksShareProcessors) {
  EventLoop loop;
  VirtualCpu cpu(&loop, /*vcpus=*/1);
  int done = 0;
  // Two tasks, each needing 10ms of CPU, on one vCPU: ~20ms wall time.
  cpu.Submit(1, 10 * kMilli, [&] { ++done; });
  cpu.Submit(2, 10 * kMilli, [&] { ++done; });
  loop.Run();
  EXPECT_EQ(done, 2);
  EXPECT_GE(loop.Now(), 20 * kMilli);
  EXPECT_LE(loop.Now(), 23 * kMilli);
}

TEST(VirtualCpuTest, RunnableQueueLengthReflectsOversubscription) {
  EventLoop loop;
  VirtualCpu cpu(&loop, /*vcpus=*/2);
  for (int i = 0; i < 6; ++i) cpu.Submit(1, 100 * kMilli, [] {});
  EXPECT_EQ(cpu.active_tasks(), 6);
  EXPECT_EQ(cpu.runnable_queue_length(), 4);
  loop.Run();
  EXPECT_EQ(cpu.runnable_queue_length(), 0);
}

TEST(VirtualCpuTest, PerTenantAttributionIsFair) {
  EventLoop loop;
  VirtualCpu cpu(&loop, /*vcpus=*/2);
  cpu.Submit(1, 50 * kMilli, [] {});
  cpu.Submit(2, 50 * kMilli, [] {});
  loop.Run();
  EXPECT_EQ(cpu.tenant_busy(1), 50 * kMilli);
  EXPECT_EQ(cpu.tenant_busy(2), 50 * kMilli);
  EXPECT_EQ(cpu.total_busy(), 100 * kMilli);
}

TEST(VirtualCpuTest, UtilizationOverWindow) {
  EventLoop loop;
  VirtualCpu cpu(&loop, /*vcpus=*/2);
  const Nanos start = loop.Now();
  const Nanos busy0 = cpu.total_busy();
  // 1 task for 100ms on 2 vcpus => ~50% utilization over the busy window.
  cpu.Submit(1, 100 * kMilli, [] {});
  loop.RunUntil(100 * kMilli);
  EXPECT_NEAR(cpu.UtilizationSince(start, busy0), 0.5, 0.05);
}

TEST(VirtualCpuTest, ZeroDemandCompletesImmediately) {
  EventLoop loop;
  VirtualCpu cpu(&loop, 1);
  bool done = false;
  cpu.Submit(1, 0, [&] { done = true; });
  loop.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(cpu.total_busy(), 0);
}

TEST(VirtualCpuTest, ManyTasksConserveWork) {
  EventLoop loop;
  VirtualCpu cpu(&loop, 4);
  int done = 0;
  for (int i = 0; i < 32; ++i) cpu.Submit(i % 3, 5 * kMilli, [&] { ++done; });
  loop.Run();
  EXPECT_EQ(done, 32);
  EXPECT_EQ(cpu.total_busy(), 32 * 5 * kMilli);
  // 160ms of demand over 4 vcpus: at least 40ms wall clock.
  EXPECT_GE(loop.Now(), 40 * kMilli);
}

// ---------------------------------------------------------------------------
// RegionTopology
// ---------------------------------------------------------------------------

TEST(RegionTopologyTest, SymmetricRtt) {
  RegionTopology t;
  t.AddRegion("us");
  t.AddRegion("eu");
  t.SetRtt("us", "eu", 90 * kMilli);
  EXPECT_EQ(t.Rtt("us", "eu"), 90 * kMilli);
  EXPECT_EQ(t.Rtt("eu", "us"), 90 * kMilli);
  EXPECT_EQ(t.OneWay("us", "eu"), 45 * kMilli);
}

TEST(RegionTopologyTest, IntraRegionDefault) {
  RegionTopology t;
  t.AddRegion("us", kMilli);
  EXPECT_EQ(t.Rtt("us", "us"), kMilli);
}

TEST(RegionTopologyTest, PaperDefaultsHaveThreeRegions) {
  RegionTopology t = RegionTopology::PaperDefaults();
  ASSERT_EQ(t.regions().size(), 3u);
  EXPECT_TRUE(t.HasRegion("us-central1"));
  EXPECT_TRUE(t.HasRegion("europe-west1"));
  EXPECT_TRUE(t.HasRegion("asia-southeast1"));
  // Asia <-> EU is the longest hop, as on the real internet.
  EXPECT_GT(t.Rtt("europe-west1", "asia-southeast1"),
            t.Rtt("us-central1", "europe-west1"));
  // Intra-region is sub-millisecond.
  EXPECT_LT(t.Rtt("us-central1", "us-central1"), kMilli);
}

TEST(RegionTopologyTest, AddRegionIdempotent) {
  RegionTopology t;
  t.AddRegion("us");
  t.AddRegion("us");
  EXPECT_EQ(t.regions().size(), 1u);
}

// ---------------------------------------------------------------------------
// SimExecutor
// ---------------------------------------------------------------------------

TEST(SimExecutorTest, RunsTasksInScheduleOrderOnTheLoop) {
  EventLoop loop;
  SimExecutor executor(&loop);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    executor.Schedule([&, i] { order.push_back(i); });
  }
  EXPECT_EQ(order, std::vector<int>{});  // never inline
  EXPECT_EQ(executor.queue_depth(), 5u);
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(executor.queue_depth(), 0u);
}

TEST(SimExecutorTest, RunQueuedDrainsInlineAndLoopEventsNoop) {
  EventLoop loop;
  SimExecutor executor(&loop);
  int ran = 0;
  executor.Schedule([&] { ++ran; });
  executor.Schedule([&] { ++ran; });
  // A stalled single-threaded writer assists via RunQueued...
  EXPECT_EQ(executor.RunQueued(), 2u);
  EXPECT_EQ(ran, 2);
  // ...and the already-posted loop events find an empty queue and no-op.
  loop.Run();
  EXPECT_EQ(ran, 2);
}

TEST(SimExecutorTest, DeterministicAcrossRuns) {
  // Two identical schedules produce identical execution orders — the
  // property that keeps the paper-figure benches bit-reproducible when the
  // storage engine runs its background work through the sim.
  auto run_once = [] {
    EventLoop loop;
    SimExecutor executor(&loop);
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
      loop.Schedule((i % 3) * 100, [&, i] {
        executor.Schedule([&, i] { order.push_back(i); });
      });
    }
    loop.Run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace veloce::sim
