#include <gtest/gtest.h>

#include "common/logging.h"
#include "serverless/cluster.h"
#include "serverless/multiregion.h"

namespace veloce::serverless {
namespace {

// ---------------------------------------------------------------------------
// KubeSim
// ---------------------------------------------------------------------------

TEST(KubeSimTest, PodCreationTakesConfiguredLatency) {
  sim::EventLoop loop;
  KubeSim kube(&loop, {.pod_create_latency = 2 * kSecond});
  Nanos ready_at = -1;
  kube.CreatePod([&](PodId) { ready_at = loop.Now(); });
  loop.Run();
  EXPECT_EQ(ready_at, 2 * kSecond);
  EXPECT_EQ(kube.num_pods(), 1u);
}

TEST(KubeSimTest, VmPacking) {
  sim::EventLoop loop;
  KubeSim kube(&loop, {.pods_per_vm = 4});
  for (int i = 0; i < 10; ++i) kube.CreatePod([](PodId) {});
  loop.Run();
  EXPECT_EQ(kube.num_pods(), 10u);
  EXPECT_EQ(kube.num_vms(), 3u);  // ceil(10/4)
}

TEST(KubeSimTest, ProcessStart) {
  sim::EventLoop loop;
  KubeSim kube(&loop, {});
  PodId pod = 0;
  kube.CreatePod([&](PodId id) { pod = id; });
  loop.Run();
  EXPECT_FALSE(kube.ProcessRunning(pod));
  bool started = false;
  kube.StartProcess(pod, [&] { started = true; });
  loop.Run();
  EXPECT_TRUE(started);
  EXPECT_TRUE(kube.ProcessRunning(pod));
}

// ---------------------------------------------------------------------------
// ServerlessCluster fixture
// ---------------------------------------------------------------------------

class ServerlessTest : public ::testing::Test {
 protected:
  ServerlessTest() {
    ServerlessCluster::Options opts;
    opts.kv.num_nodes = 3;
    cluster_ = std::make_unique<ServerlessCluster>(opts);
    auto meta = *cluster_->CreateTenant("app");
    tenant_ = meta.id;
  }

  std::unique_ptr<ServerlessCluster> cluster_;
  kv::TenantId tenant_;
};

TEST_F(ServerlessTest, WarmPoolProvisions) {
  EXPECT_EQ(cluster_->pool()->warm_available(), 4u);
}

TEST_F(ServerlessTest, ColdStartConnectServesQueries) {
  const Nanos start = cluster_->loop()->Now();
  auto conn = *cluster_->ConnectSync(tenant_);
  const Nanos cold_start = cluster_->loop()->Now() - start;
  // Pre-warmed path: sub-second cold start (the paper's headline).
  EXPECT_LT(cold_start, kSecond);
  EXPECT_GT(cold_start, 0);
  // The connection is live end to end.
  ASSERT_TRUE(conn->session->Execute("CREATE TABLE t (id INT PRIMARY KEY)").ok());
  ASSERT_TRUE(conn->session->Execute("INSERT INTO t VALUES (1)").ok());
  auto rs = *conn->session->Execute("SELECT COUNT(*) FROM t");
  EXPECT_EQ(rs.rows[0][0].int_value(), 1);
}

TEST_F(ServerlessTest, UnoptimizedColdStartIsSlower) {
  ServerlessCluster::Options slow_opts;
  slow_opts.pool.prewarm_process = false;
  ServerlessCluster slow(slow_opts);
  auto meta = *slow.CreateTenant("t");

  const Nanos s0 = slow.loop()->Now();
  ASSERT_TRUE(slow.ConnectSync(meta.id).ok());
  const Nanos unoptimized = slow.loop()->Now() - s0;

  const Nanos s1 = cluster_->loop()->Now();
  ASSERT_TRUE(cluster_->ConnectSync(tenant_).ok());
  const Nanos optimized = cluster_->loop()->Now() - s1;

  // Pre-warming the process cuts cold start by more than half (Fig 10a).
  EXPECT_GT(unoptimized, 2 * optimized);
}

TEST_F(ServerlessTest, SecondConnectionReusesNode) {
  auto c1 = *cluster_->ConnectSync(tenant_);
  const Nanos start = cluster_->loop()->Now();
  auto c2 = *cluster_->ConnectSync(tenant_);
  // No cold start: the tenant already has a node.
  EXPECT_LT(cluster_->loop()->Now() - start, 10 * kMilli);
  EXPECT_EQ(c1->node, c2->node);
}

TEST_F(ServerlessTest, LeastConnectionsBalancing) {
  // Give the tenant a second node, then connect repeatedly.
  auto c1 = *cluster_->ConnectSync(tenant_);
  bool got = false;
  cluster_->pool()->Acquire(tenant_, [&](StatusOr<sql::SqlNode*> n) {
    ASSERT_TRUE(n.ok());
    got = true;
  });
  cluster_->loop()->Run();
  ASSERT_TRUE(got);
  std::vector<Proxy::Connection*> conns = {c1};
  for (int i = 0; i < 5; ++i) conns.push_back(*cluster_->ConnectSync(tenant_));
  auto nodes = cluster_->pool()->NodesForTenant(tenant_);
  ASSERT_EQ(nodes.size(), 2u);
  const size_t a = cluster_->proxy()->ConnectionsOnNode(nodes[0]);
  const size_t b = cluster_->proxy()->ConnectionsOnNode(nodes[1]);
  EXPECT_EQ(a + b, 6u);
  EXPECT_LE(a > b ? a - b : b - a, 1u);  // even within one connection
}

TEST_F(ServerlessTest, IpAllowAndDenyLists) {
  cluster_->proxy()->SetAllowlist(tenant_, {"10.0.0.1", "10.0.0.2"});
  EXPECT_TRUE(cluster_->ConnectSync(tenant_, "10.0.0.1").ok());
  EXPECT_TRUE(cluster_->ConnectSync(tenant_, "1.2.3.4").status().IsUnauthorized());
  cluster_->proxy()->AddToDenylist(tenant_, "10.0.0.2");
  EXPECT_TRUE(cluster_->ConnectSync(tenant_, "10.0.0.2").status().IsUnauthorized());
}

TEST_F(ServerlessTest, AuthFailureThrottling) {
  Proxy* proxy = cluster_->proxy();
  EXPECT_FALSE(proxy->IsThrottled("6.6.6.6"));
  for (int i = 0; i < 3; ++i) proxy->RecordAuthFailure("6.6.6.6");
  EXPECT_TRUE(proxy->IsThrottled("6.6.6.6"));
  EXPECT_TRUE(
      cluster_->ConnectSync(tenant_, "6.6.6.6").status().IsResourceExhausted());
  // Backoff expires with time; another failure extends it exponentially.
  cluster_->loop()->RunFor(2 * kSecond);
  EXPECT_FALSE(proxy->IsThrottled("6.6.6.6"));
  proxy->RecordAuthSuccess("6.6.6.6");
  EXPECT_TRUE(cluster_->ConnectSync(tenant_, "6.6.6.6").ok());
}

TEST_F(ServerlessTest, SessionMigrationPreservesState) {
  auto conn = *cluster_->ConnectSync(tenant_);
  ASSERT_TRUE(conn->session->Execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)").ok());
  ASSERT_TRUE(conn->session->Execute("INSERT INTO t VALUES (1, 7)").ok());
  ASSERT_TRUE(conn->session->Execute("SET application_name = 'mig'").ok());
  ASSERT_TRUE(conn->session->Prepare("q", "SELECT v FROM t WHERE id = $1").ok());
  sql::SqlNode* source = conn->node;

  // Acquire a second node and migrate there.
  sql::SqlNode* target = nullptr;
  cluster_->pool()->Acquire(tenant_, [&](StatusOr<sql::SqlNode*> n) { target = *n; });
  cluster_->loop()->Run();
  ASSERT_NE(target, nullptr);
  ASSERT_TRUE(cluster_->proxy()->MigrateConnection(conn, target).ok());
  EXPECT_NE(conn->node, source);
  EXPECT_EQ(conn->node, target);
  EXPECT_EQ(conn->migrations, 1u);
  // Settings, prepared statements, and data access all survive.
  EXPECT_EQ(*conn->session->GetSetting("application_name"), "mig");
  auto rs = *conn->session->ExecutePrepared("q", {sql::Datum::Int(1)});
  EXPECT_EQ(rs.rows[0][0].int_value(), 7);
}

TEST_F(ServerlessTest, BusySessionNotMigrated) {
  auto conn = *cluster_->ConnectSync(tenant_);
  ASSERT_TRUE(conn->session->Execute("CREATE TABLE t (id INT PRIMARY KEY)").ok());
  ASSERT_TRUE(conn->session->Execute("BEGIN").ok());
  sql::SqlNode* target = nullptr;
  cluster_->pool()->Acquire(tenant_, [&](StatusOr<sql::SqlNode*> n) { target = *n; });
  cluster_->loop()->Run();
  EXPECT_EQ(cluster_->proxy()->MigrateConnection(conn, target).code(),
            Code::kUnavailable);
  ASSERT_TRUE(conn->session->Execute("COMMIT").ok());
  EXPECT_TRUE(cluster_->proxy()->MigrateConnection(conn, target).ok());
}

TEST_F(ServerlessTest, RebalanceEvacuatesDrainingNode) {
  auto conn = *cluster_->ConnectSync(tenant_);
  sql::SqlNode* first = conn->node;
  sql::SqlNode* second = nullptr;
  cluster_->pool()->Acquire(tenant_, [&](StatusOr<sql::SqlNode*> n) { second = *n; });
  cluster_->loop()->Run();
  ASSERT_NE(second, nullptr);
  cluster_->pool()->StartDraining(first);
  const int migrated = cluster_->proxy()->RebalanceTenant(tenant_);
  EXPECT_EQ(migrated, 1);
  EXPECT_EQ(conn->node, second);
  // The drained node eventually shuts down (sessions are gone).
  cluster_->loop()->RunFor(kMinute);
  EXPECT_EQ(cluster_->pool()->NodesForTenant(tenant_).size(), 1u);
}

// ---------------------------------------------------------------------------
// Node failure: kill-mid-workload, proxy failover, retry budget
// ---------------------------------------------------------------------------

TEST_F(ServerlessTest, NodeDeathFailsOverWithoutLosingAckedWrites) {
  auto conn = *cluster_->ConnectSync(tenant_);
  ASSERT_TRUE(conn->session->Execute("CREATE TABLE t (id INT PRIMARY KEY)").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        conn->session->Execute("INSERT INTO t VALUES (" + std::to_string(i) + ")")
            .ok());
  }
  sql::SqlNode* dead = conn->node;

  // Kill the SQL node out from under the connection, mid-workload.
  cluster_->KillSqlNode(dead);
  EXPECT_EQ(dead->state(), sql::SqlNode::State::kStopped);
  EXPECT_EQ(conn->session, nullptr) << "failure listener must invalidate sessions";

  // The next execute transparently fails over to a healthy node; every
  // acked write survives because SQL state lives in the shared KV cluster.
  auto rs = cluster_->ExecuteSync(conn, "SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0].int_value(), 10);
  EXPECT_NE(conn->node, dead);
  EXPECT_EQ(conn->node->state(), sql::SqlNode::State::kReady);
  ASSERT_NE(conn->session, nullptr);

  // Failover completed within the retry budget and is visible in telemetry.
  obs::MetricsRegistry* m = cluster_->metrics();
  EXPECT_GE(m->Sum("veloce_serverless_failovers_total"), 1.0);
  EXPECT_GE(m->Sum("veloce_serverless_node_failures_total"), 1.0);
  EXPECT_LE(m->Sum("veloce_serverless_failover_retries_total"), 4.0);
  EXPECT_EQ(m->Sum("veloce_serverless_retry_budget_exhausted_total"), 0.0);
  EXPECT_GT(cluster_->proxy()->RetryBudget(tenant_), 0.0);

  // The connection keeps working (and the write path too).
  ASSERT_TRUE(cluster_->ExecuteSync(conn, "INSERT INTO t VALUES (10)").ok());
  rs = cluster_->ExecuteSync(conn, "SELECT COUNT(*) FROM t");
  EXPECT_EQ(rs->rows[0][0].int_value(), 11);
}

TEST_F(ServerlessTest, NonIdempotentRetriesOnlyWhenNodeNeverSawTheRequest) {
  auto conn = *cluster_->ConnectSync(tenant_);
  ASSERT_TRUE(conn->session->Execute("CREATE TABLE t (id INT PRIMARY KEY)").ok());
  cluster_->KillSqlNode(conn->node);
  // The node died before this statement was ever attempted, so replaying it
  // cannot double-apply — failover proceeds even for non-idempotent work.
  auto rs = cluster_->ExecuteSync(conn, "INSERT INTO t VALUES (1)",
                                  /*idempotent=*/false);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  rs = cluster_->ExecuteSync(conn, "SELECT COUNT(*) FROM t");
  EXPECT_EQ(rs->rows[0][0].int_value(), 1);
}

TEST_F(ServerlessTest, EmptyRetryBudgetFailsFast) {
  ServerlessCluster::Options opts;
  opts.kv.num_nodes = 3;
  opts.proxy.retry_budget_initial = 0.0;  // tenant starts with no tokens
  opts.proxy.retry_budget_ratio = 0.0;    // and can never earn any
  ServerlessCluster cluster(opts);
  auto meta = *cluster.CreateTenant("broke");
  auto conn = *cluster.ConnectSync(meta.id);
  ASSERT_TRUE(conn->session->Execute("CREATE TABLE t (id INT PRIMARY KEY)").ok());

  cluster.KillSqlNode(conn->node);
  auto rs = cluster.ExecuteSync(conn, "SELECT COUNT(*) FROM t");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), Code::kResourceExhausted);
  EXPECT_GE(cluster.metrics()->Sum("veloce_serverless_retry_budget_exhausted_total"),
            1.0);
}

TEST_F(ServerlessTest, SuccessfulExecutesEarnRetryBudgetUpToCap) {
  auto conn = *cluster_->ConnectSync(tenant_);
  ASSERT_TRUE(conn->session->Execute("CREATE TABLE t (id INT PRIMARY KEY)").ok());
  const double before = cluster_->proxy()->RetryBudget(tenant_);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(cluster_->ExecuteSync(conn, "SELECT COUNT(*) FROM t").ok());
  }
  const double after = cluster_->proxy()->RetryBudget(tenant_);
  EXPECT_GT(after, before);
  EXPECT_LE(after, 10.0);  // the default cap
}

TEST_F(ServerlessTest, DeadSessionCannotBeMigrated) {
  auto conn = *cluster_->ConnectSync(tenant_);
  sql::SqlNode* target = nullptr;
  cluster_->pool()->Acquire(tenant_, [&](StatusOr<sql::SqlNode*> n) { target = *n; });
  cluster_->loop()->Run();
  ASSERT_NE(target, nullptr);
  cluster_->KillSqlNode(conn->node);
  EXPECT_EQ(cluster_->proxy()->MigrateConnection(conn, target).code(),
            Code::kUnavailable);
}

TEST_F(ServerlessTest, KvNodeCrashRestartRecoversAckedWritesViaWalReplay) {
  auto conn = *cluster_->ConnectSync(tenant_);
  ASSERT_TRUE(conn->session->Execute("CREATE TABLE t (id INT PRIMARY KEY)").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        conn->session->Execute("INSERT INTO t VALUES (" + std::to_string(i) + ")")
            .ok());
  }
  // Crash-restart every KV node: engines are torn down without flushing and
  // reopened against the same Env, so state comes back from WAL replay.
  for (kv::NodeId id = 0; id < 3; ++id) {
    ASSERT_TRUE(cluster_->CrashAndRestartKvNode(id).ok()) << "node " << id;
  }
  auto rs = cluster_->ExecuteSync(conn, "SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0].int_value(), 20);
}

// ---------------------------------------------------------------------------
// Autoscaler
// ---------------------------------------------------------------------------

TEST_F(ServerlessTest, AutoscalerTargetsFourTimesAverage) {
  cluster_->autoscaler()->Start();
  cluster_->SetTenantCpuUsage(tenant_, 2.5);
  // Let the 5-minute window fill.
  cluster_->loop()->RunFor(6 * kMinute);
  // avg = peak = 2.5 vCPU => target = max(10, 3.3) = 10 vCPUs = 3 nodes.
  EXPECT_EQ(cluster_->autoscaler()->TargetNodes(tenant_), 3);
  EXPECT_EQ(cluster_->autoscaler()->CurrentNodes(tenant_), 3);
}

TEST_F(ServerlessTest, AutoscalerReactsToSpikeViaPeak) {
  cluster_->autoscaler()->Start();
  cluster_->SetTenantCpuUsage(tenant_, 2.5);
  cluster_->loop()->RunFor(6 * kMinute);
  ASSERT_EQ(cluster_->autoscaler()->CurrentNodes(tenant_), 3);
  // Momentary spike to 11 vCPUs: 1.33*11 = 14.6 => 4 nodes (paper example).
  cluster_->SetTenantCpuUsage(tenant_, 11.0);
  cluster_->loop()->RunFor(10 * kSecond);
  EXPECT_EQ(cluster_->autoscaler()->TargetNodes(tenant_), 4);
  cluster_->loop()->RunFor(30 * kSecond);
  EXPECT_GE(cluster_->autoscaler()->CurrentNodes(tenant_), 4);
}

TEST_F(ServerlessTest, AutoscalerScalesDownAfterLoadDrops) {
  cluster_->autoscaler()->Start();
  cluster_->SetTenantCpuUsage(tenant_, 8.0);
  cluster_->loop()->RunFor(6 * kMinute);
  const int high = cluster_->autoscaler()->CurrentNodes(tenant_);
  EXPECT_GE(high, 3);
  cluster_->SetTenantCpuUsage(tenant_, 0.5);
  // The 5-minute window must age out the high samples.
  cluster_->loop()->RunFor(7 * kMinute);
  const int low = cluster_->autoscaler()->CurrentNodes(tenant_);
  EXPECT_LT(low, high);
  EXPECT_GE(low, 1);
}

TEST_F(ServerlessTest, ScaleToZeroAndColdResume) {
  cluster_->autoscaler()->Start();
  cluster_->SetTenantCpuUsage(tenant_, 1.0);
  cluster_->loop()->RunFor(2 * kMinute);
  EXPECT_GE(cluster_->autoscaler()->CurrentNodes(tenant_), 1);
  // Load stops entirely; after window + suspend_after the tenant suspends.
  cluster_->SetTenantCpuUsage(tenant_, 0.0);
  cluster_->loop()->RunFor(25 * kMinute);
  EXPECT_EQ(cluster_->pool()->NodesForTenant(tenant_).size(), 0u);
  EXPECT_TRUE(cluster_->autoscaler()->suspended(tenant_));
  // A new connection cold-starts from zero, sub-second.
  const Nanos start = cluster_->loop()->Now();
  auto conn = cluster_->ConnectSync(tenant_);
  ASSERT_TRUE(conn.ok());
  EXPECT_LT(cluster_->loop()->Now() - start, kSecond);
}

// ---------------------------------------------------------------------------
// Multi-region cold start model
// ---------------------------------------------------------------------------

TEST(MultiRegionTest, RegionAwareConfigIsLocalEverywhere) {
  sim::RegionTopology topo = sim::RegionTopology::PaperDefaults();
  ColdStartLatencyModel aware(&topo, {.region_aware = true});
  for (const auto& region : topo.regions()) {
    // All blocking accesses stay local-ish: well under 100ms of network.
    EXPECT_LT(aware.TotalNetworkLatency(region), 100 * kMilli) << region;
  }
}

TEST(MultiRegionTest, LeaseInAsiaPenalizesOtherRegions) {
  sim::RegionTopology topo = sim::RegionTopology::PaperDefaults();
  ColdStartLatencyModel unopt(&topo,
                              {.region_aware = false, .lease_region = "asia-southeast1"});
  ColdStartLatencyModel aware(&topo, {.region_aware = true});
  // In asia the unoptimized config is fine (leaseholders are local).
  EXPECT_LT(unopt.TotalNetworkLatency("asia-southeast1"), 100 * kMilli);
  // In europe/us it pays multiple cross-pacific round trips.
  EXPECT_GT(unopt.TotalNetworkLatency("europe-west1"), kSecond);
  EXPECT_GT(unopt.TotalNetworkLatency("us-central1"), 500 * kMilli);
  // The region-aware config wins by an order of magnitude there.
  EXPECT_GT(unopt.TotalNetworkLatency("europe-west1"),
            10 * aware.TotalNetworkLatency("europe-west1"));
}

TEST(MultiRegionTest, FollowerReadsKeepMetaLookupLocal) {
  sim::RegionTopology topo = sim::RegionTopology::PaperDefaults();
  ColdStartLatencyModel unopt(&topo, {.region_aware = false});
  EXPECT_LT(unopt.MetaLookupLatency("europe-west1"), kMilli);
}

}  // namespace
}  // namespace veloce::serverless
