// Edge-case and error-path coverage for the SQL layer: expression
// semantics, NULL handling, type behaviour, and executor error reporting.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sql/sql_node.h"
#include "tenant/controller.h"

namespace veloce::sql {
namespace {

class SqlEdgeTest : public ::testing::Test {
 protected:
  SqlEdgeTest() {
    kv::KVClusterOptions opts;
    opts.num_nodes = 3;
    cluster_ = std::make_unique<kv::KVCluster>(opts);
    controller_ = std::make_unique<tenant::TenantController>(cluster_.get(), &ca_);
    service_ = std::make_unique<tenant::AuthorizedKvService>(cluster_.get(), &ca_);
    auto meta = *controller_->CreateTenant("edge");
    auto cert = *controller_->IssueCert(meta.id);
    node_ = std::make_unique<SqlNode>(1, SqlNode::Options{}, cluster_->clock());
    VELOCE_CHECK_OK(node_->StartProcess());
    VELOCE_CHECK_OK(node_->StampTenant(service_.get(), cluster_.get(), cert));
    session_ = *node_->NewSession();
  }

  ResultSet Exec(const std::string& sql) {
    auto result = session_->Execute(sql);
    VELOCE_CHECK(result.ok()) << sql << ": " << result.status().ToString();
    return std::move(result).value();
  }
  Status ExecErr(const std::string& sql) { return session_->Execute(sql).status(); }

  tenant::CertificateAuthority ca_;
  std::unique_ptr<kv::KVCluster> cluster_;
  std::unique_ptr<tenant::TenantController> controller_;
  std::unique_ptr<tenant::AuthorizedKvService> service_;
  std::unique_ptr<SqlNode> node_;
  Session* session_;
};

// --- expressions --------------------------------------------------------------

TEST_F(SqlEdgeTest, TableLessSelectEvaluatesExpressions) {
  ResultSet rs = Exec("SELECT 1 + 2 * 3, 'a' + 'b', 10 / 4, 10 % 3, TRUE");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].int_value(), 7);
  EXPECT_EQ(rs.rows[0][1].string_value(), "ab");
  EXPECT_DOUBLE_EQ(rs.rows[0][2].double_value(), 2.5);  // / is real division
  EXPECT_EQ(rs.rows[0][3].int_value(), 1);
  EXPECT_TRUE(rs.rows[0][4].bool_value());
}

TEST_F(SqlEdgeTest, DivisionByZeroIsAnError) {
  EXPECT_EQ(ExecErr("SELECT 1 / 0").code(), Code::kInvalidArgument);
  EXPECT_EQ(ExecErr("SELECT 1 % 0").code(), Code::kInvalidArgument);
}

TEST_F(SqlEdgeTest, UnaryMinusAndParens) {
  ResultSet rs = Exec("SELECT -(3 + 4), -5 * -2");
  EXPECT_EQ(rs.rows[0][0].int_value(), -7);
  EXPECT_EQ(rs.rows[0][1].int_value(), 10);
}

TEST_F(SqlEdgeTest, NullPropagationInComparisons) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  Exec("INSERT INTO t (id) VALUES (1)");  // v = NULL
  Exec("INSERT INTO t VALUES (2, 5)");
  // NULL comparisons are never true in WHERE.
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t WHERE v = 5").rows[0][0].int_value(), 1);
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t WHERE v != 5").rows[0][0].int_value(), 0);
  // IS NULL / IS NOT NULL work.
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t WHERE v IS NULL").rows[0][0].int_value(), 1);
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t WHERE v IS NOT NULL").rows[0][0].int_value(), 1);
}

TEST_F(SqlEdgeTest, NotAndBooleanLogic) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, a INT, b INT)");
  Exec("INSERT INTO t VALUES (1, 1, 0), (2, 0, 1), (3, 1, 1), (4, 0, 0)");
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t WHERE a = 1 AND b = 1").rows[0][0].int_value(), 1);
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t WHERE a = 1 OR b = 1").rows[0][0].int_value(), 3);
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t WHERE NOT (a = 1)").rows[0][0].int_value(), 2);
}

TEST_F(SqlEdgeTest, AggregateOfExpression) {
  Exec("CREATE TABLE s (id INT PRIMARY KEY, price DOUBLE, qty INT)");
  Exec("INSERT INTO s VALUES (1, 2.5, 4), (2, 1.0, 3)");
  ResultSet rs = Exec("SELECT SUM(price * qty) FROM s");
  EXPECT_DOUBLE_EQ(rs.rows[0][0].double_value(), 13.0);
  // Arithmetic over aggregates also works.
  rs = Exec("SELECT SUM(qty) * 2 + COUNT(*) FROM s");
  EXPECT_EQ(rs.rows[0][0].int_value(), 16);
}

// --- errors -------------------------------------------------------------------

TEST_F(SqlEdgeTest, UnknownTableAndColumnErrors) {
  EXPECT_TRUE(ExecErr("SELECT * FROM missing").IsNotFound());
  Exec("CREATE TABLE t (id INT PRIMARY KEY)");
  EXPECT_TRUE(ExecErr("SELECT nope FROM t").IsNotFound());
  EXPECT_TRUE(ExecErr("INSERT INTO t (nope) VALUES (1)").IsNotFound());
  EXPECT_TRUE(ExecErr("UPDATE t SET nope = 1").IsNotFound());
}

TEST_F(SqlEdgeTest, AmbiguousColumnInJoin) {
  Exec("CREATE TABLE a (id INT PRIMARY KEY, v INT)");
  Exec("CREATE TABLE b (id INT PRIMARY KEY, v INT)");
  Exec("INSERT INTO a VALUES (1, 1)");
  Exec("INSERT INTO b VALUES (1, 2)");
  const Status s = ExecErr("SELECT v FROM a JOIN b ON a.id = b.id");
  EXPECT_EQ(s.code(), Code::kInvalidArgument);
  // Qualification resolves it.
  ResultSet rs = Exec("SELECT a.v, b.v FROM a JOIN b ON a.id = b.id");
  EXPECT_EQ(rs.rows[0][0].int_value(), 1);
  EXPECT_EQ(rs.rows[0][1].int_value(), 2);
}

TEST_F(SqlEdgeTest, CreateTableTwiceAndIfNotExists) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY)");
  EXPECT_EQ(ExecErr("CREATE TABLE t (id INT PRIMARY KEY)").code(),
            Code::kAlreadyExists);
  ASSERT_TRUE(session_->Execute("CREATE TABLE IF NOT EXISTS t (id INT PRIMARY KEY)").ok());
}

TEST_F(SqlEdgeTest, TableWithoutPrimaryKeyRejected) {
  EXPECT_EQ(ExecErr("CREATE TABLE nopk (v INT)").code(), Code::kInvalidArgument);
}

TEST_F(SqlEdgeTest, InsertValueCountMismatch) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  EXPECT_EQ(ExecErr("INSERT INTO t (id, v) VALUES (1)").code(),
            Code::kInvalidArgument);
}

TEST_F(SqlEdgeTest, MissingParamIsError) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY)");
  auto result = session_->Execute("SELECT * FROM t WHERE id = $2",
                                  {Datum::Int(1)});  // only $1 bound
  EXPECT_EQ(result.status().code(), Code::kInvalidArgument);
}

TEST_F(SqlEdgeTest, OrderByUnknownColumnIsNotFound) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  Exec("INSERT INTO t VALUES (1, 1)");
  // Neither an output column nor an input column.
  EXPECT_TRUE(ExecErr("SELECT id FROM t ORDER BY nope").IsNotFound());
  // Out-of-range ordinals are invalid.
  EXPECT_EQ(ExecErr("SELECT id FROM t ORDER BY 5").code(), Code::kInvalidArgument);
  // Ordinal positions and non-projected input columns are accepted.
  EXPECT_TRUE(session_->Execute("SELECT id, v FROM t ORDER BY 2 DESC").ok());
  EXPECT_TRUE(session_->Execute("SELECT id FROM t ORDER BY v DESC").ok());
}

// --- semantics ------------------------------------------------------------------

TEST_F(SqlEdgeTest, OrderByMultipleKeysAndLimit) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, grp INT, v INT)");
  Exec("INSERT INTO t VALUES (1, 2, 10), (2, 1, 30), (3, 1, 20), (4, 2, 5)");
  ResultSet rs = Exec("SELECT id FROM t ORDER BY grp, v DESC LIMIT 3");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0].int_value(), 2);  // grp 1, v 30
  EXPECT_EQ(rs.rows[1][0].int_value(), 3);  // grp 1, v 20
  EXPECT_EQ(rs.rows[2][0].int_value(), 1);  // grp 2, v 10
}

TEST_F(SqlEdgeTest, StringKeysWithQuotesAndUnicodeBytes) {
  Exec("CREATE TABLE t (name STRING PRIMARY KEY, v INT)");
  Exec("INSERT INTO t VALUES ('o''neill', 1)");
  Exec("INSERT INTO t VALUES ('\xC3\xA9clair', 2)");  // UTF-8 bytes pass through
  EXPECT_EQ(Exec("SELECT v FROM t WHERE name = 'o''neill'").rows[0][0].int_value(), 1);
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t").rows[0][0].int_value(), 2);
}

TEST_F(SqlEdgeTest, NegativeAndBoundaryIntegers) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY)");
  Exec("INSERT INTO t VALUES (-9223372036854775807), (-1), (0), (9223372036854775807)");
  ResultSet rs = Exec("SELECT id FROM t ORDER BY id");
  ASSERT_EQ(rs.rows.size(), 4u);
  EXPECT_EQ(rs.rows[0][0].int_value(), INT64_MIN + 1);
  EXPECT_EQ(rs.rows[3][0].int_value(), INT64_MAX);
  // PK range scans work across the sign boundary.
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t WHERE id >= -1 AND id <= 0").rows[0][0].int_value(), 2);
}

TEST_F(SqlEdgeTest, DoubleColumnsRoundTrip) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, x DOUBLE)");
  Exec("INSERT INTO t VALUES (1, 3.25), (2, -0.5), (3, 1e10)");
  ResultSet rs = Exec("SELECT SUM(x) FROM t WHERE x > 0");
  EXPECT_DOUBLE_EQ(rs.rows[0][0].double_value(), 3.25 + 1e10);
}

TEST_F(SqlEdgeTest, GroupByMultipleColumns) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, a STRING, b INT, v INT)");
  Exec("INSERT INTO t VALUES (1,'x',1,10),(2,'x',1,20),(3,'x',2,30),(4,'y',1,40)");
  ResultSet rs = Exec("SELECT a, b, SUM(v) FROM t GROUP BY a, b ORDER BY a, b");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][2].int_value(), 30);  // (x,1)
  EXPECT_EQ(rs.rows[1][2].int_value(), 30);  // (x,2)
  EXPECT_EQ(rs.rows[2][2].int_value(), 40);  // (y,1)
}

TEST_F(SqlEdgeTest, DeleteEverythingThenReuse) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY)");
  Exec("INSERT INTO t VALUES (1), (2), (3)");
  EXPECT_EQ(Exec("DELETE FROM t").rows_affected, 3u);
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t").rows[0][0].int_value(), 0);
  Exec("INSERT INTO t VALUES (1)");  // PK reusable after delete
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t").rows[0][0].int_value(), 1);
}

TEST_F(SqlEdgeTest, ResultSetToStringRenders) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, name STRING)");
  Exec("INSERT INTO t VALUES (1, 'ada')");
  const std::string rendered = Exec("SELECT * FROM t").ToString();
  EXPECT_NE(rendered.find("id"), std::string::npos);
  EXPECT_NE(rendered.find("ada"), std::string::npos);
}

}  // namespace
}  // namespace veloce::sql
