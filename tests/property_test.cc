// Property-style suites on cross-cutting invariants: MVCC visibility
// against a reference model, engine crash-recovery durability, timestamp
// cache and replication-log behaviour, and fairness accounting.

#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "common/logging.h"
#include "common/random.h"
#include "kv/mvcc.h"
#include "kv/cluster.h"
#include "kv/keys.h"
#include "kv/range.h"
#include "storage/engine.h"

namespace veloce {
namespace {

// ---------------------------------------------------------------------------
// MVCC vs. a reference model under randomized histories
// ---------------------------------------------------------------------------

class MvccPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MvccPropertyTest, VisibilityMatchesModelAtEveryTimestamp) {
  auto engine = std::move(storage::Engine::Open({})).value();
  Random rng(GetParam());
  // Model: per key, a sorted version history (ts -> value or tombstone).
  std::map<std::string, std::map<kv::Timestamp, std::optional<std::string>>> model;

  Nanos wall = 10;
  for (int i = 0; i < 800; ++i) {
    const std::string key = "k" + std::to_string(rng.Uniform(30));
    wall += 1 + static_cast<Nanos>(rng.Uniform(5));
    const kv::Timestamp ts{wall, 0};
    storage::WriteBatch batch;
    if (rng.Bernoulli(0.2)) {
      kv::MvccPutTombstone(&batch, key, ts);
      model[key][ts] = std::nullopt;
    } else {
      const std::string value = rng.String(1 + rng.Uniform(40));
      kv::MvccPutValue(&batch, key, ts, value);
      model[key][ts] = value;
    }
    ASSERT_TRUE(engine->Write(batch).ok());
  }

  // Probe random (key, timestamp) pairs, including exact write timestamps.
  for (int probe = 0; probe < 500; ++probe) {
    const std::string key = "k" + std::to_string(rng.Uniform(30));
    const kv::Timestamp read_ts{1 + static_cast<Nanos>(rng.Uniform(wall + 5)), 0};
    auto result = kv::MvccGet(engine.get(), key, read_ts);
    ASSERT_TRUE(result.ok());
    // Model answer: newest version <= read_ts.
    std::optional<std::string> expected;
    auto it = model.find(key);
    if (it != model.end()) {
      auto version = it->second.upper_bound(read_ts);
      if (version != it->second.begin()) {
        --version;
        expected = version->second;
      }
    }
    if (expected.has_value()) {
      ASSERT_TRUE(result->value.has_value()) << key << "@" << read_ts.ToString();
      EXPECT_EQ(*result->value, *expected);
    } else {
      EXPECT_FALSE(result->value.has_value()) << key << "@" << read_ts.ToString();
    }
  }

  // Scans at random timestamps match the model too.
  for (int probe = 0; probe < 30; ++probe) {
    const kv::Timestamp read_ts{1 + static_cast<Nanos>(rng.Uniform(wall + 5)), 0};
    auto scan = kv::MvccScan(engine.get(), "k", "l", read_ts, 0);
    ASSERT_TRUE(scan.ok());
    size_t expected_count = 0;
    for (const auto& [key, versions] : model) {
      auto version = versions.upper_bound(read_ts);
      if (version == versions.begin()) continue;
      --version;
      if (version->second.has_value()) ++expected_count;
    }
    EXPECT_EQ(scan->entries.size(), expected_count);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MvccPropertyTest,
                         ::testing::Values(1, 7, 42, 1337));

// ---------------------------------------------------------------------------
// Engine crash-recovery durability under random workloads
// ---------------------------------------------------------------------------

class RecoveryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecoveryPropertyTest, ReopenPreservesEveryWrite) {
  auto env = storage::NewMemEnv();
  storage::EngineOptions opts;
  opts.env = env.get();
  opts.dir = "db";
  opts.memtable_bytes = 8 << 10;
  opts.sstable_target_bytes = 8 << 10;
  opts.level_base_bytes = 64 << 10;

  Random rng(GetParam());
  std::map<std::string, std::string> model;
  // Several open/mutate/close cycles; every cycle must see everything the
  // previous cycles wrote (WAL replay + manifest recovery together).
  for (int cycle = 0; cycle < 4; ++cycle) {
    auto engine = std::move(storage::Engine::Open(opts)).value();
    // Everything from previous cycles is visible.
    for (const auto& [key, value] : model) {
      std::string got;
      ASSERT_TRUE(engine->Get(key, &got).ok()) << "cycle " << cycle << " " << key;
      ASSERT_EQ(got, value);
    }
    for (int i = 0; i < 400; ++i) {
      const std::string key = "key" + std::to_string(rng.Uniform(120));
      if (rng.Bernoulli(0.15)) {
        ASSERT_TRUE(engine->Delete(key).ok());
        model.erase(key);
      } else {
        const std::string value = rng.String(1 + rng.Uniform(80));
        ASSERT_TRUE(engine->Put(key, value).ok());
        model[key] = value;
      }
    }
    if (cycle % 2 == 1) ASSERT_TRUE(engine->Flush().ok());
    // Engine destructor = crash point (no clean shutdown path exists).
  }
  auto engine = std::move(storage::Engine::Open(opts)).value();
  auto it = engine->NewIterator();
  auto model_it = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++model_it) {
    ASSERT_NE(model_it, model.end());
    EXPECT_EQ(it->key().ToString(), model_it->first);
    EXPECT_EQ(it->value().ToString(), model_it->second);
  }
  EXPECT_EQ(model_it, model.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryPropertyTest, ::testing::Values(3, 11, 29));

// ---------------------------------------------------------------------------
// TimestampCache
// ---------------------------------------------------------------------------

TEST(TimestampCacheTest, PointReadsRemembered) {
  kv::TimestampCache cache;
  cache.RecordRead("a", {100, 0});
  cache.RecordRead("a", {50, 0});  // older read doesn't regress
  EXPECT_EQ(cache.MaxReadTimestamp("a").wall, 100);
  EXPECT_EQ(cache.MaxReadTimestamp("b").wall, 0);
}

TEST(TimestampCacheTest, SpanReadsCoverContainedKeys) {
  kv::TimestampCache cache;
  cache.RecordReadSpan("b", "d", {200, 0});
  EXPECT_EQ(cache.MaxReadTimestamp("b").wall, 200);
  EXPECT_EQ(cache.MaxReadTimestamp("c").wall, 200);
  EXPECT_EQ(cache.MaxReadTimestamp("d").wall, 0);  // exclusive end
  EXPECT_EQ(cache.MaxReadTimestamp("a").wall, 0);
}

TEST(TimestampCacheTest, OverflowFoldsIntoLowWaterConservatively) {
  kv::TimestampCache cache;
  // Blow past the span cap; correctness must be preserved (the fold can
  // only raise other keys' timestamps, never lower a covered key's).
  for (size_t i = 0; i < kv::TimestampCache::kMaxSpans + 10; ++i) {
    cache.RecordReadSpan("k" + std::to_string(i), "k" + std::to_string(i) + "x",
                         {static_cast<Nanos>(100 + i), 0});
  }
  // Every recorded span's timestamp is still covered (possibly via the
  // low-water mark).
  EXPECT_GE(cache.MaxReadTimestamp("k5").wall, 105);
  EXPECT_GE(cache.MaxReadTimestamp("k100").wall, 200);
}

TEST(TimestampCacheTest, PointOverflowSafe) {
  kv::TimestampCache cache;
  for (size_t i = 0; i < kv::TimestampCache::kMaxPoints + 100; ++i) {
    cache.RecordRead("p" + std::to_string(i), {static_cast<Nanos>(10 + i), 0});
  }
  // A key recorded before the fold keeps (at least) its timestamp.
  EXPECT_GE(cache.MaxReadTimestamp("p10").wall, 20);
}

// ---------------------------------------------------------------------------
// ReplicationLog
// ---------------------------------------------------------------------------

TEST(ReplicationLogTest, AppendsAndTerms) {
  kv::ReplicationLog log;
  EXPECT_EQ(log.term(), 1u);
  kv::LogRecord r1;
  r1.payload = "cmd1";
  kv::LogRecord r2;
  r2.payload = "cmd22";
  EXPECT_EQ(log.Append(std::move(r1)), 1u);
  EXPECT_EQ(log.Append(std::move(r2)), 2u);
  EXPECT_EQ(log.committed_index(), 2u);
  EXPECT_EQ(log.committed_bytes(), 9u);
  log.BumpTerm();
  EXPECT_EQ(log.term(), 2u);
  EXPECT_EQ(log.committed_index(), 2u);  // term change preserves the log
}

TEST(ReplicationLogTest, AppliedTrackingAndTruncation) {
  kv::ReplicationLog log;
  for (int i = 0; i < 10; ++i) {
    kv::LogRecord rec;
    rec.payload = "cmd" + std::to_string(i);
    log.Append(std::move(rec));
  }
  log.SetApplied(0, 10);
  log.SetApplied(1, 4);
  EXPECT_EQ(log.Applied(0), 10u);
  EXPECT_EQ(log.Applied(1), 4u);
  EXPECT_EQ(log.Applied(7), 0u);  // unknown replica: nothing applied
  EXPECT_EQ(log.first_index(), 1u);
  EXPECT_TRUE(log.CanReplayFrom(4));
  log.TruncateTo(4);  // min applied across {10, 4}
  EXPECT_EQ(log.first_index(), 5u);
  EXPECT_TRUE(log.CanReplayFrom(4));
  EXPECT_FALSE(log.CanReplayFrom(2));  // truncated away: snapshot path
  log.TruncateTo(10);
  EXPECT_EQ(log.first_index(), 11u);  // empty log: committed + 1
  EXPECT_EQ(log.committed_index(), 10u);
}

// ---------------------------------------------------------------------------
// Range directory: arbitrary split/merge/move interleavings keep the
// keyspace a partition (no gaps, no overlaps, tenant-aligned)
// ---------------------------------------------------------------------------

/// One randomized directory mutation. Operands are raw draws; the applier
/// reduces them modulo whatever is currently valid, so every (kind, a, b,
/// c) triple is applicable to any directory state — which is what makes
/// shrinking by plain subsequence removal sound.
struct DirOp {
  enum class Kind { kSplit, kMerge, kMove } kind;
  uint64_t a = 0, b = 0, c = 0;

  std::string ToString() const {
    const char* names[] = {"split", "merge", "move"};
    return std::string(names[static_cast<int>(kind)]) + "(" +
           std::to_string(a) + "," + std::to_string(b) + "," +
           std::to_string(c) + ")";
  }
};

constexpr int kDirTenants = 3;
constexpr int kDirNodes = 4;

std::vector<DirOp> GenDirOps(uint64_t seed, int n) {
  Random rng(seed);
  std::vector<DirOp> ops;
  ops.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    DirOp op;
    const uint64_t k = rng.Uniform(10);
    // Splits weighted heaviest so directories actually grow.
    op.kind = k < 5   ? DirOp::Kind::kSplit
              : k < 8 ? DirOp::Kind::kMerge
                      : DirOp::Kind::kMove;
    op.a = rng.Next();
    op.b = rng.Next();
    op.c = rng.Next();
    ops.push_back(op);
  }
  return ops;
}

/// Replays `ops` against a fresh cluster, checking the partition invariant
/// after every step. Individual ops are allowed to be rejected (merge
/// guards, move guards) — the property is about the directory's shape, not
/// op success. Returns "" or the violation (with the op index).
std::string ApplyDirOps(const std::vector<DirOp>& ops) {
  ManualClock clock(100 * kSecond);
  kv::KVClusterOptions co;
  co.num_nodes = kDirNodes;
  co.replication_factor = 3;
  co.clock = &clock;
  auto cluster = std::make_unique<kv::KVCluster>(co);
  for (int t = 0; t < kDirTenants; ++t) {
    VELOCE_CHECK_OK(cluster->CreateTenantKeyspace(10 + t));
  }

  auto check = [&cluster]() -> std::string {
    std::vector<kv::RangeDescriptor> ranges = cluster->Ranges();
    std::sort(ranges.begin(), ranges.end(),
              [](const kv::RangeDescriptor& x, const kv::RangeDescriptor& y) {
                return x.start_key < y.start_key;
              });
    if (ranges.empty() || !ranges.front().start_key.empty()) {
      return "first range does not start at -inf";
    }
    for (size_t i = 0; i < ranges.size(); ++i) {
      const kv::RangeDescriptor& d = ranges[i];
      if (i + 1 == ranges.size()) {
        if (!d.end_key.empty()) return "last range does not end at +inf";
      } else if (d.end_key.empty() || d.end_key != ranges[i + 1].start_key) {
        return "gap/overlap after range " + std::to_string(d.range_id);
      }
      if (d.tenant_id != 0) {
        if (d.start_key < kv::TenantPrefix(d.tenant_id) ||
            d.end_key.empty() ||
            d.end_key > kv::TenantPrefixEnd(d.tenant_id)) {
          return "range " + std::to_string(d.range_id) +
                 " escapes tenant " + std::to_string(d.tenant_id);
        }
      }
    }
    return "";
  };

  for (size_t i = 0; i < ops.size(); ++i) {
    const DirOp& op = ops[i];
    switch (op.kind) {
      case DirOp::Kind::kSplit: {
        const kv::TenantId t = 10 + static_cast<kv::TenantId>(op.a % kDirTenants);
        char buf[8];
        std::snprintf(buf, sizeof(buf), "k%03d",
                      static_cast<int>(op.b % 64));
        (void)cluster->SplitRange(kv::AddTenantPrefix(t, buf));
        break;
      }
      case DirOp::Kind::kMerge: {
        const auto ranges = cluster->Ranges();
        const auto& d = ranges[op.a % ranges.size()];
        (void)cluster->MergeRanges(d.range_id);
        break;
      }
      case DirOp::Kind::kMove: {
        const auto ranges = cluster->Ranges();
        const auto& d = ranges[op.a % ranges.size()];
        const kv::NodeId from =
            d.replicas[op.b % d.replicas.size()];
        const kv::NodeId to = static_cast<kv::NodeId>(op.c % kDirNodes);
        (void)cluster->MoveReplica(d.range_id, from, to);
        break;
      }
    }
    std::string err = check();
    if (!err.empty()) {
      return "after op #" + std::to_string(i) + " " + ops[i].ToString() +
             ": " + err;
    }
  }
  return "";
}

/// Greedy delta-debugging: repeatedly try dropping chunks (halving sizes
/// down to single ops); keep any removal that still fails. Returns the
/// minimized sequence.
std::vector<DirOp> ShrinkDirOps(
    std::vector<DirOp> ops,
    const std::function<bool(const std::vector<DirOp>&)>& fails) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t chunk = std::max<size_t>(1, ops.size() / 2); chunk >= 1;
         chunk /= 2) {
      for (size_t at = 0; at + chunk <= ops.size();) {
        std::vector<DirOp> candidate = ops;
        candidate.erase(candidate.begin() + static_cast<long>(at),
                        candidate.begin() + static_cast<long>(at + chunk));
        if (fails(candidate)) {
          ops = std::move(candidate);
          progress = true;
        } else {
          at += chunk;
        }
      }
      if (chunk == 1) break;
    }
  }
  return ops;
}

class DirectoryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DirectoryPropertyTest, InterleavingsKeepKeyspacePartitioned) {
  const auto ops = GenDirOps(GetParam(), 60);
  std::string violation = ApplyDirOps(ops);
  if (!violation.empty()) {
    // Shrink before failing so the report carries a minimal reproducer.
    const auto minimal = ShrinkDirOps(
        ops, [](const std::vector<DirOp>& c) { return !ApplyDirOps(c).empty(); });
    std::string repro;
    for (const DirOp& op : minimal) repro += "  " + op.ToString() + "\n";
    FAIL() << violation << "\nminimal reproducer (" << minimal.size()
           << " ops):\n"
           << repro;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectoryPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// The shrinker itself must minimize: against a synthetic failure predicate
// ("sequence contains a merge and a move"), any failing sequence reduces
// to exactly those two ops.
TEST(DirectoryPropertyTest, ShrinkerFindsMinimalReproducer) {
  auto fails = [](const std::vector<DirOp>& ops) {
    bool merge = false, move = false;
    for (const DirOp& op : ops) {
      merge |= op.kind == DirOp::Kind::kMerge;
      move |= op.kind == DirOp::Kind::kMove;
    }
    return merge && move;
  };
  const auto ops = GenDirOps(99, 60);
  ASSERT_TRUE(fails(ops)) << "generator produced no merge+move ops";
  const auto minimal = ShrinkDirOps(ops, fails);
  ASSERT_EQ(minimal.size(), 2u);
  EXPECT_TRUE(fails(minimal));
}

}  // namespace
}  // namespace veloce
