#include <gtest/gtest.h>

#include "common/logging.h"
#include "sql/datum.h"
#include "sql/parser.h"
#include "sql/row.h"
#include "sql/sql_node.h"
#include "tenant/controller.h"

namespace veloce::sql {
namespace {

// ---------------------------------------------------------------------------
// Datum
// ---------------------------------------------------------------------------

TEST(DatumTest, CompareWithinKinds) {
  EXPECT_LT(Datum::Int(1).Compare(Datum::Int(2)), 0);
  EXPECT_EQ(Datum::String("a").Compare(Datum::String("a")), 0);
  EXPECT_GT(Datum::Double(2.5).Compare(Datum::Double(1.0)), 0);
  EXPECT_LT(Datum::Bool(false).Compare(Datum::Bool(true)), 0);
}

TEST(DatumTest, NullSortsFirst) {
  EXPECT_LT(Datum::Null().Compare(Datum::Int(-100)), 0);
  EXPECT_EQ(Datum::Null().Compare(Datum::Null()), 0);
}

TEST(DatumTest, CrossNumericCompare) {
  EXPECT_EQ(Datum::Int(2).Compare(Datum::Double(2.0)), 0);
  EXPECT_LT(Datum::Int(2).Compare(Datum::Double(2.5)), 0);
}

TEST(DatumTest, KeyEncodingPreservesOrder) {
  std::vector<Datum> values = {Datum::Null(),        Datum::Int(-100),
                               Datum::Int(0),        Datum::Int(7),
                               Datum::String("abc"), Datum::String("abd")};
  // Note: kinds are ordered by the type tag, so this list is ascending.
  std::string prev;
  for (const auto& v : values) {
    std::string buf;
    v.EncodeKey(&buf);
    if (!prev.empty()) EXPECT_LT(prev, buf) << v.ToString();
    prev = buf;
  }
}

TEST(DatumTest, KeyAndValueRoundTrip) {
  const Datum values[] = {Datum::Null(), Datum::Bool(true), Datum::Int(-42),
                          Datum::Double(3.25), Datum::String("hello world")};
  for (const auto& v : values) {
    std::string key, val;
    v.EncodeKey(&key);
    v.EncodeValue(&val);
    Slice key_in(key), val_in(val);
    Datum from_key, from_val;
    ASSERT_TRUE(Datum::DecodeKey(&key_in, &from_key).ok());
    ASSERT_TRUE(Datum::DecodeValue(&val_in, &from_val).ok());
    EXPECT_EQ(v.Compare(from_key), 0) << v.ToString();
    EXPECT_EQ(v.Compare(from_val), 0) << v.ToString();
    EXPECT_EQ(v.kind(), from_key.kind());
  }
}

// ---------------------------------------------------------------------------
// Row codec
// ---------------------------------------------------------------------------

TableDescriptor MakeTestTable() {
  TableDescriptor desc;
  desc.id = 101;
  desc.name = "users";
  desc.columns = {{1, "id", TypeKind::kInt, false},
                  {2, "name", TypeKind::kString, true},
                  {3, "age", TypeKind::kInt, true}};
  desc.primary.id = kPrimaryIndexId;
  desc.primary.name = "primary";
  desc.primary.column_ids = {1};
  IndexDescriptor by_name;
  by_name.id = 1;
  by_name.name = "users_by_name";
  by_name.column_ids = {2};
  desc.secondaries.push_back(by_name);
  return desc;
}

TEST(RowCodecTest, PrimaryRoundTrip) {
  TableDescriptor desc = MakeTestTable();
  Row row = {Datum::Int(7), Datum::String("carl"), Datum::Int(33)};
  const std::string key = EncodePrimaryKey(desc, row);
  const std::string value = EncodeRowValue(desc, row);
  Row decoded;
  ASSERT_TRUE(DecodeRow(desc, key, value, &decoded).ok());
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0].int_value(), 7);
  EXPECT_EQ(decoded[1].string_value(), "carl");
  EXPECT_EQ(decoded[2].int_value(), 33);
}

TEST(RowCodecTest, PrimaryKeysSortByPk) {
  TableDescriptor desc = MakeTestTable();
  Row a = {Datum::Int(1), Datum::Null(), Datum::Null()};
  Row b = {Datum::Int(2), Datum::Null(), Datum::Null()};
  EXPECT_LT(EncodePrimaryKey(desc, a), EncodePrimaryKey(desc, b));
}

TEST(RowCodecTest, SecondaryKeyEmbedsPk) {
  TableDescriptor desc = MakeTestTable();
  Row row = {Datum::Int(7), Datum::String("carl"), Datum::Int(33)};
  const std::string key = EncodeSecondaryKey(desc, desc.secondaries[0], row);
  std::vector<Datum> pk;
  ASSERT_TRUE(DecodeSecondaryKeyPk(desc, desc.secondaries[0], key, &pk).ok());
  ASSERT_EQ(pk.size(), 1u);
  EXPECT_EQ(pk[0].int_value(), 7);
}

TEST(RowCodecTest, DescriptorRoundTrip) {
  TableDescriptor desc = MakeTestTable();
  auto decoded = *TableDescriptor::Decode(desc.Encode());
  EXPECT_EQ(decoded.id, desc.id);
  EXPECT_EQ(decoded.name, desc.name);
  ASSERT_EQ(decoded.columns.size(), 3u);
  EXPECT_EQ(decoded.columns[1].name, "name");
  EXPECT_EQ(decoded.columns[1].type, TypeKind::kString);
  ASSERT_EQ(decoded.secondaries.size(), 1u);
  EXPECT_EQ(decoded.secondaries[0].column_ids, std::vector<uint32_t>{2});
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(ParserTest, CreateTable) {
  auto stmt = *Parse(
      "CREATE TABLE users (id INT PRIMARY KEY, name STRING NOT NULL, age INT)");
  ASSERT_EQ(stmt->kind, Statement::Kind::kCreateTable);
  EXPECT_EQ(stmt->create_table.table, "users");
  ASSERT_EQ(stmt->create_table.columns.size(), 3u);
  EXPECT_TRUE(stmt->create_table.columns[0].primary_key);
  EXPECT_TRUE(stmt->create_table.columns[1].not_null);
  EXPECT_EQ(stmt->create_table.columns[2].type, TypeKind::kInt);
}

TEST(ParserTest, CreateTableCompositeKey) {
  auto stmt = *Parse(
      "CREATE TABLE t (a INT, b INT, c STRING, PRIMARY KEY (a, b))");
  EXPECT_EQ(stmt->create_table.primary_key,
            (std::vector<std::string>{"a", "b"}));
}

TEST(ParserTest, InsertMultiRow) {
  auto stmt = *Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_EQ(stmt->kind, Statement::Kind::kInsert);
  EXPECT_EQ(stmt->insert.values.size(), 2u);
  EXPECT_FALSE(stmt->insert.upsert);
}

TEST(ParserTest, SelectWithEverything) {
  auto stmt = *Parse(
      "SELECT a, SUM(b) AS total FROM t WHERE a > 10 AND c = 'x' "
      "GROUP BY a ORDER BY total DESC LIMIT 5");
  ASSERT_EQ(stmt->kind, Statement::Kind::kSelect);
  const SelectStmt& sel = stmt->select;
  EXPECT_EQ(sel.items.size(), 2u);
  EXPECT_EQ(sel.items[1].alias, "total");
  EXPECT_NE(sel.where, nullptr);
  EXPECT_EQ(sel.group_by.size(), 1u);
  ASSERT_EQ(sel.order_by.size(), 1u);
  EXPECT_TRUE(sel.order_by[0].desc);
  EXPECT_EQ(sel.limit, 5);
}

TEST(ParserTest, SelectJoin) {
  auto stmt = *Parse(
      "SELECT o.id, c.name FROM orders o JOIN customers c ON o.cust_id = c.id");
  const SelectStmt& sel = stmt->select;
  EXPECT_EQ(sel.table, "orders");
  EXPECT_EQ(sel.table_alias, "o");
  ASSERT_EQ(sel.joins.size(), 1u);
  EXPECT_EQ(sel.joins[0].table, "customers");
  EXPECT_EQ(sel.joins[0].alias, "c");
  EXPECT_NE(sel.joins[0].on, nullptr);
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = *Parse("SELECT 1 + 2 * 3");
  const Expr* e = stmt->select.items[0].expr.get();
  ASSERT_EQ(e->kind, Expr::Kind::kBinary);
  EXPECT_EQ(e->op, BinOp::kAdd);  // * binds tighter
  EXPECT_EQ(e->right->op, BinOp::kMul);
}

TEST(ParserTest, Params) {
  auto stmt = *Parse("SELECT * FROM t WHERE id = $1");
  const Expr* where = stmt->select.where.get();
  ASSERT_EQ(where->kind, Expr::Kind::kBinary);
  EXPECT_EQ(where->right->kind, Expr::Kind::kParam);
  EXPECT_EQ(where->right->param_index, 1);
}

TEST(ParserTest, StringEscapes) {
  auto stmt = *Parse("SELECT 'it''s'");
  EXPECT_EQ(stmt->select.items[0].expr->literal.string_value(), "it's");
}

TEST(ParserTest, TxnStatements) {
  EXPECT_EQ((*Parse("BEGIN"))->txn.kind, TxnStmt::Kind::kBegin);
  EXPECT_EQ((*Parse("BEGIN TRANSACTION"))->txn.kind, TxnStmt::Kind::kBegin);
  EXPECT_EQ((*Parse("COMMIT"))->txn.kind, TxnStmt::Kind::kCommit);
  EXPECT_EQ((*Parse("ROLLBACK"))->txn.kind, TxnStmt::Kind::kRollback);
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(Parse("SELEC * FROM t").ok());
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("INSERT INTO t VALUES (1,)").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t; extra").ok());
  EXPECT_FALSE(Parse("SELECT 'unterminated").ok());
}

TEST(ParserTest, CaseInsensitiveKeywordsLowercaseIdents) {
  auto stmt = *Parse("select ID from USERS");
  EXPECT_EQ(stmt->select.table, "users");
  EXPECT_EQ(stmt->select.items[0].expr->column_name, "id");
}

// ---------------------------------------------------------------------------
// End-to-end SQL over the full stack
// ---------------------------------------------------------------------------

class SqlEndToEndTest : public ::testing::Test {
 protected:
  SqlEndToEndTest() {
    kv::KVClusterOptions opts;
    opts.num_nodes = 3;
    cluster_ = std::make_unique<kv::KVCluster>(opts);
    controller_ = std::make_unique<tenant::TenantController>(cluster_.get(), &ca_);
    service_ = std::make_unique<tenant::AuthorizedKvService>(cluster_.get(), &ca_);
    auto meta = *controller_->CreateTenant("app");
    tenant_id_ = meta.id;
    cert_ = *controller_->IssueCert(tenant_id_);

    node_ = std::make_unique<SqlNode>(1, SqlNode::Options{}, cluster_->clock());
    VELOCE_CHECK_OK(node_->StartProcess());
    VELOCE_CHECK_OK(node_->StampTenant(service_.get(), cluster_.get(), cert_));
    session_ = *node_->NewSession();
  }

  ResultSet Exec(const std::string& sql) {
    auto result = session_->Execute(sql);
    VELOCE_CHECK(result.ok()) << sql << " -> " << result.status().ToString();
    return std::move(result).value();
  }

  tenant::CertificateAuthority ca_;
  std::unique_ptr<kv::KVCluster> cluster_;
  std::unique_ptr<tenant::TenantController> controller_;
  std::unique_ptr<tenant::AuthorizedKvService> service_;
  kv::TenantId tenant_id_;
  tenant::TenantCert cert_;
  std::unique_ptr<SqlNode> node_;
  Session* session_;
};

TEST_F(SqlEndToEndTest, CreateInsertSelect) {
  Exec("CREATE TABLE users (id INT PRIMARY KEY, name STRING, age INT)");
  Exec("INSERT INTO users VALUES (1, 'ada', 36), (2, 'grace', 45), (3, 'alan', 41)");
  ResultSet rs = Exec("SELECT name FROM users WHERE id = 2");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].string_value(), "grace");
}

TEST_F(SqlEndToEndTest, SelectStarAndOrderBy) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  Exec("INSERT INTO t VALUES (1, 30), (2, 10), (3, 20)");
  ResultSet rs = Exec("SELECT * FROM t ORDER BY v");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.columns, (std::vector<std::string>{"id", "v"}));
  EXPECT_EQ(rs.rows[0][0].int_value(), 2);
  EXPECT_EQ(rs.rows[2][0].int_value(), 1);
}

TEST_F(SqlEndToEndTest, WherePkRangeUsesTightScan) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  for (int i = 0; i < 20; ++i) {
    Exec("INSERT INTO t VALUES (" + std::to_string(i) + ", " + std::to_string(i * 10) + ")");
  }
  ResultSet rs = Exec("SELECT id FROM t WHERE id >= 5 AND id < 8");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0].int_value(), 5);
  EXPECT_EQ(rs.rows[2][0].int_value(), 7);
}

TEST_F(SqlEndToEndTest, NonPkFilterScansAndFilters) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  Exec("INSERT INTO t VALUES (1, 5), (2, 10), (3, 5)");
  ResultSet rs = Exec("SELECT id FROM t WHERE v = 5 ORDER BY id");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[1][0].int_value(), 3);
}

TEST_F(SqlEndToEndTest, DuplicatePkRejected) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  Exec("INSERT INTO t VALUES (1, 1)");
  auto result = session_->Execute("INSERT INTO t VALUES (1, 2)");
  EXPECT_EQ(result.status().code(), Code::kAlreadyExists);
}

TEST_F(SqlEndToEndTest, UpsertOverwrites) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  Exec("INSERT INTO t VALUES (1, 1)");
  Exec("UPSERT INTO t VALUES (1, 99)");
  EXPECT_EQ(Exec("SELECT v FROM t WHERE id = 1").rows[0][0].int_value(), 99);
}

TEST_F(SqlEndToEndTest, NotNullEnforced) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT NOT NULL)");
  auto result = session_->Execute("INSERT INTO t (id) VALUES (1)");
  EXPECT_EQ(result.status().code(), Code::kInvalidArgument);
}

TEST_F(SqlEndToEndTest, UpdateAndDelete) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  Exec("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
  ResultSet updated = Exec("UPDATE t SET v = v + 1 WHERE id >= 2");
  EXPECT_EQ(updated.rows_affected, 2u);
  EXPECT_EQ(Exec("SELECT v FROM t WHERE id = 3").rows[0][0].int_value(), 31);
  ResultSet deleted = Exec("DELETE FROM t WHERE v = 21");
  EXPECT_EQ(deleted.rows_affected, 1u);
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t").rows[0][0].int_value(), 2);
}

TEST_F(SqlEndToEndTest, UpdatePrimaryKeyMovesRow) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  Exec("INSERT INTO t VALUES (1, 10)");
  Exec("UPDATE t SET id = 5 WHERE id = 1");
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t WHERE id = 1").rows[0][0].int_value(), 0);
  EXPECT_EQ(Exec("SELECT v FROM t WHERE id = 5").rows[0][0].int_value(), 10);
}

TEST_F(SqlEndToEndTest, AggregatesAndGroupBy) {
  Exec("CREATE TABLE sales (id INT PRIMARY KEY, region STRING, amount INT)");
  Exec("INSERT INTO sales VALUES (1, 'east', 100), (2, 'west', 50), "
       "(3, 'east', 200), (4, 'west', 150), (5, 'east', 50)");
  ResultSet rs = Exec(
      "SELECT region, COUNT(*) AS n, SUM(amount) AS total, AVG(amount) AS avg_amt, "
      "MIN(amount) AS lo, MAX(amount) AS hi FROM sales GROUP BY region ORDER BY region");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].string_value(), "east");
  EXPECT_EQ(rs.rows[0][1].int_value(), 3);
  EXPECT_EQ(rs.rows[0][2].int_value(), 350);
  EXPECT_NEAR(rs.rows[0][3].double_value(), 350.0 / 3, 1e-9);
  EXPECT_EQ(rs.rows[0][4].int_value(), 50);
  EXPECT_EQ(rs.rows[0][5].int_value(), 200);
}

TEST_F(SqlEndToEndTest, AggregateOnEmptyTable) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY)");
  ResultSet rs = Exec("SELECT COUNT(*), SUM(id) FROM t");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].int_value(), 0);
  EXPECT_TRUE(rs.rows[0][1].is_null());
}

TEST_F(SqlEndToEndTest, SecondaryIndexServesEqualityLookups) {
  Exec("CREATE TABLE users (id INT PRIMARY KEY, city STRING, age INT)");
  for (int i = 0; i < 30; ++i) {
    Exec("INSERT INTO users VALUES (" + std::to_string(i) + ", '" +
         (i % 3 == 0 ? "nyc" : "sfo") + "', " + std::to_string(20 + i) + ")");
  }
  Exec("CREATE INDEX users_by_city ON users (city)");
  ResultSet rs = Exec("SELECT COUNT(*) FROM users WHERE city = 'nyc'");
  EXPECT_EQ(rs.rows[0][0].int_value(), 10);
  // Index stays consistent through updates and deletes.
  Exec("UPDATE users SET city = 'nyc' WHERE id = 1");
  Exec("DELETE FROM users WHERE id = 0");
  rs = Exec("SELECT COUNT(*) FROM users WHERE city = 'nyc'");
  EXPECT_EQ(rs.rows[0][0].int_value(), 10);
}

TEST_F(SqlEndToEndTest, IndexJoinOnPrimaryKey) {
  Exec("CREATE TABLE customers (id INT PRIMARY KEY, name STRING)");
  Exec("CREATE TABLE orders (id INT PRIMARY KEY, cust_id INT, total INT)");
  Exec("INSERT INTO customers VALUES (1, 'ada'), (2, 'grace')");
  Exec("INSERT INTO orders VALUES (10, 1, 100), (11, 2, 200), (12, 1, 50)");
  ResultSet rs = Exec(
      "SELECT c.name, o.total FROM orders o JOIN customers c ON o.cust_id = c.id "
      "ORDER BY total");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0].string_value(), "ada");
  EXPECT_EQ(rs.rows[2][1].int_value(), 200);
}

TEST_F(SqlEndToEndTest, HashJoinOnNonKey) {
  Exec("CREATE TABLE a (id INT PRIMARY KEY, grp INT)");
  Exec("CREATE TABLE b (id INT PRIMARY KEY, grp INT, v STRING)");
  Exec("INSERT INTO a VALUES (1, 7), (2, 8)");
  Exec("INSERT INTO b VALUES (10, 7, 'x'), (11, 7, 'y'), (12, 9, 'z')");
  ResultSet rs = Exec(
      "SELECT a.id, b.v FROM a JOIN b ON a.grp = b.grp ORDER BY b.v");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][1].string_value(), "x");
  EXPECT_EQ(rs.rows[1][1].string_value(), "y");
}

TEST_F(SqlEndToEndTest, MultiJoin) {
  Exec("CREATE TABLE n (id INT PRIMARY KEY, name STRING)");
  Exec("CREATE TABLE s (id INT PRIMARY KEY, n_id INT)");
  Exec("CREATE TABLE p (id INT PRIMARY KEY, s_id INT, qty INT)");
  Exec("INSERT INTO n VALUES (1, 'alpha'), (2, 'beta')");
  Exec("INSERT INTO s VALUES (10, 1), (11, 2)");
  Exec("INSERT INTO p VALUES (100, 10, 5), (101, 11, 7), (102, 10, 3)");
  ResultSet rs = Exec(
      "SELECT n.name, SUM(p.qty) AS total FROM p "
      "JOIN s ON p.s_id = s.id JOIN n ON s.n_id = n.id "
      "GROUP BY n.name ORDER BY n.name");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].string_value(), "alpha");
  EXPECT_EQ(rs.rows[0][1].int_value(), 8);
  EXPECT_EQ(rs.rows[1][1].int_value(), 7);
}

TEST_F(SqlEndToEndTest, ExplicitTransactionCommit) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  Exec("BEGIN");
  Exec("INSERT INTO t VALUES (1, 10)");
  Exec("UPDATE t SET v = 11 WHERE id = 1");
  EXPECT_TRUE(session_->in_transaction());
  Exec("COMMIT");
  EXPECT_FALSE(session_->in_transaction());
  EXPECT_EQ(Exec("SELECT v FROM t WHERE id = 1").rows[0][0].int_value(), 11);
}

TEST_F(SqlEndToEndTest, ExplicitTransactionRollback) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  Exec("INSERT INTO t VALUES (1, 10)");
  Exec("BEGIN");
  Exec("UPDATE t SET v = 99 WHERE id = 1");
  Exec("ROLLBACK");
  EXPECT_EQ(Exec("SELECT v FROM t WHERE id = 1").rows[0][0].int_value(), 10);
}

TEST_F(SqlEndToEndTest, TransactionReadsOwnWrites) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  Exec("BEGIN");
  Exec("INSERT INTO t VALUES (1, 10)");
  EXPECT_EQ(Exec("SELECT v FROM t WHERE id = 1").rows[0][0].int_value(), 10);
  Exec("COMMIT");
}

TEST_F(SqlEndToEndTest, PreparedStatementsWithParams) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, v STRING)");
  ASSERT_TRUE(session_->Prepare("ins", "INSERT INTO t VALUES ($1, $2)").ok());
  ASSERT_TRUE(session_->Prepare("get", "SELECT v FROM t WHERE id = $1").ok());
  ASSERT_TRUE(
      session_->ExecutePrepared("ins", {Datum::Int(1), Datum::String("one")}).ok());
  ASSERT_TRUE(
      session_->ExecutePrepared("ins", {Datum::Int(2), Datum::String("two")}).ok());
  auto rs = *session_->ExecutePrepared("get", {Datum::Int(2)});
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].string_value(), "two");
}

TEST_F(SqlEndToEndTest, SetAndSettings) {
  Exec("SET application_name = 'bench'");
  EXPECT_EQ(*session_->GetSetting("application_name"), "bench");
}

TEST_F(SqlEndToEndTest, TwoTenantsCannotSeeEachOther) {
  Exec("CREATE TABLE secret (id INT PRIMARY KEY, data STRING)");
  Exec("INSERT INTO secret VALUES (1, 'classified')");

  auto other_meta = *controller_->CreateTenant("other");
  auto other_cert = *controller_->IssueCert(other_meta.id);
  SqlNode other_node(2, SqlNode::Options{}, cluster_->clock());
  VELOCE_CHECK_OK(other_node.StartProcess());
  VELOCE_CHECK_OK(other_node.StampTenant(service_.get(), cluster_.get(), other_cert));
  Session* other = *other_node.NewSession();
  // Same table name, different tenant: a fresh namespace.
  auto missing = other->Execute("SELECT * FROM secret");
  EXPECT_TRUE(missing.status().IsNotFound());
  ASSERT_TRUE(other->Execute("CREATE TABLE secret (id INT PRIMARY KEY)").ok());
  auto rs = *other->Execute("SELECT COUNT(*) FROM secret");
  EXPECT_EQ(rs.rows[0][0].int_value(), 0);
}

TEST_F(SqlEndToEndTest, SessionSerializeRestore) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  Exec("INSERT INTO t VALUES (1, 42)");
  Exec("SET application_name = 'migrator'");
  ASSERT_TRUE(session_->Prepare("q", "SELECT v FROM t WHERE id = $1").ok());

  const uint64_t token = 0xDEADBEEF;
  const std::string blob = *session_->Serialize(token);

  // Restore on a different SQL node of the same tenant.
  SqlNode node2(2, SqlNode::Options{}, cluster_->clock());
  VELOCE_CHECK_OK(node2.StartProcess());
  VELOCE_CHECK_OK(node2.StampTenant(service_.get(), cluster_.get(), cert_));
  Session* restored = *node2.RestoreSession(blob, token);
  EXPECT_EQ(*restored->GetSetting("application_name"), "migrator");
  auto rs = *restored->ExecutePrepared("q", {Datum::Int(1)});
  EXPECT_EQ(rs.rows[0][0].int_value(), 42);
  // Wrong revival token is rejected.
  EXPECT_TRUE(node2.RestoreSession(blob, token + 1).status().IsUnauthorized());
}

TEST_F(SqlEndToEndTest, SerializeRequiresIdleSession) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY)");
  Exec("BEGIN");
  EXPECT_FALSE(session_->Serialize(1).ok());
  Exec("ROLLBACK");
  EXPECT_TRUE(session_->Serialize(1).ok());
}

TEST_F(SqlEndToEndTest, DropTable) {
  Exec("CREATE TABLE temp (id INT PRIMARY KEY)");
  Exec("INSERT INTO temp VALUES (1)");
  Exec("DROP TABLE temp");
  EXPECT_TRUE(session_->Execute("SELECT * FROM temp").status().IsNotFound());
  // Recreate works and is empty.
  Exec("CREATE TABLE temp (id INT PRIMARY KEY)");
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM temp").rows[0][0].int_value(), 0);
}

TEST_F(SqlEndToEndTest, MarshalingOnlyInSeparateProcessMode) {
  // The default test node runs kSeparateProcess; its connector marshals.
  Exec("CREATE TABLE t (id INT PRIMARY KEY, v STRING)");
  Exec("INSERT INTO t VALUES (1, 'payload')");
  Exec("SELECT * FROM t");
  EXPECT_GT(node_->connector()->marshaled_bytes(), 0u);

  // A colocated ("Traditional") node moves zero marshaled bytes.
  SqlNode colocated(3, SqlNode::Options{.mode = ProcessMode::kColocated, .vcpus = 4},
                    cluster_->clock());
  VELOCE_CHECK_OK(colocated.StartProcess());
  VELOCE_CHECK_OK(colocated.StampTenant(service_.get(), cluster_.get(), cert_));
  Session* s = *colocated.NewSession();
  ASSERT_TRUE(s->Execute("SELECT * FROM t").ok());
  EXPECT_EQ(colocated.connector()->marshaled_bytes(), 0u);
}

TEST_F(SqlEndToEndTest, FeatureCountersTrackBatches) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  node_->connector()->ResetFeatures();
  Exec("INSERT INTO t VALUES (1, 1)");
  Exec("SELECT * FROM t");
  const auto& f = node_->connector()->features();
  EXPECT_GT(f.write_batches, 0);
  EXPECT_GT(f.read_batches, 0);
  EXPECT_GT(f.write_bytes, 0);
}

TEST_F(SqlEndToEndTest, SqlNodeLifecycle) {
  SqlNode node(9, SqlNode::Options{}, cluster_->clock());
  EXPECT_EQ(node.state(), SqlNode::State::kCold);
  // Sessions are refused before the node is ready.
  EXPECT_FALSE(node.NewSession().ok());
  ASSERT_TRUE(node.StartProcess().ok());
  EXPECT_EQ(node.state(), SqlNode::State::kWarm);
  EXPECT_FALSE(node.NewSession().ok());
  ASSERT_TRUE(node.StampTenant(service_.get(), cluster_.get(), cert_).ok());
  EXPECT_EQ(node.state(), SqlNode::State::kReady);
  ASSERT_TRUE(node.NewSession().ok());
  node.StartDraining();
  EXPECT_EQ(node.state(), SqlNode::State::kDraining);
  node.Stop();
  EXPECT_EQ(node.state(), SqlNode::State::kStopped);
  EXPECT_EQ(node.num_sessions(), 0u);
}

TEST_F(SqlEndToEndTest, CompositePrimaryKey) {
  Exec("CREATE TABLE kvs (w INT, d INT, v STRING, PRIMARY KEY (w, d))");
  Exec("INSERT INTO kvs VALUES (1, 1, 'a'), (1, 2, 'b'), (2, 1, 'c')");
  // Full PK: point read.
  EXPECT_EQ(Exec("SELECT v FROM kvs WHERE w = 1 AND d = 2").rows[0][0].string_value(),
            "b");
  // PK prefix: range scan.
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM kvs WHERE w = 1").rows[0][0].int_value(), 2);
}

}  // namespace
}  // namespace veloce::sql
