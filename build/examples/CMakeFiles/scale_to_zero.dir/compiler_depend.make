# Empty compiler generated dependencies file for scale_to_zero.
# This may be replaced when dependencies are built.
