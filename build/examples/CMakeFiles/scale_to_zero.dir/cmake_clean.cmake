file(REMOVE_RECURSE
  "CMakeFiles/scale_to_zero.dir/scale_to_zero.cpp.o"
  "CMakeFiles/scale_to_zero.dir/scale_to_zero.cpp.o.d"
  "scale_to_zero"
  "scale_to_zero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_to_zero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
