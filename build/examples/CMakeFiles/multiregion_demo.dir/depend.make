# Empty dependencies file for multiregion_demo.
# This may be replaced when dependencies are built.
