file(REMOVE_RECURSE
  "CMakeFiles/multiregion_demo.dir/multiregion_demo.cpp.o"
  "CMakeFiles/multiregion_demo.dir/multiregion_demo.cpp.o.d"
  "multiregion_demo"
  "multiregion_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiregion_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
