file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_13_isolation.dir/bench_fig12_13_isolation.cc.o"
  "CMakeFiles/bench_fig12_13_isolation.dir/bench_fig12_13_isolation.cc.o.d"
  "bench_fig12_13_isolation"
  "bench_fig12_13_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_13_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
