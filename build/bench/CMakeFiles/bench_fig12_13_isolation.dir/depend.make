# Empty dependencies file for bench_fig12_13_isolation.
# This may be replaced when dependencies are built.
