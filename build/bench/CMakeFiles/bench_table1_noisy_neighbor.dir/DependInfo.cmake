
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_noisy_neighbor.cc" "bench/CMakeFiles/bench_table1_noisy_neighbor.dir/bench_table1_noisy_neighbor.cc.o" "gcc" "bench/CMakeFiles/bench_table1_noisy_neighbor.dir/bench_table1_noisy_neighbor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/admission/CMakeFiles/veloce_admission.dir/DependInfo.cmake"
  "/root/repo/build/src/billing/CMakeFiles/veloce_billing.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/veloce_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/veloce_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/veloce_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/veloce_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
