file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_noisy_neighbor.dir/bench_table1_noisy_neighbor.cc.o"
  "CMakeFiles/bench_table1_noisy_neighbor.dir/bench_table1_noisy_neighbor.cc.o.d"
  "bench_table1_noisy_neighbor"
  "bench_table1_noisy_neighbor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_noisy_neighbor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
