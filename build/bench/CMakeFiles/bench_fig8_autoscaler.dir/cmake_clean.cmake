file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_autoscaler.dir/bench_fig8_autoscaler.cc.o"
  "CMakeFiles/bench_fig8_autoscaler.dir/bench_fig8_autoscaler.cc.o.d"
  "bench_fig8_autoscaler"
  "bench_fig8_autoscaler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_autoscaler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
