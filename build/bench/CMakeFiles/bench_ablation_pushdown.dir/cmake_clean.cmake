file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pushdown.dir/bench_ablation_pushdown.cc.o"
  "CMakeFiles/bench_ablation_pushdown.dir/bench_ablation_pushdown.cc.o.d"
  "bench_ablation_pushdown"
  "bench_ablation_pushdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pushdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
