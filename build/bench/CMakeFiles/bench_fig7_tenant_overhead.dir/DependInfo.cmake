
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_tenant_overhead.cc" "bench/CMakeFiles/bench_fig7_tenant_overhead.dir/bench_fig7_tenant_overhead.cc.o" "gcc" "bench/CMakeFiles/bench_fig7_tenant_overhead.dir/bench_fig7_tenant_overhead.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/veloce_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/tenant/CMakeFiles/veloce_tenant.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/veloce_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/veloce_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/billing/CMakeFiles/veloce_billing.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/veloce_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
