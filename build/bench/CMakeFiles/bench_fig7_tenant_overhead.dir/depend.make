# Empty dependencies file for bench_fig7_tenant_overhead.
# This may be replaced when dependencies are built.
