# Empty compiler generated dependencies file for bench_fig11_ecpu_model.
# This may be replaced when dependencies are built.
