# Empty dependencies file for bench_fig10_coldstart.
# This may be replaced when dependencies are built.
