file(REMOVE_RECURSE
  "CMakeFiles/veloce_billing.dir/ecpu_model.cc.o"
  "CMakeFiles/veloce_billing.dir/ecpu_model.cc.o.d"
  "CMakeFiles/veloce_billing.dir/meter.cc.o"
  "CMakeFiles/veloce_billing.dir/meter.cc.o.d"
  "CMakeFiles/veloce_billing.dir/token_bucket.cc.o"
  "CMakeFiles/veloce_billing.dir/token_bucket.cc.o.d"
  "libveloce_billing.a"
  "libveloce_billing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veloce_billing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
