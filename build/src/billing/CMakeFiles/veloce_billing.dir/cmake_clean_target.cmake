file(REMOVE_RECURSE
  "libveloce_billing.a"
)
