# Empty dependencies file for veloce_billing.
# This may be replaced when dependencies are built.
