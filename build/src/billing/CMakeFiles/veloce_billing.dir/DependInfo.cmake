
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/billing/ecpu_model.cc" "src/billing/CMakeFiles/veloce_billing.dir/ecpu_model.cc.o" "gcc" "src/billing/CMakeFiles/veloce_billing.dir/ecpu_model.cc.o.d"
  "/root/repo/src/billing/meter.cc" "src/billing/CMakeFiles/veloce_billing.dir/meter.cc.o" "gcc" "src/billing/CMakeFiles/veloce_billing.dir/meter.cc.o.d"
  "/root/repo/src/billing/token_bucket.cc" "src/billing/CMakeFiles/veloce_billing.dir/token_bucket.cc.o" "gcc" "src/billing/CMakeFiles/veloce_billing.dir/token_bucket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/veloce_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
