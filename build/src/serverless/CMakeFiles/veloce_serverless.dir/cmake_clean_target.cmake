file(REMOVE_RECURSE
  "libveloce_serverless.a"
)
