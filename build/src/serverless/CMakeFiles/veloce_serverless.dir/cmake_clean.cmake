file(REMOVE_RECURSE
  "CMakeFiles/veloce_serverless.dir/autoscaler.cc.o"
  "CMakeFiles/veloce_serverless.dir/autoscaler.cc.o.d"
  "CMakeFiles/veloce_serverless.dir/cluster.cc.o"
  "CMakeFiles/veloce_serverless.dir/cluster.cc.o.d"
  "CMakeFiles/veloce_serverless.dir/kube_sim.cc.o"
  "CMakeFiles/veloce_serverless.dir/kube_sim.cc.o.d"
  "CMakeFiles/veloce_serverless.dir/node_pool.cc.o"
  "CMakeFiles/veloce_serverless.dir/node_pool.cc.o.d"
  "CMakeFiles/veloce_serverless.dir/proxy.cc.o"
  "CMakeFiles/veloce_serverless.dir/proxy.cc.o.d"
  "libveloce_serverless.a"
  "libveloce_serverless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veloce_serverless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
