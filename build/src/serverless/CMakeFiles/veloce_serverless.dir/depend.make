# Empty dependencies file for veloce_serverless.
# This may be replaced when dependencies are built.
