file(REMOVE_RECURSE
  "CMakeFiles/veloce_sim.dir/event_loop.cc.o"
  "CMakeFiles/veloce_sim.dir/event_loop.cc.o.d"
  "CMakeFiles/veloce_sim.dir/region_topology.cc.o"
  "CMakeFiles/veloce_sim.dir/region_topology.cc.o.d"
  "CMakeFiles/veloce_sim.dir/virtual_cpu.cc.o"
  "CMakeFiles/veloce_sim.dir/virtual_cpu.cc.o.d"
  "libveloce_sim.a"
  "libveloce_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veloce_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
