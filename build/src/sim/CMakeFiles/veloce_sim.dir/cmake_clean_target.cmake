file(REMOVE_RECURSE
  "libveloce_sim.a"
)
