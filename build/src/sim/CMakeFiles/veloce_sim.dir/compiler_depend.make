# Empty compiler generated dependencies file for veloce_sim.
# This may be replaced when dependencies are built.
