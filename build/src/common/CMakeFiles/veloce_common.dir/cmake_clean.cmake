file(REMOVE_RECURSE
  "CMakeFiles/veloce_common.dir/clock.cc.o"
  "CMakeFiles/veloce_common.dir/clock.cc.o.d"
  "CMakeFiles/veloce_common.dir/codec.cc.o"
  "CMakeFiles/veloce_common.dir/codec.cc.o.d"
  "CMakeFiles/veloce_common.dir/crc32c.cc.o"
  "CMakeFiles/veloce_common.dir/crc32c.cc.o.d"
  "CMakeFiles/veloce_common.dir/histogram.cc.o"
  "CMakeFiles/veloce_common.dir/histogram.cc.o.d"
  "CMakeFiles/veloce_common.dir/logging.cc.o"
  "CMakeFiles/veloce_common.dir/logging.cc.o.d"
  "CMakeFiles/veloce_common.dir/status.cc.o"
  "CMakeFiles/veloce_common.dir/status.cc.o.d"
  "CMakeFiles/veloce_common.dir/sysinfo.cc.o"
  "CMakeFiles/veloce_common.dir/sysinfo.cc.o.d"
  "libveloce_common.a"
  "libveloce_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veloce_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
