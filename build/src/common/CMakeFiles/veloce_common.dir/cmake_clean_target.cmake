file(REMOVE_RECURSE
  "libveloce_common.a"
)
