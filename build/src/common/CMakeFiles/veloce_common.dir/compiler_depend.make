# Empty compiler generated dependencies file for veloce_common.
# This may be replaced when dependencies are built.
