# Empty dependencies file for veloce_kv.
# This may be replaced when dependencies are built.
