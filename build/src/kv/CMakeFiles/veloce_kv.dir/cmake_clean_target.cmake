file(REMOVE_RECURSE
  "libveloce_kv.a"
)
