file(REMOVE_RECURSE
  "CMakeFiles/veloce_kv.dir/batch.cc.o"
  "CMakeFiles/veloce_kv.dir/batch.cc.o.d"
  "CMakeFiles/veloce_kv.dir/cluster.cc.o"
  "CMakeFiles/veloce_kv.dir/cluster.cc.o.d"
  "CMakeFiles/veloce_kv.dir/mvcc.cc.o"
  "CMakeFiles/veloce_kv.dir/mvcc.cc.o.d"
  "CMakeFiles/veloce_kv.dir/node.cc.o"
  "CMakeFiles/veloce_kv.dir/node.cc.o.d"
  "CMakeFiles/veloce_kv.dir/range.cc.o"
  "CMakeFiles/veloce_kv.dir/range.cc.o.d"
  "CMakeFiles/veloce_kv.dir/transaction.cc.o"
  "CMakeFiles/veloce_kv.dir/transaction.cc.o.d"
  "CMakeFiles/veloce_kv.dir/txn.cc.o"
  "CMakeFiles/veloce_kv.dir/txn.cc.o.d"
  "libveloce_kv.a"
  "libveloce_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veloce_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
