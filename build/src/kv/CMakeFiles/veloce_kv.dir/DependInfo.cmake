
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kv/batch.cc" "src/kv/CMakeFiles/veloce_kv.dir/batch.cc.o" "gcc" "src/kv/CMakeFiles/veloce_kv.dir/batch.cc.o.d"
  "/root/repo/src/kv/cluster.cc" "src/kv/CMakeFiles/veloce_kv.dir/cluster.cc.o" "gcc" "src/kv/CMakeFiles/veloce_kv.dir/cluster.cc.o.d"
  "/root/repo/src/kv/mvcc.cc" "src/kv/CMakeFiles/veloce_kv.dir/mvcc.cc.o" "gcc" "src/kv/CMakeFiles/veloce_kv.dir/mvcc.cc.o.d"
  "/root/repo/src/kv/node.cc" "src/kv/CMakeFiles/veloce_kv.dir/node.cc.o" "gcc" "src/kv/CMakeFiles/veloce_kv.dir/node.cc.o.d"
  "/root/repo/src/kv/range.cc" "src/kv/CMakeFiles/veloce_kv.dir/range.cc.o" "gcc" "src/kv/CMakeFiles/veloce_kv.dir/range.cc.o.d"
  "/root/repo/src/kv/transaction.cc" "src/kv/CMakeFiles/veloce_kv.dir/transaction.cc.o" "gcc" "src/kv/CMakeFiles/veloce_kv.dir/transaction.cc.o.d"
  "/root/repo/src/kv/txn.cc" "src/kv/CMakeFiles/veloce_kv.dir/txn.cc.o" "gcc" "src/kv/CMakeFiles/veloce_kv.dir/txn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/veloce_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/veloce_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
