file(REMOVE_RECURSE
  "CMakeFiles/veloce_tenant.dir/controller.cc.o"
  "CMakeFiles/veloce_tenant.dir/controller.cc.o.d"
  "libveloce_tenant.a"
  "libveloce_tenant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veloce_tenant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
