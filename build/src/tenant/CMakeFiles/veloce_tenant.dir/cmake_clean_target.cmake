file(REMOVE_RECURSE
  "libveloce_tenant.a"
)
