# Empty compiler generated dependencies file for veloce_tenant.
# This may be replaced when dependencies are built.
