# Empty compiler generated dependencies file for veloce_sql.
# This may be replaced when dependencies are built.
