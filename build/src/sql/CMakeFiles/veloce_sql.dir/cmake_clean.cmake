file(REMOVE_RECURSE
  "CMakeFiles/veloce_sql.dir/catalog.cc.o"
  "CMakeFiles/veloce_sql.dir/catalog.cc.o.d"
  "CMakeFiles/veloce_sql.dir/datum.cc.o"
  "CMakeFiles/veloce_sql.dir/datum.cc.o.d"
  "CMakeFiles/veloce_sql.dir/executor.cc.o"
  "CMakeFiles/veloce_sql.dir/executor.cc.o.d"
  "CMakeFiles/veloce_sql.dir/kv_connector.cc.o"
  "CMakeFiles/veloce_sql.dir/kv_connector.cc.o.d"
  "CMakeFiles/veloce_sql.dir/lexer.cc.o"
  "CMakeFiles/veloce_sql.dir/lexer.cc.o.d"
  "CMakeFiles/veloce_sql.dir/parser.cc.o"
  "CMakeFiles/veloce_sql.dir/parser.cc.o.d"
  "CMakeFiles/veloce_sql.dir/pushdown.cc.o"
  "CMakeFiles/veloce_sql.dir/pushdown.cc.o.d"
  "CMakeFiles/veloce_sql.dir/row.cc.o"
  "CMakeFiles/veloce_sql.dir/row.cc.o.d"
  "CMakeFiles/veloce_sql.dir/schema.cc.o"
  "CMakeFiles/veloce_sql.dir/schema.cc.o.d"
  "CMakeFiles/veloce_sql.dir/session.cc.o"
  "CMakeFiles/veloce_sql.dir/session.cc.o.d"
  "CMakeFiles/veloce_sql.dir/sql_node.cc.o"
  "CMakeFiles/veloce_sql.dir/sql_node.cc.o.d"
  "libveloce_sql.a"
  "libveloce_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veloce_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
