
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/catalog.cc" "src/sql/CMakeFiles/veloce_sql.dir/catalog.cc.o" "gcc" "src/sql/CMakeFiles/veloce_sql.dir/catalog.cc.o.d"
  "/root/repo/src/sql/datum.cc" "src/sql/CMakeFiles/veloce_sql.dir/datum.cc.o" "gcc" "src/sql/CMakeFiles/veloce_sql.dir/datum.cc.o.d"
  "/root/repo/src/sql/executor.cc" "src/sql/CMakeFiles/veloce_sql.dir/executor.cc.o" "gcc" "src/sql/CMakeFiles/veloce_sql.dir/executor.cc.o.d"
  "/root/repo/src/sql/kv_connector.cc" "src/sql/CMakeFiles/veloce_sql.dir/kv_connector.cc.o" "gcc" "src/sql/CMakeFiles/veloce_sql.dir/kv_connector.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/sql/CMakeFiles/veloce_sql.dir/lexer.cc.o" "gcc" "src/sql/CMakeFiles/veloce_sql.dir/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/sql/CMakeFiles/veloce_sql.dir/parser.cc.o" "gcc" "src/sql/CMakeFiles/veloce_sql.dir/parser.cc.o.d"
  "/root/repo/src/sql/pushdown.cc" "src/sql/CMakeFiles/veloce_sql.dir/pushdown.cc.o" "gcc" "src/sql/CMakeFiles/veloce_sql.dir/pushdown.cc.o.d"
  "/root/repo/src/sql/row.cc" "src/sql/CMakeFiles/veloce_sql.dir/row.cc.o" "gcc" "src/sql/CMakeFiles/veloce_sql.dir/row.cc.o.d"
  "/root/repo/src/sql/schema.cc" "src/sql/CMakeFiles/veloce_sql.dir/schema.cc.o" "gcc" "src/sql/CMakeFiles/veloce_sql.dir/schema.cc.o.d"
  "/root/repo/src/sql/session.cc" "src/sql/CMakeFiles/veloce_sql.dir/session.cc.o" "gcc" "src/sql/CMakeFiles/veloce_sql.dir/session.cc.o.d"
  "/root/repo/src/sql/sql_node.cc" "src/sql/CMakeFiles/veloce_sql.dir/sql_node.cc.o" "gcc" "src/sql/CMakeFiles/veloce_sql.dir/sql_node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tenant/CMakeFiles/veloce_tenant.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/veloce_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/billing/CMakeFiles/veloce_billing.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/veloce_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/veloce_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
