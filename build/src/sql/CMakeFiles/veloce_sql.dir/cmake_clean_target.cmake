file(REMOVE_RECURSE
  "libveloce_sql.a"
)
