# Empty dependencies file for veloce_workload.
# This may be replaced when dependencies are built.
