file(REMOVE_RECURSE
  "libveloce_workload.a"
)
