file(REMOVE_RECURSE
  "CMakeFiles/veloce_workload.dir/load_pattern.cc.o"
  "CMakeFiles/veloce_workload.dir/load_pattern.cc.o.d"
  "CMakeFiles/veloce_workload.dir/tpcc.cc.o"
  "CMakeFiles/veloce_workload.dir/tpcc.cc.o.d"
  "CMakeFiles/veloce_workload.dir/tpch.cc.o"
  "CMakeFiles/veloce_workload.dir/tpch.cc.o.d"
  "CMakeFiles/veloce_workload.dir/ycsb.cc.o"
  "CMakeFiles/veloce_workload.dir/ycsb.cc.o.d"
  "libveloce_workload.a"
  "libveloce_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veloce_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
