
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/admission/controller.cc" "src/admission/CMakeFiles/veloce_admission.dir/controller.cc.o" "gcc" "src/admission/CMakeFiles/veloce_admission.dir/controller.cc.o.d"
  "/root/repo/src/admission/cpu_controller.cc" "src/admission/CMakeFiles/veloce_admission.dir/cpu_controller.cc.o" "gcc" "src/admission/CMakeFiles/veloce_admission.dir/cpu_controller.cc.o.d"
  "/root/repo/src/admission/work_queue.cc" "src/admission/CMakeFiles/veloce_admission.dir/work_queue.cc.o" "gcc" "src/admission/CMakeFiles/veloce_admission.dir/work_queue.cc.o.d"
  "/root/repo/src/admission/write_controller.cc" "src/admission/CMakeFiles/veloce_admission.dir/write_controller.cc.o" "gcc" "src/admission/CMakeFiles/veloce_admission.dir/write_controller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/veloce_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/veloce_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/veloce_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
