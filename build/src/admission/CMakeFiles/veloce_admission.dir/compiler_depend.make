# Empty compiler generated dependencies file for veloce_admission.
# This may be replaced when dependencies are built.
