file(REMOVE_RECURSE
  "libveloce_admission.a"
)
