file(REMOVE_RECURSE
  "CMakeFiles/veloce_admission.dir/controller.cc.o"
  "CMakeFiles/veloce_admission.dir/controller.cc.o.d"
  "CMakeFiles/veloce_admission.dir/cpu_controller.cc.o"
  "CMakeFiles/veloce_admission.dir/cpu_controller.cc.o.d"
  "CMakeFiles/veloce_admission.dir/work_queue.cc.o"
  "CMakeFiles/veloce_admission.dir/work_queue.cc.o.d"
  "CMakeFiles/veloce_admission.dir/write_controller.cc.o"
  "CMakeFiles/veloce_admission.dir/write_controller.cc.o.d"
  "libveloce_admission.a"
  "libveloce_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veloce_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
