
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/block_cache.cc" "src/storage/CMakeFiles/veloce_storage.dir/block_cache.cc.o" "gcc" "src/storage/CMakeFiles/veloce_storage.dir/block_cache.cc.o.d"
  "/root/repo/src/storage/engine.cc" "src/storage/CMakeFiles/veloce_storage.dir/engine.cc.o" "gcc" "src/storage/CMakeFiles/veloce_storage.dir/engine.cc.o.d"
  "/root/repo/src/storage/env.cc" "src/storage/CMakeFiles/veloce_storage.dir/env.cc.o" "gcc" "src/storage/CMakeFiles/veloce_storage.dir/env.cc.o.d"
  "/root/repo/src/storage/iterator.cc" "src/storage/CMakeFiles/veloce_storage.dir/iterator.cc.o" "gcc" "src/storage/CMakeFiles/veloce_storage.dir/iterator.cc.o.d"
  "/root/repo/src/storage/memtable.cc" "src/storage/CMakeFiles/veloce_storage.dir/memtable.cc.o" "gcc" "src/storage/CMakeFiles/veloce_storage.dir/memtable.cc.o.d"
  "/root/repo/src/storage/sstable.cc" "src/storage/CMakeFiles/veloce_storage.dir/sstable.cc.o" "gcc" "src/storage/CMakeFiles/veloce_storage.dir/sstable.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/storage/CMakeFiles/veloce_storage.dir/wal.cc.o" "gcc" "src/storage/CMakeFiles/veloce_storage.dir/wal.cc.o.d"
  "/root/repo/src/storage/write_batch.cc" "src/storage/CMakeFiles/veloce_storage.dir/write_batch.cc.o" "gcc" "src/storage/CMakeFiles/veloce_storage.dir/write_batch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/veloce_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
