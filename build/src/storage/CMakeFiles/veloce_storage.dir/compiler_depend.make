# Empty compiler generated dependencies file for veloce_storage.
# This may be replaced when dependencies are built.
