file(REMOVE_RECURSE
  "CMakeFiles/veloce_storage.dir/block_cache.cc.o"
  "CMakeFiles/veloce_storage.dir/block_cache.cc.o.d"
  "CMakeFiles/veloce_storage.dir/engine.cc.o"
  "CMakeFiles/veloce_storage.dir/engine.cc.o.d"
  "CMakeFiles/veloce_storage.dir/env.cc.o"
  "CMakeFiles/veloce_storage.dir/env.cc.o.d"
  "CMakeFiles/veloce_storage.dir/iterator.cc.o"
  "CMakeFiles/veloce_storage.dir/iterator.cc.o.d"
  "CMakeFiles/veloce_storage.dir/memtable.cc.o"
  "CMakeFiles/veloce_storage.dir/memtable.cc.o.d"
  "CMakeFiles/veloce_storage.dir/sstable.cc.o"
  "CMakeFiles/veloce_storage.dir/sstable.cc.o.d"
  "CMakeFiles/veloce_storage.dir/wal.cc.o"
  "CMakeFiles/veloce_storage.dir/wal.cc.o.d"
  "CMakeFiles/veloce_storage.dir/write_batch.cc.o"
  "CMakeFiles/veloce_storage.dir/write_batch.cc.o.d"
  "libveloce_storage.a"
  "libveloce_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veloce_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
