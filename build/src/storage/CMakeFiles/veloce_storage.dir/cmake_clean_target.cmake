file(REMOVE_RECURSE
  "libveloce_storage.a"
)
