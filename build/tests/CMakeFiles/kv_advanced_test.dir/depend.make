# Empty dependencies file for kv_advanced_test.
# This may be replaced when dependencies are built.
