file(REMOVE_RECURSE
  "CMakeFiles/kv_advanced_test.dir/kv_advanced_test.cc.o"
  "CMakeFiles/kv_advanced_test.dir/kv_advanced_test.cc.o.d"
  "kv_advanced_test"
  "kv_advanced_test.pdb"
  "kv_advanced_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_advanced_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
