# Empty compiler generated dependencies file for billing_meter_test.
# This may be replaced when dependencies are built.
