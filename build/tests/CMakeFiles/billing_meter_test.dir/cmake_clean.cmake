file(REMOVE_RECURSE
  "CMakeFiles/billing_meter_test.dir/billing_meter_test.cc.o"
  "CMakeFiles/billing_meter_test.dir/billing_meter_test.cc.o.d"
  "billing_meter_test"
  "billing_meter_test.pdb"
  "billing_meter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billing_meter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
