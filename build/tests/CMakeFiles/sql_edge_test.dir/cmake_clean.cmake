file(REMOVE_RECURSE
  "CMakeFiles/sql_edge_test.dir/sql_edge_test.cc.o"
  "CMakeFiles/sql_edge_test.dir/sql_edge_test.cc.o.d"
  "sql_edge_test"
  "sql_edge_test.pdb"
  "sql_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
