# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/tenant_test[1]_include.cmake")
include("/root/repo/build/tests/admission_test[1]_include.cmake")
include("/root/repo/build/tests/billing_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/serverless_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/pushdown_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/kv_advanced_test[1]_include.cmake")
include("/root/repo/build/tests/sql_edge_test[1]_include.cmake")
include("/root/repo/build/tests/billing_meter_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
