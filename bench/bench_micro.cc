// Microbenchmarks (google-benchmark) for the core building blocks: the
// storage engine, the KV layer, and the SQL front-end. Not tied to a paper
// figure; used to watch for regressions in the substrate the experiments
// stand on.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/random.h"
#include "kv/keys.h"
#include "sql/parser.h"
#include "storage/engine.h"

namespace veloce {
namespace {

// --- storage engine ----------------------------------------------------------

void BM_EnginePut(benchmark::State& state) {
  auto engine = std::move(storage::Engine::Open({})).value();
  Random rng(1);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine->Put("key" + std::to_string(i++ % 100000), rng.String(128)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnginePut);

void BM_EngineGet(benchmark::State& state) {
  auto engine = std::move(storage::Engine::Open({})).value();
  Random rng(2);
  for (int i = 0; i < 50000; ++i) {
    VELOCE_CHECK_OK(engine->Put("key" + std::to_string(i), rng.String(128)));
  }
  uint64_t i = 0;
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine->Get("key" + std::to_string(i++ % 50000), &value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineGet);

void BM_EngineScan100(benchmark::State& state) {
  auto engine = std::move(storage::Engine::Open({})).value();
  Random rng(3);
  for (int i = 0; i < 20000; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%08d", i);
    VELOCE_CHECK_OK(engine->Put(key, rng.String(64)));
  }
  for (auto _ : state) {
    auto it = engine->NewIterator();
    int n = 0;
    for (it->Seek("k00010000"); it->Valid() && n < 100; it->Next()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_EngineScan100);

// --- KV layer -----------------------------------------------------------------

void BM_KvBatchPut(benchmark::State& state) {
  kv::KVClusterOptions opts;
  opts.num_nodes = 3;
  kv::KVCluster cluster(opts);
  VELOCE_CHECK_OK(cluster.CreateTenantKeyspace(10));
  Random rng(4);
  uint64_t i = 0;
  const int batch_size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    kv::BatchRequest req;
    req.tenant_id = 10;
    req.ts = cluster.Now();
    for (int r = 0; r < batch_size; ++r) {
      req.AddPut(kv::AddTenantPrefix(10, "k" + std::to_string(i++)), rng.String(64));
    }
    benchmark::DoNotOptimize(cluster.Send(req));
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_KvBatchPut)->Arg(1)->Arg(16)->Arg(64);

void BM_KvTxnCommit(benchmark::State& state) {
  kv::KVClusterOptions opts;
  opts.num_nodes = 3;
  kv::KVCluster cluster(opts);
  VELOCE_CHECK_OK(cluster.CreateTenantKeyspace(10));
  Random rng(5);
  uint64_t i = 0;
  for (auto _ : state) {
    kv::Transaction txn(&cluster, 10);
    VELOCE_CHECK_OK(txn.Put(kv::AddTenantPrefix(10, "t" + std::to_string(i++)), "v"));
    VELOCE_CHECK_OK(txn.Put(kv::AddTenantPrefix(10, "t" + std::to_string(i++)), "v"));
    benchmark::DoNotOptimize(txn.Commit());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KvTxnCommit);

// --- SQL front-end --------------------------------------------------------------

void BM_SqlParse(benchmark::State& state) {
  const std::string sql =
      "SELECT a, SUM(b * (1 - c)) AS total FROM t JOIN u ON t.id = u.tid "
      "WHERE a > 10 AND d = 'x' GROUP BY a ORDER BY total DESC LIMIT 10";
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::Parse(sql));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SqlParse);

void BM_SqlPointSelect(benchmark::State& state) {
  auto stack = bench::MakeSqlStack(sql::ProcessMode::kSeparateProcess);
  VELOCE_CHECK(stack->session->Execute("CREATE TABLE t (id INT PRIMARY KEY, v STRING)").ok());
  for (int i = 0; i < 1000; ++i) {
    VELOCE_CHECK(stack->session->Execute(
        "INSERT INTO t VALUES (" + std::to_string(i) + ", 'value')").ok());
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack->session->Execute(
        "SELECT v FROM t WHERE id = " + std::to_string(i++ % 1000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SqlPointSelect);

void BM_SqlInsert(benchmark::State& state) {
  auto stack = bench::MakeSqlStack(sql::ProcessMode::kSeparateProcess);
  VELOCE_CHECK(stack->session->Execute("CREATE TABLE t (id INT PRIMARY KEY, v STRING)").ok());
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack->session->Execute(
        "INSERT INTO t VALUES (" + std::to_string(i++) + ", 'value')"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SqlInsert);

}  // namespace
}  // namespace veloce

BENCHMARK_MAIN();
