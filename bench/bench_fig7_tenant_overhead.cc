// Reproduces Fig 7: per-tenant memory/CPU overhead amortizes sublinearly
// with the number of suspended and idle tenants.
//
// Suspended tenants (no SQL nodes, storage only): we create batches of
// empty tenants on a host KV cluster and measure marginal RSS and storage
// per tenant as the count grows. Idle tenants additionally hold one SQL
// node with one open session. The paper's absolute numbers (262 KiB /
// 3.3 MiB at 20K/1200 tenants) come from a production heap; the shape to
// reproduce is the amortization curve and the suspended << idle ordering.

#include <unistd.h>

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace veloce {
namespace {

uint64_t ClusterStorageBytes(kv::KVCluster* cluster) {
  uint64_t total = 0;
  for (size_t n = 0; n < cluster->num_nodes(); ++n) {
    total += cluster->node(static_cast<kv::NodeId>(n))->engine()->ApproximateSize();
  }
  return total;
}

}  // namespace
}  // namespace veloce

int main() {
  using namespace veloce;

  // --- Fig 7a: suspended tenants --------------------------------------------
  bench::PrintHeader("Fig 7a: suspended tenant overhead");
  {
    kv::KVClusterOptions opts;
    opts.num_nodes = 3;
    kv::KVCluster cluster(opts);
    tenant::CertificateAuthority ca;
    tenant::TenantController controller(&cluster, &ca);

    const uint64_t heap_base = CurrentHeapBytes();
    const uint64_t storage_base = ClusterStorageBytes(&cluster);
    std::printf("%10s %22s %22s\n", "tenants", "memory KiB/tenant",
                "storage KiB/tenant");
    int created = 0;
    for (int target : {100, 400, 1000, 2000, 4000}) {
      while (created < target) {
        auto meta = controller.CreateTenant("t" + std::to_string(created));
        VELOCE_CHECK(meta.ok());
        ++created;
      }
      const double mem_per_tenant =
          static_cast<double>(CurrentHeapBytes() - heap_base) / created / 1024.0;
      const double storage_per_tenant =
          static_cast<double>(ClusterStorageBytes(&cluster) - storage_base) /
          created / 1024.0;
      std::printf("%10d %22.1f %22.1f\n", created, mem_per_tenant,
                  storage_per_tenant);
    }
    std::printf("shape check: per-tenant overhead falls as tenants amortize "
                "fixed costs (paper: 262 KiB mem, 195 KiB storage at 20K)\n");
  }

  // --- Fig 7b: idle tenants ---------------------------------------------------
  bench::PrintHeader("Fig 7b: idle tenant overhead (one SQL node + session)");
  {
    kv::KVClusterOptions opts;
    opts.num_nodes = 3;
    auto cluster = std::make_unique<kv::KVCluster>(opts);
    tenant::CertificateAuthority ca;
    tenant::TenantController controller(cluster.get(), &ca);
    tenant::AuthorizedKvService service(cluster.get(), &ca);

    const uint64_t heap_base = CurrentHeapBytes();
    std::vector<std::unique_ptr<sql::SqlNode>> nodes;
    std::printf("%10s %22s %26s\n", "tenants", "memory KiB/tenant",
                "CPU (cpu-sec/sec/tenant)");
    int created = 0;
    for (int target : {50, 150, 300, 600}) {
      while (created < target) {
        auto meta = controller.CreateTenant("idle" + std::to_string(created));
        VELOCE_CHECK(meta.ok());
        auto cert = controller.IssueCert(meta->id);
        auto node = std::make_unique<sql::SqlNode>(
            static_cast<uint64_t>(created), sql::SqlNode::Options{}, cluster->clock());
        VELOCE_CHECK_OK(node->StartProcess());
        VELOCE_CHECK_OK(node->StampTenant(&service, cluster.get(), *cert));
        auto session = node->NewSession();
        VELOCE_CHECK(session.ok());  // an idle connection, held open
        nodes.push_back(std::move(node));
        ++created;
      }
      const double mem_per_tenant =
          static_cast<double>(CurrentHeapBytes() - heap_base) / created / 1024.0;
      // Idle CPU: observe a 200ms window in which nothing happens — idle
      // tenants have no background work, only held state.
      const Nanos idle_cpu0 = ProcessCpuNanos();
      const Nanos idle_wall0 = RealClock::Instance()->Now();
      while (RealClock::Instance()->Now() - idle_wall0 < 200 * kMilli) {
        usleep(10000);
      }
      const double idle_secs =
          static_cast<double>(RealClock::Instance()->Now() - idle_wall0) / 1e9;
      const double cpu_per_tenant_per_sec =
          static_cast<double>(ProcessCpuNanos() - idle_cpu0) / 1e9 / idle_secs /
          created;
      std::printf("%10d %22.1f %26.5f\n", created, mem_per_tenant,
                  cpu_per_tenant_per_sec);
    }
    std::printf("shape check: idle tenants cost more memory than suspended "
                "(live SQL node + session state) and ~0 CPU while idle "
                "(paper: 3.3 MiB KV + 180 MiB SQL process, 0.001 cpu/s)\n");
  }
  return 0;
}
