// Point-lookup microbenchmark for the LSM read fast path: bounded
// iterators + key-range pruning + bloom filters + sharded block cache.
//
// Compares, in one binary over the same data layout:
//   fast   — MvccGet via Engine::NewBoundedIterator (prunes tables by key
//            range, rejects tables by bloom probe, lazy per-table iterators)
//   legacy — the pre-fast-path read: a full engine iterator seeked to the
//            key, merging every table regardless of relevance
// across {uniform, zipfian} key distributions and {cold, warm} block cache
// regimes, with blooms on and off (bloom=off writes legacy v1 tables).
//
// Emits BENCH_point_lookup.json (scenario::BenchReport schema) with
// ops/sec per configuration plus the engine's bloom/pruning counters, and
// prints the headline speedup on uniform cold-cache reads (the acceptance
// gate is >= 2x).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/logging.h"
#include "common/random.h"
#include "kv/mvcc.h"
#include "scenario/report.h"
#include "storage/engine.h"

namespace veloce {
namespace {

constexpr int kNumKeys = 20000;
constexpr int kNumLookups = 2000;
constexpr size_t kValueLen = 64;
const kv::Timestamp kWriteTs{1000, 0};
const kv::Timestamp kReadTs{2000, 0};

std::string KeyAt(uint64_t i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "user%08llu",
                static_cast<unsigned long long>(i));
  return buf;
}

/// Loads kNumKeys MVCC rows in shuffled order with a tiny memtable, leaving
/// many overlapping L0 tables — the layout where an unpruned merge is most
/// expensive and filters help most.
std::unique_ptr<storage::Engine> MakeEngine(bool bloom, bool warm_cache) {
  storage::EngineOptions opts;
  opts.memtable_bytes = 128 << 10;
  opts.l0_compaction_trigger = 1000;  // keep every flushed table in L0
  opts.bloom_filters = bloom;
  opts.prefix_extractor = kv::MvccPrefixExtractor;
  // Cold regime: a one-block cache, so essentially every read goes to the
  // Env. Warm regime: everything fits.
  opts.block_cache_bytes = warm_cache ? (64 << 20) : 4096;
  auto engine = *storage::Engine::Open(std::move(opts));

  std::vector<uint64_t> order(kNumKeys);
  for (int i = 0; i < kNumKeys; ++i) order[i] = i;
  Random rnd(42);
  for (int i = kNumKeys - 1; i > 0; --i) {
    std::swap(order[i], order[rnd.Uniform(i + 1)]);
  }
  Random vals(43);
  storage::WriteBatch batch;
  for (int i = 0; i < kNumKeys; ++i) {
    kv::MvccPutValue(&batch, KeyAt(order[i]), kWriteTs, vals.String(kValueLen));
    if (batch.Count() == 100) {
      VELOCE_CHECK_OK(engine->Write(batch));
      batch.Clear();
    }
  }
  if (batch.Count() > 0) VELOCE_CHECK_OK(engine->Write(batch));
  VELOCE_CHECK_OK(engine->Flush());
  return engine;
}

/// The read path this PR replaced: an unbounded merged iterator positioned
/// by Seek, then a manual scan of the key's version slots.
bool LegacyLookup(storage::Engine* engine, const std::string& user_key) {
  auto it = engine->NewIterator();
  it->Seek(kv::EncodeIntentKey(user_key));
  if (!it->Valid()) return false;
  std::string uk;
  kv::Timestamp ts;
  bool is_intent = false;
  if (!kv::DecodeMvccKey(it->key(), &uk, &ts, &is_intent)) return false;
  return uk == user_key && !is_intent && ts <= kReadTs;
}

bool FastLookup(storage::Engine* engine, const std::string& user_key) {
  auto result = kv::MvccGet(engine, user_key, kReadTs);
  VELOCE_CHECK(result.ok());
  return result->value.has_value();
}

struct RunResult {
  double ops_per_sec = 0;
  uint64_t found = 0;
};

template <typename LookupFn, typename NextKeyFn>
RunResult RunLookups(storage::Engine* engine, LookupFn&& lookup,
                     NextKeyFn&& next_key) {
  RunResult r;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kNumLookups; ++i) {
    if (lookup(engine, KeyAt(next_key()))) ++r.found;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
  r.ops_per_sec = kNumLookups / (secs > 0 ? secs : 1e-9);
  return r;
}

struct ConfigResult {
  std::string mode, dist, cache;
  bool bloom;
  RunResult run;
  storage::EngineStats stats;
};

}  // namespace
}  // namespace veloce

int main() {
  using namespace veloce;

  std::vector<ConfigResult> results;
  double fast_uniform_cold_bloom = 0;
  double legacy_uniform_cold_bloom = 0;

  for (const bool bloom : {true, false}) {
    for (const bool warm : {false, true}) {
      auto engine = MakeEngine(bloom, warm);
      std::printf("layout: bloom=%s cache=%s l0_files=%d\n",
                  bloom ? "on" : "off", warm ? "warm" : "cold",
                  engine->NumFilesAtLevel(0));
      if (warm) {
        // Pre-touch every key so the working set is resident.
        for (int i = 0; i < kNumKeys; ++i) {
          (void)FastLookup(engine.get(), KeyAt(i));
        }
      }
      for (const char* mode : {"fast", "legacy"}) {
        for (const char* dist : {"uniform", "zipfian"}) {
          Random uniform_rng(7);
          ZipfianGenerator zipf(kNumKeys, 0.99, 7);
          auto next_key = [&]() -> uint64_t {
            if (std::string(dist) == "uniform") {
              return uniform_rng.Uniform(kNumKeys);
            }
            const uint64_t z = zipf.Next();  // YCSB formula can round to n
            return z < kNumKeys ? z : kNumKeys - 1;
          };
          RunResult run;
          if (std::string(mode) == "fast") {
            run = RunLookups(engine.get(), FastLookup, next_key);
          } else {
            run = RunLookups(engine.get(), LegacyLookup, next_key);
          }
          VELOCE_CHECK(run.found == static_cast<uint64_t>(kNumLookups))
              << mode << "/" << dist << " found only " << run.found;
          ConfigResult cr{mode, dist, warm ? "warm" : "cold", bloom, run,
                          engine->stats()};
          std::printf("  %-6s %-7s %-4s bloom=%-3s : %10.0f ops/sec\n",
                      cr.mode.c_str(), cr.dist.c_str(), cr.cache.c_str(),
                      bloom ? "on" : "off", run.ops_per_sec);
          if (bloom && !warm && cr.dist == "uniform") {
            if (cr.mode == "fast") fast_uniform_cold_bloom = run.ops_per_sec;
            if (cr.mode == "legacy") legacy_uniform_cold_bloom = run.ops_per_sec;
          }
          results.push_back(std::move(cr));
        }
      }
    }
  }

  const double speedup = legacy_uniform_cold_bloom > 0
                             ? fast_uniform_cold_bloom / legacy_uniform_cold_bloom
                             : 0;
  std::printf("\nuniform cold-cache speedup (fast vs legacy, bloom on): %.2fx\n",
              speedup);

  scenario::BenchReport report("point_lookup");
  report.AddParam("num_keys", kNumKeys);
  report.AddParam("num_lookups", kNumLookups);
  report.AddMetric("uniform_cold_speedup", speedup);
  for (const auto& r : results) {
    const std::string cfg = r.mode + "_" + r.dist + "_" + r.cache + "_bloom_" +
                            (r.bloom ? "on" : "off");
    report.AddMetric("ops_per_sec__" + cfg, r.run.ops_per_sec);
  }
  // Filter effectiveness counters from the final (bloom-off warm) engine's
  // predecessors are per-config; the headline bloom-on cold counters are the
  // ones the read-path PR argued from.
  for (const auto& r : results) {
    if (r.bloom && r.cache == "cold" && r.mode == "fast" && r.dist == "uniform") {
      report.AddMetric("bloom_checked", r.stats.bloom_checked);
      report.AddMetric("bloom_useful", r.stats.bloom_useful);
      report.AddMetric("bloom_false_positive", r.stats.bloom_false_positive);
      report.AddMetric("tables_pruned", r.stats.tables_pruned);
    }
  }
  report.Gate("uniform_cold_speedup", speedup, 2.0);

  auto path = report.WriteFile(".");
  VELOCE_CHECK(path.ok());
  std::printf("wrote %s\n", path->c_str());
  std::printf("%s\n", report.Summary().c_str());
  if (!report.passed()) {
    std::printf("WARNING: speedup below the 2x acceptance gate\n");
    return 1;
  }
  return 0;
}
