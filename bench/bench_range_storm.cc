// Range-storm scale bench: the range-scale data plane at paper scale —
// 10,000 tenants and >= 100,000 ranges in one directory — measured with
// real wall-clock latency, not the sim clock.
//
// Phases:
//   1. herd    — create 10k tenant keyspaces, shatter each into 10 ranges
//   2. traffic — addressed reads/writes through a client-side range
//                directory cache over the full directory (wall-clock p50/p99)
//   3. heat    — drive hot load on a tenant subset until load splits fire
//   4. move    — pipelined replica move streams under continuing writes
//   5. cool    — idle sweeps fuse the herd back (tenant-cooldown merges)
//
// After every phase the full directory invariant sweep runs (keyspace
// partition, tenant alignment, lease-epoch sanity). Emits
// BENCH_range_storm_scale.json with gates: >= 100k ranges sustained,
// load splits > 0, merges > 0, and wall-clock read p99 bounded.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"
#include "kv/cluster.h"
#include "kv/keys.h"
#include "scenario/report.h"
#include "tests/range_storm_harness.h"

namespace veloce {
namespace {

using kv::storm::RangeStormHarness;
using kv::storm::StormOptions;

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0;
  std::sort(v->begin(), v->end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v->size()));
  return (*v)[std::min(idx, v->size() - 1)];
}

int Main() {
  const char* env_tenants = std::getenv("VELOCE_RANGESTORM_TENANTS");
  const int n_tenants =
      env_tenants != nullptr ? std::atoi(env_tenants) : 10000;
  const int splits_per_tenant = 9;  // 10 ranges per tenant
  const int hot_tenants = 64;
  const int reads = 20000;

  StormOptions opts;
  opts.seed = 0xB16;
  opts.nodes = 5;
  opts.replication = 3;
  opts.tenants = n_tenants;
  opts.keys_per_tenant = 16;
  opts.check_linearizability = false;  // the storm tests own that proof
  opts.heartbeats = false;             // no fault weather at scale

  ManualClock clock(100 * kSecond);
  kv::KVClusterOptions co = RangeStormHarness::ClusterOptions(opts, &clock);
  auto cluster = std::make_unique<kv::KVCluster>(co);
  RangeStormHarness storm(opts, &clock, cluster.get());

  scenario::BenchReport report("range_storm_scale");
  report.AddParam("tenants", n_tenants);
  report.AddParam("splits_per_tenant", splits_per_tenant);
  report.AddParam("hot_tenants", hot_tenants);
  report.AddParam("reads", reads);

  // Phase 1 — herd: 10k tenant keyspaces, each shattered into 10 ranges.
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < n_tenants; ++i) {
    VELOCE_CHECK_OK(cluster->CreateTenantKeyspace(storm.tenant(i)));
  }
  const double create_ms = ElapsedMs(t0);
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < n_tenants; ++i) {
    for (int s = 1; s <= splits_per_tenant; ++s) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "k%03d", s * 100);
      VELOCE_CHECK_OK(
          cluster->SplitRange(kv::AddTenantPrefix(storm.tenant(i), buf)));
    }
  }
  const double shatter_ms = ElapsedMs(t0);
  const uint64_t peak_ranges = cluster->Ranges().size();
  std::printf("herd: %d tenants, %llu ranges (create %.0fms, shatter %.0fms)\n",
              n_tenants, static_cast<unsigned long long>(peak_ranges),
              create_ms, shatter_ms);
  std::string violation = storm.CheckInvariants();
  VELOCE_CHECK(violation.empty()) << violation;

  // Phase 2 — traffic: addressed ops through the directory cache over the
  // whole herd. Writes seed values; reads measure the wall-clock route.
  Random rnd(0x7AFF1C);
  t0 = std::chrono::steady_clock::now();
  int write_ok = 0;
  const int writes = n_tenants / 2;
  for (int i = 0; i < writes; ++i) {
    const int t = static_cast<int>(rnd.Uniform(n_tenants));
    kv::BatchRequest req;
    req.AddPut(storm.Key(t, static_cast<int>(rnd.Uniform(16))),
               "v" + std::to_string(i));
    if (storm.SendAddressed(t, std::move(req)).ok()) ++write_ok;
    clock.Advance(kMicro);
  }
  const double write_ms = ElapsedMs(t0);
  std::vector<double> read_lat_ms;
  read_lat_ms.reserve(static_cast<size_t>(reads));
  int read_ok = 0;
  for (int i = 0; i < reads; ++i) {
    const int t = static_cast<int>(rnd.Uniform(n_tenants));
    kv::BatchRequest req;
    req.AddGet(storm.Key(t, static_cast<int>(rnd.Uniform(16))));
    const auto r0 = std::chrono::steady_clock::now();
    if (storm.SendAddressed(t, std::move(req)).ok()) ++read_ok;
    read_lat_ms.push_back(ElapsedMs(r0));
  }
  const double read_p50 = Percentile(&read_lat_ms, 0.50);
  const double read_p99 = Percentile(&read_lat_ms, 0.99);
  std::printf("traffic: %d/%d writes ok (%.0fms), %d/%d reads ok, "
              "p50 %.4fms p99 %.4fms\n",
              write_ok, writes, write_ms, read_ok, reads, read_p50, read_p99);

  // Phase 3 — heat: hammer a tenant subset until load splits fire.
  uint64_t load_splits = 0;
  for (int round = 0; round < 30 && load_splits == 0; ++round) {
    for (int rep = 0; rep < 20; ++rep) {
      for (int h = 0; h < hot_tenants; ++h) {
        kv::BatchRequest req;
        req.AddGet(storm.Key(h, static_cast<int>(rnd.Uniform(4))));
        (void)storm.SendAddressed(h, std::move(req));
      }
      clock.Advance(5 * kMilli);
    }
    auto splits = cluster->MaybeSplitRanges();
    VELOCE_CHECK(splits.ok());
    load_splits += static_cast<uint64_t>(*splits);
  }
  const uint64_t max_ranges = cluster->Ranges().size();
  std::printf("heat: %llu load splits, %llu ranges at peak\n",
              static_cast<unsigned long long>(load_splits),
              static_cast<unsigned long long>(max_ranges));
  violation = storm.CheckInvariants();
  VELOCE_CHECK(violation.empty()) << violation;

  // Phase 4 — move: pipelined replica move under continuing writes.
  auto hot = cluster->LookupRange(kv::TenantPrefix(storm.tenant(0)));
  VELOCE_CHECK_OK(hot.status());
  kv::NodeId spare = 0;
  for (kv::NodeId n = 0; n < 5; ++n) {
    if (!hot->HasReplica(n)) spare = n;
  }
  t0 = std::chrono::steady_clock::now();
  VELOCE_CHECK_OK(
      cluster->StartReplicaMove(hot->range_id, hot->replicas[0], spare));
  int move_steps = 0;
  for (bool done = false; !done; ++move_steps) {
    auto step = cluster->StepReplicaMove(hot->range_id, 4 << 10);
    VELOCE_CHECK_OK(step.status());
    done = *step;
    kv::BatchRequest req;
    req.AddPut(storm.Key(0, move_steps % 16), "during-move");
    VELOCE_CHECK(storm.SendAddressed(0, std::move(req)).ok());
  }
  VELOCE_CHECK_OK(cluster->FinishReplicaMove(hot->range_id));
  const double move_ms = ElapsedMs(t0);
  std::printf("move: pipelined cutover after %d chunks (%.1fms)\n",
              move_steps, move_ms);

  // Phase 5 — cool: idle merge sweeps fuse the herd back.
  t0 = std::chrono::steady_clock::now();
  uint64_t merges = 0;
  for (int idle = 0; idle < 3;) {
    clock.Advance(2 * kSecond);
    auto merged = cluster->MaybeMergeRanges();
    VELOCE_CHECK(merged.ok());
    if (*merged > 0) {
      merges += static_cast<uint64_t>(*merged);
      idle = 0;
    } else {
      ++idle;
    }
  }
  const double cool_ms = ElapsedMs(t0);
  const uint64_t final_ranges = cluster->Ranges().size();
  std::printf("cool: %llu merges, %llu final ranges (%.0fms)\n",
              static_cast<unsigned long long>(merges),
              static_cast<unsigned long long>(final_ranges), cool_ms);
  violation = storm.CheckInvariants();
  VELOCE_CHECK(violation.empty()) << violation;

  report.AddMetric("peak_ranges", peak_ranges);
  report.AddMetric("max_ranges", max_ranges);
  report.AddMetric("final_ranges", final_ranges);
  report.AddMetric("create_ms", create_ms);
  report.AddMetric("shatter_ms", shatter_ms);
  report.AddMetric("load_splits", load_splits);
  report.AddMetric("merges", merges);
  report.AddMetric("move_chunks", static_cast<int64_t>(move_steps));
  report.AddMetric("move_ms", move_ms);
  report.AddMetric("cool_ms", cool_ms);
  report.AddMetric("writes_ok", static_cast<int64_t>(write_ok));
  report.AddMetric("reads_ok", static_cast<int64_t>(read_ok));
  report.AddMetric("read_p50_ms", read_p50);
  report.AddMetric("read_p99_ms", read_p99);
  report.AddMetric("cache_hits", storm.stats().cache_hits);
  report.AddMetric("cache_misses", storm.stats().cache_misses);
  report.AddMetric("redirects", storm.stats().redirects);

  report.Gate("peak_ranges", static_cast<double>(max_ranges), 100000.0);
  report.Gate("load_splits", static_cast<double>(load_splits), 1.0);
  report.Gate("merges", static_cast<double>(merges), 1.0);
  // Wall-clock read p99 through a 100k-range directory: the cached route
  // must stay well under a millisecond on any reasonable machine.
  report.AssertLe("read_p99_ms", read_p99, 2.0,
                  "cached route latency at 100k ranges");

  auto path = report.WriteFile(".");
  VELOCE_CHECK(path.ok());
  std::printf("wrote %s\n%s\n", path->c_str(), report.Summary().c_str());
  return report.passed() ? 0 : 1;
}

}  // namespace
}  // namespace veloce

int main() { return veloce::Main(); }
