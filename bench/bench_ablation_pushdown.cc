// Ablation: the paper's future-work row-filter and projection push-down
// (Section 8), implemented here behind `SET kv_pushdown = on`.
//
// A selective filter query over a wide table runs in both deployment modes
// with push-down off and on. Without push-down, Serverless marshals every
// scanned row across the SQL/KV boundary only to discard 90% of them and
// most of each row's bytes; with push-down, filtering and projection happen
// at the KV node, closing most of the Serverless gap for selective scans.

#include <cstdio>

#include "bench/bench_util.h"

namespace veloce {
namespace {

struct Run {
  double cpu_seconds;
  uint64_t marshaled_bytes;
};

Run Measure(sql::ProcessMode mode, bool pushdown) {
  auto stack = bench::MakeSqlStack(mode);
  auto exec = [&](const std::string& sql) {
    auto result = stack->session->Execute(sql);
    VELOCE_CHECK(result.ok()) << result.status().ToString();
    return std::move(result).value();
  };
  exec("CREATE TABLE wide (id INT PRIMARY KEY, grp INT, a STRING, b STRING, c STRING)");
  Random rng(3);
  for (int i = 0; i < 2000; i += 25) {
    std::string stmt = "INSERT INTO wide VALUES ";
    for (int j = i; j < i + 25; ++j) {
      if (j > i) stmt += ", ";
      stmt += "(" + std::to_string(j) + ", " + std::to_string(j % 20) + ", '" +
              rng.String(100) + "', '" + rng.String(100) + "', '" + rng.String(100) +
              "')";
    }
    exec(stmt);
  }
  bench::ScatterRanges(stack.get(), 1);
  if (pushdown) exec("SET kv_pushdown = on");

  const uint64_t marshal0 = stack->node->connector()->marshaled_bytes();
  const Nanos cpu0 = ThreadCpuNanos();
  for (int i = 0; i < 30; ++i) {
    auto rs = exec("SELECT id, grp FROM wide WHERE grp = 7");
    VELOCE_CHECK(rs.rows.size() == 100);
  }
  Run run;
  run.cpu_seconds = static_cast<double>(ThreadCpuNanos() - cpu0) / 1e9;
  run.marshaled_bytes = stack->node->connector()->marshaled_bytes() - marshal0;
  return run;
}

}  // namespace
}  // namespace veloce

int main() {
  using namespace veloce;
  bench::PrintHeader("Ablation: row-filter + projection push-down (future work)");
  std::printf("query: SELECT id, grp FROM wide WHERE grp = 7  (5%% selective, "
              "wide rows, 30 runs)\n\n");
  std::printf("%-14s %12s %14s %18s\n", "mode", "pushdown", "CPU (s)",
              "bytes marshaled");
  const Run trad_off = Measure(sql::ProcessMode::kColocated, false);
  const Run srvls_off = Measure(sql::ProcessMode::kSeparateProcess, false);
  const Run srvls_on = Measure(sql::ProcessMode::kSeparateProcess, true);
  std::printf("%-14s %12s %14.3f %18llu\n", "traditional", "off",
              trad_off.cpu_seconds,
              static_cast<unsigned long long>(trad_off.marshaled_bytes));
  std::printf("%-14s %12s %14.3f %18llu\n", "serverless", "off",
              srvls_off.cpu_seconds,
              static_cast<unsigned long long>(srvls_off.marshaled_bytes));
  std::printf("%-14s %12s %14.3f %18llu\n", "serverless", "on",
              srvls_on.cpu_seconds,
              static_cast<unsigned long long>(srvls_on.marshaled_bytes));
  std::printf("\nserverless CPU penalty vs traditional: %.2fx without pushdown, "
              "%.2fx with pushdown\n",
              srvls_off.cpu_seconds / trad_off.cpu_seconds,
              srvls_on.cpu_seconds / trad_off.cpu_seconds);
  std::printf("marshaled bytes reduced %.0fx by evaluating the filter and "
              "projection at the KV node\n",
              static_cast<double>(srvls_off.marshaled_bytes) /
                  static_cast<double>(srvls_on.marshaled_bytes ? srvls_on.marshaled_bytes : 1));
  return 0;
}
