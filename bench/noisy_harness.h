#ifndef VELOCE_BENCH_NOISY_HARNESS_H_
#define VELOCE_BENCH_NOISY_HARNESS_H_

// Shared harness for the noisy-neighbor experiments (Table 1, Fig 12,
// Fig 13): three 32-vCPU KV nodes (one per VM, as in the paper's
// n2-standard-32 deployment), three noisy tenants running a no-wait TPC-C
// shape in a tight closed loop, and one well-behaved test tenant with
// think time. Work is simulated KV work (cpu-milliseconds on the node's
// VirtualCpu) routed to range leaseholders through the KV directory, so
// lease movement is real.
//
// Modes:
//   kNoLimits   — admission control off. Overloaded nodes fail their
//                 liveness checks and shed leases; operations that land on
//                 a dead/moved leaseholder pay retry penalties. Chaos.
//   kAcOnly     — per-node admission control keeps the runnable queue
//                 short; nodes stay live; CPU ~100% (work-conserving).
//   kAcPlusEcpu — additionally, each noisy tenant is capped at 10 eCPU by
//                 the distributed token bucket; per-VM CPU settles ~40%.

#include <array>
#include <cstdio>
#include <memory>
#include <vector>

#include "admission/controller.h"
#include "billing/ecpu_model.h"
#include "billing/token_bucket.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "kv/cluster.h"
#include "obs/metrics.h"
#include "obs/obs_context.h"
#include "scenario/env_builder.h"
#include "sim/event_loop.h"
#include "sim/virtual_cpu.h"

namespace veloce::bench {

enum class IsolationMode { kNoLimits, kAcOnly, kAcPlusEcpu };

inline const char* ModeName(IsolationMode mode) {
  switch (mode) {
    case IsolationMode::kNoLimits: return "No Limits";
    case IsolationMode::kAcOnly: return "AC only";
    case IsolationMode::kAcPlusEcpu: return "AC & eCPU Limits";
  }
  return "?";
}

struct NoisyResult {
  Histogram test_latency;           ///< test-tenant transaction latency
  uint64_t test_txns = 0;
  double test_tpm = 0;              ///< test-tenant txns/minute ("tpmC" role)
  /// Time series, one entry per 10 s: per-node cores used and lease count.
  std::vector<std::array<double, 3>> node_cores;
  std::vector<std::array<int, 3>> node_leases;
  /// Per-tenant vCPUs used per 10s interval: [noisy1, noisy2, noisy3, test].
  std::vector<std::array<double, 4>> tenant_vcpus;
  int liveness_failures = 0;
  /// Registry-sourced totals (veloce_admission_* / veloce_billing_*).
  double admitted_ops = 0;
  double wq_throttled = 0;
  double ecpu_tokens_granted = 0;
};

class NoisyNeighborHarness {
 public:
  static constexpr int kNodes = 3;
  static constexpr int kVcpusPerNode = 32;
  static constexpr int kNoisyTenants = 3;
  static constexpr Nanos kTestThinkMean = 2 * kSecond;
  static constexpr int kTestWorkers = 10;
  static constexpr int kNoisyWorkersPerTenant = 64;
  static constexpr Nanos kOpCpu = 2 * kMilli;     // per KV op
  static constexpr int kOpsPerTxn = 8;
  static constexpr double kNoisyEcpuLimit = 10.0;  // vCPUs (paper's limit)

  explicit NoisyNeighborHarness(IsolationMode mode) : mode_(mode) {
    // Every layer registers into one shared registry; the harness reads the
    // exported series back instead of peeking component internals.
    obs_ = obs::ObsContext{loop_.clock(), &metrics_, nullptr};
    // The KV fabric comes from the shared environment builder (the same
    // path the scenario harness and integration tests construct through).
    kv_env_ = scenario::ScenarioEnvBuilder()
                  .KvNodes(kNodes)
                  .Clock(loop_.clock())
                  .Obs(obs_)
                  .BuildKv();
    cluster_ = std::move(kv_env_.cluster);
    for (int n = 0; n < kNodes; ++n) {
      cpus_.push_back(std::make_unique<sim::VirtualCpu>(
          &loop_, kVcpusPerNode, kMilli, obs_, std::to_string(n)));
      admission::NodeAdmissionController::Options ac_opts;
      ac_opts.vcpus = kVcpusPerNode;
      ac_opts.enabled = mode != IsolationMode::kNoLimits;
      ac_opts.obs = obs_;
      ac_opts.instance = std::to_string(n);
      acs_.push_back(std::make_unique<admission::NodeAdmissionController>(
          &loop_, cpus_.back().get(), ac_opts));
    }
    // Tenants 0..2 noisy, 3 = test. Each gets a keyspace split into several
    // ranges so leases spread across nodes.
    for (int t = 0; t < kNoisyTenants + 1; ++t) {
      const kv::TenantId id = 10 + static_cast<kv::TenantId>(t);
      tenant_ids_[static_cast<size_t>(t)] = id;
      VELOCE_CHECK_OK(cluster_->CreateTenantKeyspace(id));
      for (int split = 1; split < 6; ++split) {
        VELOCE_CHECK_OK(cluster_->SplitRange(
            kv::AddTenantPrefix(id, "shard" + std::to_string(split))));
      }
    }
    cluster_->BalanceLeases();
    // eCPU buckets: limited for noisy tenants in kAcPlusEcpu mode.
    for (int t = 0; t < kNoisyTenants + 1; ++t) {
      const double quota = (mode == IsolationMode::kAcPlusEcpu && t < kNoisyTenants)
                               ? kNoisyEcpuLimit
                               : 0.0;  // 0 = unlimited
      buckets_.push_back(std::make_unique<billing::TokenBucketServer>(
          loop_.clock(), quota, obs_, std::to_string(t)));
      bucket_clients_.push_back(std::make_unique<billing::TokenBucketClient>(
          buckets_.back().get(), static_cast<uint64_t>(t), loop_.clock()));
    }
  }

  NoisyResult Run(Nanos duration) {
    // Start workers.
    for (int t = 0; t < kNoisyTenants; ++t) {
      for (int w = 0; w < kNoisyWorkersPerTenant; ++w) {
        StartWorker(t, /*think_mean=*/0, w * 7 + t);
      }
    }
    for (int w = 0; w < kTestWorkers; ++w) {
      StartWorker(kNoisyTenants, kTestThinkMean, 1000 + w);
    }
    // Health monitor (liveness checks) every second.
    sim::PeriodicTask health(&loop_, kSecond, [this] { HealthCheck(); });
    health.Start();
    // Metrics every 10 seconds.
    sim::PeriodicTask metrics(&loop_, 10 * kSecond, [this] { SampleMetrics(); });
    metrics.Start();

    const Nanos start = loop_.Now();
    loop_.RunUntil(start + duration);
    health.Cancel();
    metrics.Cancel();
    stopped_ = true;

    result_.test_tpm = static_cast<double>(result_.test_txns) /
                       (static_cast<double>(duration) / kMinute);
    // Registry-sourced totals: the admission and billing layers export
    // these; no private struct peeking.
    result_.admitted_ops = metrics_.Sum("veloce_admission_admitted_total");
    result_.wq_throttled = metrics_.Sum("veloce_admission_wq_throttled_total");
    result_.ecpu_tokens_granted = metrics_.Sum("veloce_billing_tokens_granted_total");
    return std::move(result_);
  }

  /// The shared registry (for benches that want more series).
  obs::MetricsRegistry* metrics() { return &metrics_; }

 private:
  struct WorkerState {
    int tenant_idx;
    Nanos think_mean;
    Random rng;
    Nanos txn_started = 0;
    int ops_left = 0;
  };

  void StartWorker(int tenant_idx, Nanos think_mean, uint64_t seed) {
    auto worker = std::make_shared<WorkerState>();
    worker->tenant_idx = tenant_idx;
    worker->think_mean = think_mean;
    worker->rng = Random(seed * 2654435761 + 1);
    ScheduleNextTxn(worker, /*initial=*/true);
  }

  void ScheduleNextTxn(std::shared_ptr<WorkerState> worker, bool initial) {
    Nanos delay = 0;
    if (worker->think_mean > 0) {
      delay = static_cast<Nanos>(
          worker->rng.Exponential(static_cast<double>(worker->think_mean)));
    } else if (initial) {
      delay = static_cast<Nanos>(worker->rng.Uniform(100 * kMilli));
    }
    // eCPU pacing: consume the estimated transaction cost up front; the
    // client returns the throttle delay implied by trickle grants.
    const double txn_ecpu_tokens =
        static_cast<double>(kOpsPerTxn * kOpCpu) / kMilli;  // 1 token = 1ms
    const Nanos throttle =
        bucket_clients_[static_cast<size_t>(worker->tenant_idx)]->Consume(
            txn_ecpu_tokens);
    loop_.Schedule(delay + throttle, [this, worker] {
      worker->txn_started = loop_.Now();
      worker->ops_left = kOpsPerTxn;
      RunNextOp(worker, /*attempt=*/0);
    });
  }

  void RunNextOp(std::shared_ptr<WorkerState> worker, int attempt) {
    if (stopped_) return;
    const kv::TenantId tenant = tenant_ids_[static_cast<size_t>(worker->tenant_idx)];
    // Route to the leaseholder of a random key in the tenant's keyspace.
    const std::string key = kv::AddTenantPrefix(
        tenant, "shard" + std::to_string(worker->rng.Uniform(6)) + "/k" +
                    std::to_string(worker->rng.Uniform(1000)));
    auto range = cluster_->LookupRange(key);
    VELOCE_CHECK(range.ok());
    const kv::NodeId node = range->leaseholder;
    if (!cluster_->node(node)->live()) {
      // Leaseholder is failing liveness: back off and retry (the paper's
      // chaotic no-limits regime).
      if (attempt < 20) {
        loop_.Schedule(250 * kMilli, [this, worker, attempt] {
          RunNextOp(worker, attempt + 1);
        });
        return;
      }
      // Give up on this txn (counts as latency but not a commit).
      ScheduleNextTxn(worker, false);
      return;
    }
    admission::KvWork work;
    work.tenant_id = tenant;
    work.is_write = worker->rng.Bernoulli(0.4);
    work.write_bytes = 256;
    work.cpu_cost = kOpCpu;
    work.txn_start = worker->txn_started;
    work.done = [this, worker] {
      if (stopped_) return;
      if (--worker->ops_left > 0) {
        RunNextOp(worker, 0);
        return;
      }
      // Transaction complete.
      if (worker->tenant_idx == kNoisyTenants) {
        result_.test_latency.Record(loop_.Now() - worker->txn_started);
        ++result_.test_txns;
      }
      ScheduleNextTxn(worker, false);
    };
    acs_[node]->Submit(std::move(work));
  }

  void HealthCheck() {
    for (int n = 0; n < kNodes; ++n) {
      // Liveness reads the node's exported runnable-queue gauge (what a
      // real health checker scrapes), not the VirtualCpu object.
      const int runnable = static_cast<int>(metrics_.Value(
          "veloce_sim_runnable_queue", {{"node", std::to_string(n)}}));
      kv::KVNode* node = cluster_->node(static_cast<kv::NodeId>(n));
      if (node->live() && runnable > 2 * kVcpusPerNode) {
        // Overloaded: the node misses its liveness heartbeats and sheds
        // its leases (paper Fig 12, "no limits" regime).
        cluster_->SetNodeLive(static_cast<kv::NodeId>(n), false);
        ++result_.liveness_failures;
        const kv::NodeId id = static_cast<kv::NodeId>(n);
        loop_.Schedule(3 * kSecond, [this, id] {
          cluster_->SetNodeLive(id, true);
          // Recovered nodes pull leases back, redistributing load (and, in
          // the chaotic regime, re-starting the cycle).
          cluster_->BalanceLeases();
        });
      }
    }
  }

  void SampleMetrics() {
    std::array<double, 3> cores{};
    std::array<int, 3> leases{};
    for (int n = 0; n < kNodes; ++n) {
      const obs::Labels node_label = {{"node", std::to_string(n)}};
      const double busy_secs =
          metrics_.Value("veloce_sim_busy_seconds_total", node_label);
      cores[static_cast<size_t>(n)] =
          (busy_secs - prev_busy_[static_cast<size_t>(n)]) / 10.0;
      prev_busy_[static_cast<size_t>(n)] = busy_secs;
      leases[static_cast<size_t>(n)] =
          static_cast<int>(metrics_.Value("veloce_kv_leases", node_label));
    }
    result_.node_cores.push_back(cores);
    result_.node_leases.push_back(leases);

    std::array<double, 4> tenant_vcpus{};
    for (int t = 0; t < kNoisyTenants + 1; ++t) {
      Nanos busy = 0;
      for (int n = 0; n < kNodes; ++n) {
        busy += cpus_[static_cast<size_t>(n)]->tenant_busy(
            tenant_ids_[static_cast<size_t>(t)]);
      }
      tenant_vcpus[static_cast<size_t>(t)] =
          static_cast<double>(busy - prev_tenant_busy_[static_cast<size_t>(t)]) /
          (10.0 * kSecond);
      prev_tenant_busy_[static_cast<size_t>(t)] = busy;
    }
    result_.tenant_vcpus.push_back(tenant_vcpus);
  }

  IsolationMode mode_;
  sim::EventLoop loop_;
  obs::MetricsRegistry metrics_;  // outlives everything registered into it
  obs::ObsContext obs_;
  scenario::KvEnv kv_env_;  ///< env plumbing behind cluster_ (fault env unused)
  std::unique_ptr<kv::KVCluster> cluster_;
  std::vector<std::unique_ptr<sim::VirtualCpu>> cpus_;
  std::vector<std::unique_ptr<admission::NodeAdmissionController>> acs_;
  std::vector<std::unique_ptr<billing::TokenBucketServer>> buckets_;
  std::vector<std::unique_ptr<billing::TokenBucketClient>> bucket_clients_;
  std::array<kv::TenantId, 4> tenant_ids_{};
  std::array<double, 3> prev_busy_{};  // busy-seconds gauge at last sample
  std::array<Nanos, 4> prev_tenant_busy_{};
  NoisyResult result_;
  bool stopped_ = false;
};

}  // namespace veloce::bench

#endif  // VELOCE_BENCH_NOISY_HARNESS_H_
