// Reproduces Fig 10: cold start latency.
//   (a) pre-warming the SQL node process cuts p50/p99 cold start by more
//       than half (production prober measured 650ms p99 optimized);
//   (b) a region-aware system database gives sub-second cold starts in
//       every region (p50 <= 0.73s), while leaseholders pinned to
//       asia-southeast1 push other regions to multiple seconds.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "serverless/cluster.h"
#include "serverless/multiregion.h"

namespace veloce {
namespace {

/// Measures one cold start: connect to a suspended tenant, run one query.
Nanos ProbeOnce(serverless::ServerlessCluster* cluster, kv::TenantId tenant) {
  const Nanos start = cluster->loop()->Now();
  auto conn = cluster->ConnectSync(tenant);
  VELOCE_CHECK(conn.ok()) << conn.status().ToString();
  // First query (prober does SELECT of one row; schema ops equivalent here).
  VELOCE_CHECK((*conn)->session->Execute("SELECT 1").ok());
  const Nanos elapsed = cluster->loop()->Now() - start;
  // Tear back down to the suspended state for the next probe.
  VELOCE_CHECK_OK(cluster->proxy()->Disconnect((*conn)->id));
  for (auto* node : cluster->pool()->NodesForTenant(tenant)) {
    cluster->pool()->Remove(node);
  }
  cluster->loop()->RunFor(kSecond);
  return elapsed;
}

Histogram ProbeMany(bool prewarm, int probes) {
  serverless::ServerlessCluster::Options opts;
  opts.kv.num_nodes = 3;
  opts.pool.prewarm_process = prewarm;
  opts.pool.stamp_jitter = 150 * kMilli;
  opts.kube.latency_jitter = 400 * kMilli;
  serverless::ServerlessCluster cluster(opts);
  auto meta = cluster.CreateTenant("probed");
  VELOCE_CHECK(meta.ok());
  Histogram hist;
  for (int i = 0; i < probes; ++i) {
    hist.Record(ProbeOnce(&cluster, meta->id));
  }
  return hist;
}

}  // namespace
}  // namespace veloce

int main() {
  using namespace veloce;

  // --- Fig 10a ---------------------------------------------------------------
  bench::PrintHeader("Fig 10a: cold start latency, unoptimized vs pre-warmed");
  const int probes = 150;
  Histogram unoptimized = ProbeMany(/*prewarm=*/false, probes);
  Histogram optimized = ProbeMany(/*prewarm=*/true, probes);
  std::printf("%-14s %10s %10s\n", "config", "p50", "p99");
  std::printf("%-14s %10s %10s\n", "unoptimized",
              Histogram::FormatNanos(unoptimized.P50()).c_str(),
              Histogram::FormatNanos(unoptimized.P99()).c_str());
  std::printf("%-14s %10s %10s\n", "optimized",
              Histogram::FormatNanos(optimized.P50()).c_str(),
              Histogram::FormatNanos(optimized.P99()).c_str());
  std::printf("shape check: pre-warming reduces p50 by %.1fx (paper: >2x; "
              "optimized p99 ~650ms)\n",
              static_cast<double>(unoptimized.P50()) /
                  static_cast<double>(optimized.P50()));

  // --- Fig 10b ---------------------------------------------------------------
  bench::PrintHeader(
      "Fig 10b: multi-region cold start, per region and system-db config");
  sim::RegionTopology topology = sim::RegionTopology::PaperDefaults();
  serverless::ColdStartLatencyModel unopt_model(
      &topology, {.region_aware = false, .lease_region = "asia-southeast1"});
  serverless::ColdStartLatencyModel aware_model(&topology, {.region_aware = true});

  std::printf("%-18s %16s %16s\n", "prober region", "unoptimized p50",
              "optimized p50");
  Random rng(17);
  for (const auto& region : topology.regions()) {
    // End-to-end = local pod/stamp path (pre-warmed pool, with jitter) +
    // the blocking system-database accesses per config.
    Histogram unopt_hist, aware_hist;
    for (int i = 0; i < 200; ++i) {
      const Nanos local_path =
          120 * kMilli +  // cert stamp + fs watch + KV connect
          static_cast<Nanos>(rng.Uniform(150 * kMilli)) +  // stamp jitter
          50 * kMilli;    // proxy connect + auth round trips
      unopt_hist.Record(local_path + unopt_model.TotalNetworkLatency(region));
      aware_hist.Record(local_path + aware_model.TotalNetworkLatency(region));
    }
    std::printf("%-18s %16s %16s\n", region.c_str(),
                Histogram::FormatNanos(unopt_hist.P50()).c_str(),
                Histogram::FormatNanos(aware_hist.P50()).c_str());
  }
  std::printf("shape check: region-aware config is sub-second in every region "
              "(paper: p50 <= 0.73s); lease-in-asia penalizes europe/us by the "
              "cross-region RTT per blocking access\n");
  return 0;
}
