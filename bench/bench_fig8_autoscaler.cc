// Reproduces Fig 8: SQL nodes are scaled dynamically based on CPU
// utilization — capacity (nodes x 4 vCPU) hugs 4x the 5-minute average
// usage and reacts to spikes via the 1.33x-peak rule.
//
// A production-like load pattern (idle -> ramp -> plateau -> spike ->
// decay -> idle) plays against the autoscaler over ~3.5 hours of sim time.

#include <cstdio>

#include "bench/bench_util.h"
#include "serverless/cluster.h"
#include "workload/load_pattern.h"

int main() {
  using namespace veloce;
  bench::PrintHeader("Fig 8: responsive autoscaling against variable load");

  serverless::ServerlessCluster::Options opts;
  opts.kv.num_nodes = 3;
  serverless::ServerlessCluster cluster(opts);
  auto meta = cluster.CreateTenant("variable");
  VELOCE_CHECK(meta.ok());
  const kv::TenantId tenant = meta->id;
  cluster.autoscaler()->Start();

  workload::LoadPattern pattern = workload::LoadPattern::ProductionLike();
  const Nanos total = pattern.TotalDuration();

  std::printf("%8s %12s %14s %12s %10s\n", "t(min)", "load vCPU", "capacity vCPU",
              "target vCPU", "nodes");
  double tracking_error_sum = 0;
  int tracked_points = 0;
  const Nanos start = cluster.loop()->Now();
  for (Nanos t = 0; t <= total; t += kMinute) {
    cluster.SetTenantCpuUsage(tenant, pattern.At(t));
    cluster.loop()->RunUntil(start + t);
    if (t % (5 * kMinute) == 0) {
      const int nodes = cluster.autoscaler()->CurrentNodes(tenant);
      const double capacity = nodes * 4.0;
      const double avg = cluster.autoscaler()->AvgUsage(tenant);
      const double target = 4.0 * avg;
      std::printf("%8lld %12.2f %14.1f %12.1f %10d\n",
                  static_cast<long long>(t / kMinute), pattern.At(t), capacity,
                  target, nodes);
      if (avg > 0.5) {
        tracking_error_sum += capacity / target;
        ++tracked_points;
      }
    }
  }
  const double mean_ratio =
      tracked_points > 0 ? tracking_error_sum / tracked_points : 0;
  std::printf("\nshape check: capacity/(4 x avg usage) averaged %.2f across "
              "active periods (paper: close alignment, ~1 node per avg vCPU; "
              "expect ~1.0-1.4 from node-granularity rounding)\n",
              mean_ratio);
  std::printf("scale-to-zero: final node count = %d (load pattern ends idle)\n",
              cluster.autoscaler()->CurrentNodes(tenant));
  return 0;
}
