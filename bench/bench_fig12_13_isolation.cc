// Reproduces Fig 12 (per-node cores used and range leases over time) and
// Fig 13 (per-tenant eCPU usage) for the three isolation regimes:
//   * No limits:    nodes overload, fail liveness, shed leases — chaotic
//                   lease counts and CPU.
//   * AC only:      nodes stay healthy and ~fully used (work-conserving
//                   admission control), leases stable.
//   * AC + eCPU=10: noisy tenants capped; per-VM CPU settles around 40%
//                   and per-tenant usage is flat at the limit.

#include "bench/noisy_harness.h"

namespace {

void PrintSeries(const veloce::bench::NoisyResult& result) {
  std::printf("%8s | %8s %8s %8s | %7s %7s %7s | %7s %7s %7s %7s\n", "t(s)",
              "n1 cores", "n2 cores", "n3 cores", "l1", "l2", "l3", "noisy1",
              "noisy2", "noisy3", "test");
  for (size_t i = 0; i < result.node_cores.size(); ++i) {
    std::printf("%8zu | %8.1f %8.1f %8.1f | %7d %7d %7d | %7.1f %7.1f %7.1f %7.1f\n",
                (i + 1) * 10, result.node_cores[i][0], result.node_cores[i][1],
                result.node_cores[i][2], result.node_leases[i][0],
                result.node_leases[i][1], result.node_leases[i][2],
                result.tenant_vcpus[i][0], result.tenant_vcpus[i][1],
                result.tenant_vcpus[i][2], result.tenant_vcpus[i][3]);
  }
}

double MeanUtilization(const veloce::bench::NoisyResult& result) {
  double total = 0;
  size_t count = 0;
  for (const auto& cores : result.node_cores) {
    for (double c : cores) {
      total += c / veloce::bench::NoisyNeighborHarness::kVcpusPerNode;
      ++count;
    }
  }
  return count == 0 ? 0 : total / static_cast<double>(count);
}

int LeaseMoves(const veloce::bench::NoisyResult& result) {
  int moves = 0;
  for (size_t i = 1; i < result.node_leases.size(); ++i) {
    for (int n = 0; n < 3; ++n) {
      moves += std::abs(result.node_leases[i][static_cast<size_t>(n)] -
                        result.node_leases[i - 1][static_cast<size_t>(n)]);
    }
  }
  return moves;
}

}  // namespace

int main() {
  using namespace veloce;
  using bench::IsolationMode;

  struct Summary {
    const char* name;
    double utilization;
    int lease_moves;
    int liveness_failures;
    double noisy_vcpus_late;  // noisy tenant 1 usage in the final interval
  };
  std::vector<Summary> summaries;

  for (IsolationMode mode : {IsolationMode::kNoLimits, IsolationMode::kAcOnly,
                             IsolationMode::kAcPlusEcpu}) {
    std::printf("\n=== Fig 12/13 [%s]: cores, leases, per-tenant vCPUs ===\n",
                bench::ModeName(mode));
    bench::NoisyNeighborHarness harness(mode);
    bench::NoisyResult result = harness.Run(2 * kMinute);
    PrintSeries(result);
    const auto& last = result.tenant_vcpus.back();
    summaries.push_back({bench::ModeName(mode), MeanUtilization(result),
                         LeaseMoves(result), result.liveness_failures, last[0]});
  }

  std::printf("\n=== summary ===\n");
  std::printf("%-18s %14s %12s %18s %16s\n", "mode", "mean VM util",
              "lease moves", "liveness failures", "noisy1 vCPU (end)");
  for (const auto& s : summaries) {
    std::printf("%-18s %13.0f%% %12d %18d %16.1f\n", s.name,
                s.utilization * 100, s.lease_moves, s.liveness_failures,
                s.noisy_vcpus_late);
  }
  std::printf("\nshape check (paper): no-limits -> chaotic leases + liveness "
              "failures; AC -> stable leases, ~100%% CPU (work-conserving); "
              "AC+eCPU -> stable ~42%% CPU with each noisy tenant pinned near "
              "its 10 vCPU limit.\n");
  return 0;
}
