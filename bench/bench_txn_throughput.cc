// Transaction-commit throughput for the hot-path overhaul: batched
// timestamp oracle + buffered writes + 1PC + pipelined intents + parallel
// commit, against the classic path (synchronous intent per write, refresh +
// committed record + resolution all before the ack).
//
// Workloads, T client threads each committing small write txns with WAL
// sync enabled (a ~30us device flush per fsync via an Env wrapper — an
// in-memory sync is free and the batched paths would have nothing to
// amortize):
//   uncontended — per-thread keyspaces, 4 writes per txn; measures the pure
//                 round-trip/fsync savings (1PC commits the whole txn in
//                 one replicated batch instead of one batch per write plus
//                 per-intent resolution).
//   contended   — all threads hammer a 4-key hot set, 2 writes per txn with
//                 bounded conflict retries; guards against the fast path
//                 regressing under conflicts.
//
// Emits BENCH_txn_throughput.json (scenario::BenchReport schema). Headline
// gates: fast vs classic >= 3x uncontended at 8 threads, and >= 0.9x (no
// regression) contended.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "kv/cluster.h"
#include "kv/keys.h"
#include "kv/transaction.h"
#include "scenario/report.h"
#include "storage/background.h"
#include "storage/env.h"

namespace veloce {
namespace {

constexpr int kThreads = 8;
constexpr int kUncontendedTxnsPerThread = 100;
constexpr int kContendedTxnsPerThread = 50;
constexpr int kWritesPerTxn = 4;
constexpr int kHotKeys = 4;
constexpr kv::TenantId kTenant = 10;
constexpr auto kSyncLatency = std::chrono::microseconds(30);

/// WritableFile wrapper charging a fixed latency per Sync (same shape as
/// bench_write_path): emulates an NVMe flush on the in-memory Env.
class SlowSyncFile : public storage::WritableFile {
 public:
  explicit SlowSyncFile(std::unique_ptr<storage::WritableFile> inner)
      : inner_(std::move(inner)) {}
  Status Append(Slice data) override { return inner_->Append(data); }
  Status Sync() override {
    std::this_thread::sleep_for(kSyncLatency);
    return inner_->Sync();
  }
  Status Close() override { return inner_->Close(); }
  uint64_t Size() const override { return inner_->Size(); }

 private:
  std::unique_ptr<storage::WritableFile> inner_;
};

class SlowSyncEnv : public storage::Env {
 public:
  SlowSyncEnv() : inner_(storage::NewMemEnv()) {}
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<storage::WritableFile>* file) override {
    std::unique_ptr<storage::WritableFile> raw;
    VELOCE_RETURN_IF_ERROR(inner_->NewWritableFile(fname, &raw));
    *file = std::make_unique<SlowSyncFile>(std::move(raw));
    return Status::OK();
  }
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<storage::RandomAccessFile>* file) override {
    return inner_->NewRandomAccessFile(fname, file);
  }
  Status DeleteFile(const std::string& fname) override {
    return inner_->DeleteFile(fname);
  }
  bool FileExists(const std::string& fname) override {
    return inner_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* out) override {
    return inner_->GetChildren(dir, out);
  }
  Status CreateDirIfMissing(const std::string& dir) override {
    return inner_->CreateDirIfMissing(dir);
  }
  Status RenameFile(const std::string& src, const std::string& target) override {
    return inner_->RenameFile(src, target);
  }

 private:
  std::unique_ptr<storage::Env> inner_;
};

std::string HotKey(int i) {
  return kv::AddTenantPrefix(kTenant, "hot" + std::to_string(i));
}

std::string PrivateKey(int thread, int txn, int i) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "t%02d-x%05d-k%d", thread, txn, i);
  return kv::AddTenantPrefix(kTenant, buf);
}

/// Runs one transaction to completion with bounded conflict retries:
/// WriteIntentError on a write backs off and retries the write; a retryable
/// or aborted commit restarts the whole txn. Returns attempts used (>= 1)
/// or 0 if the txn could not commit within the bound.
int CommitWithRetries(kv::KVCluster* cluster, const kv::TxnOptions& opts,
                      const std::vector<std::pair<std::string, std::string>>& writes) {
  for (int attempt = 1; attempt <= 100; ++attempt) {
    kv::Transaction txn(cluster, kTenant, 0, nullptr, opts);
    bool failed = false;
    for (const auto& [key, value] : writes) {
      Status s = txn.Put(key, value);
      for (int spin = 0; s.IsWriteIntentError() && spin < 10000; ++spin) {
        std::this_thread::yield();
        s = txn.Put(key, value);
      }
      if (!s.ok()) {
        failed = true;
        break;
      }
    }
    if (!failed) {
      const Status c = txn.Commit();
      if (c.ok()) return attempt;
      if (!c.IsTransactionRetry() && c.code() != Code::kTransactionAborted &&
          !c.IsWriteIntentError()) {
        VELOCE_CHECK(false) << "unexpected commit error: " << c.ToString();
      }
    }
    if (!txn.finalized()) (void)txn.Rollback();
    std::this_thread::yield();
  }
  return 0;
}

struct ModeResult {
  std::string mode;
  std::string workload;
  int threads = 0;
  double txns_per_sec = 0;
  uint64_t committed = 0;
  uint64_t retries = 0;
};

ModeResult RunMode(const std::string& mode, const std::string& workload,
                   int threads) {
  SlowSyncEnv env;
  std::unique_ptr<storage::ThreadPoolExecutor> pool;
  kv::KVClusterOptions copts;
  copts.num_nodes = 3;
  copts.replication_factor = 3;
  copts.engine_options.env = &env;
  copts.engine_options.sync_wal = true;

  kv::TxnOptions topts;
  if (mode == "classic") {
    topts = kv::TxnOptions::Classic();
  } else {
    pool = std::make_unique<storage::ThreadPoolExecutor>(2);
    topts.executor = pool.get();
    topts.async_finalize = true;  // drained below, before cluster teardown
  }

  ModeResult result;
  result.mode = mode;
  result.workload = workload;
  result.threads = threads;
  {
    kv::KVCluster cluster(copts);
    VELOCE_CHECK_OK(cluster.CreateTenantKeyspace(kTenant));
    const int txns_per_thread = workload == "uncontended"
                                    ? kUncontendedTxnsPerThread
                                    : kContendedTxnsPerThread;

    std::vector<uint64_t> committed(threads, 0), attempts(threads, 0);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (int x = 0; x < txns_per_thread; ++x) {
          std::vector<std::pair<std::string, std::string>> writes;
          if (workload == "uncontended") {
            for (int i = 0; i < kWritesPerTxn; ++i) {
              writes.emplace_back(PrivateKey(t, x, i),
                                  "value-" + std::to_string(x * 10 + i));
            }
          } else {
            // Two distinct hot keys per txn, rotating through the hot set.
            writes.emplace_back(HotKey((t + x) % kHotKeys),
                                "hot-" + std::to_string(t * 1000 + x));
            writes.emplace_back(HotKey((t + x + 1) % kHotKeys),
                                "hot-" + std::to_string(t * 1000 + x + 1));
          }
          const int used = CommitWithRetries(&cluster, topts, writes);
          VELOCE_CHECK(used > 0) << "txn failed to commit within retry bound";
          ++committed[t];
          attempts[t] += used - 1;
        }
      });
    }
    for (auto& w : workers) w.join();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (pool != nullptr) pool->Drain();  // async finalizes before teardown

    const double secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
    for (int t = 0; t < threads; ++t) {
      result.committed += committed[t];
      result.retries += attempts[t];
    }
    result.txns_per_sec = result.committed / (secs > 0 ? secs : 1e-9);

    // Sanity: every committed txn's writes must be readable.
    kv::BatchRequest probe;
    probe.tenant_id = kTenant;
    probe.ts = cluster.Now();
    if (workload == "uncontended") {
      probe.AddGet(PrivateKey(0, txns_per_thread - 1, kWritesPerTxn - 1));
    } else {
      probe.AddGet(HotKey(0));
    }
    auto resp = cluster.Send(probe);
    VELOCE_CHECK(resp.ok()) << resp.status().ToString();
    VELOCE_CHECK(resp->responses[0].found) << "committed write not visible";
  }
  if (pool != nullptr) pool->Drain();
  return result;
}

}  // namespace
}  // namespace veloce

int main() {
  using namespace veloce;

  std::vector<ModeResult> results;
  double classic_uncontended_8t = 0, fast_uncontended_8t = 0;
  double classic_contended_8t = 0, fast_contended_8t = 0;

  for (const char* workload : {"uncontended", "contended"}) {
    for (const int threads : {1, kThreads}) {
      for (const char* mode : {"classic", "fast"}) {
        ModeResult r = RunMode(mode, workload, threads);
        std::printf("%-11s %-7s %dt : %8.0f txns/sec (%llu committed, %llu retries)\n",
                    r.workload.c_str(), r.mode.c_str(), r.threads, r.txns_per_sec,
                    static_cast<unsigned long long>(r.committed),
                    static_cast<unsigned long long>(r.retries));
        if (threads == kThreads) {
          if (r.workload == "uncontended") {
            (r.mode == "fast" ? fast_uncontended_8t : classic_uncontended_8t) =
                r.txns_per_sec;
          } else {
            (r.mode == "fast" ? fast_contended_8t : classic_contended_8t) =
                r.txns_per_sec;
          }
        }
        results.push_back(std::move(r));
      }
    }
  }

  const double uncontended_speedup =
      classic_uncontended_8t > 0 ? fast_uncontended_8t / classic_uncontended_8t : 0;
  const double contended_ratio =
      classic_contended_8t > 0 ? fast_contended_8t / classic_contended_8t : 0;
  std::printf("\nuncontended speedup (fast vs classic, %d threads): %.2fx\n",
              kThreads, uncontended_speedup);
  std::printf("contended ratio   (fast vs classic, %d threads): %.2fx\n",
              kThreads, contended_ratio);

  scenario::BenchReport report("txn_throughput");
  report.AddParam("threads", kThreads);
  report.AddParam("writes_per_txn", kWritesPerTxn);
  report.AddParam("uncontended_txns_per_thread", kUncontendedTxnsPerThread);
  report.AddParam("contended_txns_per_thread", kContendedTxnsPerThread);
  report.AddParam("hot_keys", kHotKeys);
  report.AddParam("wal_sync_latency_us", 30);
  report.AddMetric("uncontended_speedup_8t", uncontended_speedup);
  report.AddMetric("contended_ratio_8t", contended_ratio);
  for (const auto& r : results) {
    const std::string cfg =
        r.workload + "_" + r.mode + "_" + std::to_string(r.threads) + "t";
    report.AddMetric("txns_per_sec__" + cfg, r.txns_per_sec);
    report.AddMetric("retries__" + cfg, static_cast<double>(r.retries));
  }
  report.Gate("uncontended_speedup_8t", uncontended_speedup, 3.0);
  report.Gate("contended_ratio_8t", contended_ratio, 0.9);

  auto path = report.WriteFile(".");
  VELOCE_CHECK(path.ok());
  std::printf("wrote %s\n", path->c_str());
  std::printf("%s\n", report.Summary().c_str());
  if (!report.passed()) {
    std::printf("WARNING: below acceptance gates (>=3x uncontended, >=0.9x contended)\n");
    return 1;
  }
  return 0;
}
