// SQL execution engine benchmark: the vectorized columnar engine
// (sql/vec/) against the interpreted row engine over identical data and
// identical KV traffic.
//
// Three query shapes on a ~20k-row lineitem table:
//   q1_lite        — TPC-H Q1 shape: full-scan multi-aggregate GROUP BY
//   filtered_scan  — selective predicate + narrow projection
//   hash_join      — non-PK equi join + filter
// Each runs on both engines (`SET vectorize = off` vs the default) in the
// colocated deployment so the comparison isolates executor CPU; results are
// cross-checked row-for-row first.
//
// A fourth measurement runs Q1-lite in the separate-process (Serverless)
// deployment with `kv_pushdown` off vs on: the aggregation fragment then
// executes KV-side and only per-group partial states cross the SQL/KV
// boundary (marshaled-bytes shrink).
//
// Emits BENCH_sql_exec.json (scenario::BenchReport schema). Acceptance
// gates: >= 5x vectorized speedup on q1_lite, >= 3x marshal shrink from the
// pushed fragment.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "scenario/report.h"

namespace veloce {
namespace {

constexpr int kRows = 20000;
// The per-shape CPU estimate is the minimum over this many runs; enough
// iterations that a machine still settling from a parallel build/test run
// (scheduler noise, cold frequency governor) gets at least a few quiet ones.
constexpr int kQ1Iters = 24;
constexpr int kScanIters = 24;
constexpr int kJoinIters = 16;

const char* kQ1 =
    "SELECT returnflag, linestatus, SUM(qty) AS sum_qty, "
    "SUM(extprice) AS sum_base, SUM(extprice * (1 - discount)) AS sum_disc, "
    "SUM(extprice * (1 - discount) * (1 + tax)) AS sum_charge, "
    "AVG(qty) AS avg_qty, AVG(extprice) AS avg_price, AVG(discount) AS avg_disc, "
    "COUNT(*) AS n "
    "FROM lineitem WHERE shipdate <= 19980902 "
    "GROUP BY returnflag, linestatus ORDER BY returnflag, linestatus";

const char* kFilteredScan =
    "SELECT id, qty, extprice FROM lineitem "
    "WHERE shipdate > 19960000 AND discount < 0.03 AND qty >= 25.0";

const char* kJoin =
    "SELECT l.id, s.name, l.qty FROM lineitem l "
    "JOIN supplier s ON l.suppgrp = s.grp AND s.active = 1 "
    "WHERE l.qty > 45.0";

void Populate(bench::SqlStack* stack) {
  auto exec = [&](const std::string& sql) {
    auto result = stack->session->Execute(sql);
    VELOCE_CHECK(result.ok()) << result.status().ToString();
  };
  exec("CREATE TABLE lineitem (id INT PRIMARY KEY, returnflag STRING, "
       "linestatus STRING, qty DOUBLE, extprice DOUBLE, discount DOUBLE, "
       "tax DOUBLE, shipdate INT, suppgrp INT)");
  exec("CREATE TABLE supplier (sid INT PRIMARY KEY, grp INT, name STRING, "
       "active INT)");
  const char* flags[] = {"A", "N", "R"};
  const char* statuses[] = {"F", "O"};
  char buf[64];
  Random rng(7);
  for (int i = 0; i < kRows; i += 100) {
    std::string stmt = "INSERT INTO lineitem VALUES ";
    for (int j = i; j < i + 100; ++j) {
      if (j > i) stmt += ", ";
      std::snprintf(buf, sizeof(buf), "%.1f, %.2f, %.2f, %.2f",
                    1.0 + static_cast<double>(rng.Uniform(50)),
                    900.0 + static_cast<double>(rng.Uniform(100000)) / 100.0,
                    static_cast<double>(rng.Uniform(11)) / 100.0,
                    static_cast<double>(rng.Uniform(9)) / 100.0);
      stmt += "(" + std::to_string(j) + ", '" + flags[rng.Uniform(3)] + "', '" +
              statuses[rng.Uniform(2)] + "', " + buf + ", " +
              std::to_string(19920000 + rng.Uniform(70000)) + ", " +
              std::to_string(rng.Uniform(200)) + ")";
    }
    exec(stmt);
  }
  for (int i = 0; i < 200; i += 50) {
    std::string stmt = "INSERT INTO supplier VALUES ";
    for (int j = i; j < i + 50; ++j) {
      if (j > i) stmt += ", ";
      stmt += "(" + std::to_string(j) + ", " + std::to_string(j) + ", 'supp" +
              std::to_string(j) + "', " + std::to_string(j % 2) + ")";
    }
    exec(stmt);
  }
  bench::ScatterRanges(stack, 2);
}

sql::ResultSet Exec(bench::SqlStack* stack, const std::string& sql) {
  auto result = stack->session->Execute(sql);
  VELOCE_CHECK(result.ok()) << sql << ": " << result.status().ToString();
  return std::move(result).value();
}

bool SameResults(const sql::ResultSet& a, const sql::ResultSet& b) {
  if (a.rows.size() != b.rows.size()) return false;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    if (a.rows[i].size() != b.rows[i].size()) return false;
    for (size_t j = 0; j < a.rows[i].size(); ++j) {
      if (a.rows[i][j].Compare(b.rows[i][j]) != 0) return false;
    }
  }
  return true;
}

// SQL-executor CPU only: total thread CPU minus the KV-service share the
// connector attributes below the boundary (MVCC scan, storage). Both
// engines issue byte-identical scan requests, so the excluded share is the
// same work on both sides; what remains is decode + expression eval +
// aggregate/join state — the part the engines actually differ on.
double OneStatementCpuSeconds(bench::SqlStack* stack, const std::string& sql) {
  const Nanos kv0 = stack->node->connector()->kv_cpu_nanos();
  const Nanos cpu0 = ThreadCpuNanos();
  (void)Exec(stack, sql);
  const Nanos cpu = ThreadCpuNanos() - cpu0;
  const Nanos kv = stack->node->connector()->kv_cpu_nanos() - kv0;
  return static_cast<double>(cpu - kv) / 1e9;
}

struct EnginePair {
  double row_s;
  double vec_s;
};

// Measures the two engines with alternating statements (row, vec, row, vec,
// …) so machine-state drift — frequency scaling, a background job tailing
// off — degrades both measurement streams instead of biasing whichever
// engine happened to run second. Each stream keeps its minimum
// per-statement CPU over `iters` runs: the minimum is the standard
// noise-robust estimator (interference only ever adds time), applied
// symmetrically to both engines.
EnginePair MeasureCpuSeconds(bench::SqlStack* stack, const std::string& sql,
                             int iters) {
  EnginePair best{1e30, 1e30};
  Exec(stack, "SET vectorize = off");
  (void)Exec(stack, sql);  // warm caches / page in
  Exec(stack, "SET vectorize = on");
  (void)Exec(stack, sql);
  for (int i = 0; i < iters; ++i) {
    Exec(stack, "SET vectorize = off");
    best.row_s = std::min(best.row_s, OneStatementCpuSeconds(stack, sql));
    Exec(stack, "SET vectorize = on");
    best.vec_s = std::min(best.vec_s, OneStatementCpuSeconds(stack, sql));
  }
  return best;
}

}  // namespace
}  // namespace veloce

int main() {
  using namespace veloce;
  bench::PrintHeader("SQL execution: vectorized columnar engine vs row engine");

  auto stack = bench::MakeSqlStack(sql::ProcessMode::kColocated);
  Populate(stack.get());

  struct Shape {
    const char* name;
    const char* sql;
    int iters;
  };
  const Shape shapes[] = {{"q1_lite", kQ1, kQ1Iters},
                          {"filtered_scan", kFilteredScan, kScanIters},
                          {"hash_join", kJoin, kJoinIters}};

  scenario::BenchReport report("sql_exec");
  report.AddParam("rows", kRows);

  std::printf("%-16s %10s %12s %12s %10s\n", "query", "rows", "row (s)",
              "vec (s)", "speedup");
  double q1_speedup = 0;
  for (const Shape& shape : shapes) {
    // Cross-check: both engines must return identical results.
    Exec(stack.get(), "SET vectorize = off");
    sql::ResultSet row_rs = Exec(stack.get(), shape.sql);
    VELOCE_CHECK(stack->session->last_select_engine() == "row");
    Exec(stack.get(), "SET vectorize = on");
    sql::ResultSet vec_rs = Exec(stack.get(), shape.sql);
    VELOCE_CHECK(stack->session->last_select_engine() == "vectorized")
        << shape.name << " did not run vectorized";
    VELOCE_CHECK(SameResults(row_rs, vec_rs)) << shape.name << " results differ";

    const EnginePair pair = MeasureCpuSeconds(stack.get(), shape.sql, shape.iters);
    const double row_s = pair.row_s;
    const double vec_s = pair.vec_s;
    const double speedup = vec_s > 0 ? row_s / vec_s : 0;
    if (std::string(shape.name) == "q1_lite") q1_speedup = speedup;
    std::printf("%-16s %10zu %12.3f %12.3f %9.2fx\n", shape.name,
                vec_rs.rows.size(), row_s, vec_s, speedup);
    report.AddMetric(std::string(shape.name) + "_row_cpu_seconds", row_s);
    report.AddMetric(std::string(shape.name) + "_vec_cpu_seconds", vec_s);
    report.AddMetric(std::string(shape.name) + "_speedup", speedup);
  }

  // Serverless deployment: the Q1 aggregation fragment pushed below the
  // scan — only partial aggregate states cross the SQL/KV boundary.
  auto srvls = bench::MakeSqlStack(sql::ProcessMode::kSeparateProcess);
  Populate(srvls.get());
  sql::KvConnector* connector = srvls->node->connector();
  sql::ResultSet frag_off_rs = Exec(srvls.get(), kQ1);
  uint64_t m0 = connector->marshaled_bytes();
  (void)Exec(srvls.get(), kQ1);
  const uint64_t bytes_off = connector->marshaled_bytes() - m0;
  Exec(srvls.get(), "SET kv_pushdown = on");
  sql::ResultSet frag_on_rs = Exec(srvls.get(), kQ1);
  VELOCE_CHECK(SameResults(frag_off_rs, frag_on_rs))
      << "pushed fragment changed Q1 results";
  m0 = connector->marshaled_bytes();
  (void)Exec(srvls.get(), kQ1);
  const uint64_t bytes_on = connector->marshaled_bytes() - m0;
  const double shrink =
      bytes_on > 0 ? static_cast<double>(bytes_off) / bytes_on : 0;
  std::printf("\nq1_lite fragment pushdown (serverless): %llu -> %llu "
              "marshaled bytes (%.0fx)\n",
              static_cast<unsigned long long>(bytes_off),
              static_cast<unsigned long long>(bytes_on), shrink);
  report.AddMetric("q1_lite_marshal_bytes_no_fragment", bytes_off);
  report.AddMetric("q1_lite_marshal_bytes_fragment", bytes_on);
  report.AddMetric("q1_lite_marshal_shrink", shrink);

  report.Gate("q1_lite_speedup", q1_speedup, 5.0);
  report.Gate("q1_lite_marshal_shrink", shrink, 3.0);

  auto path = report.WriteFile(".");
  VELOCE_CHECK(path.ok());
  std::printf("wrote %s\n", path->c_str());
  std::printf("%s\n", report.Summary().c_str());
  if (!report.passed()) {
    std::printf("FAILED: below acceptance gates\n");
    return 1;
  }
  return 0;
}
