// Reproduces Fig 11: estimated Serverless CPU vs actual Dedicated CPU
// across 23 varied, held-out workloads. The paper's bar: ~80% of workloads
// estimate within +/-20% of actual.
//
// Phase 1 (calibration, mirrors Section 5.2.1): controlled KV-level tests
// that isolate each of the six input features; a least-squares solve over
// the feature matrix yields per-unit CPU costs, which become the
// sub-models of an EstimatedCpuModel.
//
// Phase 2 (evaluation): each workload runs twice —
//   * on a Dedicated (colocated) stack, measuring actual total CPU;
//   * on a Serverless stack, measuring SQL CPU directly (total minus the
//     KV side of the boundary) and *estimating* KV CPU from the feature
//     counters via the calibrated model.
// estimated = measured_sql_cpu + model(features) is compared to actual.

#include <cmath>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "billing/ecpu_model.h"
#include "kv/keys.h"
#include "workload/tpcc.h"
#include "workload/tpch.h"
#include "workload/ycsb.h"

namespace veloce {
namespace {

// --- tiny dense linear algebra for the 6x6 normal equations -----------------

bool SolveLeastSquares(const std::vector<std::array<double, 6>>& rows,
                       const std::vector<double>& y, std::array<double, 6>* coeff) {
  double ata[6][7] = {};
  for (size_t r = 0; r < rows.size(); ++r) {
    for (int i = 0; i < 6; ++i) {
      for (int j = 0; j < 6; ++j) ata[i][j] += rows[r][i] * rows[r][j];
      ata[i][6] += rows[r][i] * y[r];
    }
  }
  // Ridge term keeps the system well-conditioned (features correlate).
  for (int i = 0; i < 6; ++i) ata[i][i] += 1e-6 * (ata[i][i] + 1);
  for (int col = 0; col < 6; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 6; ++r) {
      if (std::fabs(ata[r][col]) > std::fabs(ata[pivot][col])) pivot = r;
    }
    if (std::fabs(ata[pivot][col]) < 1e-18) return false;
    for (int c = 0; c <= 6; ++c) std::swap(ata[col][c], ata[pivot][c]);
    for (int r = 0; r < 6; ++r) {
      if (r == col) continue;
      const double f = ata[r][col] / ata[col][col];
      for (int c = col; c <= 6; ++c) ata[r][c] -= f * ata[col][c];
    }
  }
  for (int i = 0; i < 6; ++i) (*coeff)[i] = std::max(0.0, ata[i][6] / ata[i][i]);
  return true;
}

std::array<double, 6> FeatureVector(const billing::IntervalFeatures& f) {
  return {f.read_batches, f.read_requests, f.read_bytes,
          f.write_batches, f.write_requests, f.write_bytes};
}

// --- calibration -------------------------------------------------------------

billing::EstimatedCpuModel Calibrate() {
  struct Config {
    bool write;
    int requests_per_batch;
    int value_bytes;
    bool scan;
    int batches;
  };
  // Controlled tests varying one dimension at a time (plus a mixed one).
  const Config configs[] = {
      {false, 1, 64, false, 3000},  {false, 16, 64, false, 400},
      {false, 1, 4096, false, 800}, {false, 1, 64, true, 300},
      {false, 1, 2048, true, 150},  {false, 1, 512, true, 250},
      {true, 1, 64, false, 3000},   {true, 16, 64, false, 400},
      {true, 1, 4096, false, 800},  {true, 8, 512, false, 500},
      {false, 8, 512, false, 500},
  };
  // Each calibration config runs on BOTH deployments. The model's target is
  // what the paper's is: "estimated CPU on a Serverless virtual cluster is
  // expected to roughly correspond to CPU consumption on a physical cluster
  // running on dedicated hardware" — so we fit
  //   model(features) ~= dedicated_total_cpu - serverless_sql_cpu.
  auto run_config = [](const Config& cfg, sql::ProcessMode mode,
                       billing::IntervalFeatures* features, double* total_cpu,
                       double* sql_cpu) {
    auto stack = bench::MakeSqlStack(mode);
    sql::KvConnector* connector = stack->node->connector();
    Random rng(3);
    if (!cfg.write) {
      for (int i = 0; i < 2000; i += 50) {
        kv::BatchRequest req;
        for (int j = i; j < i + 50; ++j) {
          req.AddPut("cal/" + std::to_string(j),
                     rng.String(static_cast<size_t>(cfg.value_bytes)));
        }
        VELOCE_CHECK(connector->Send(req).ok());
      }
    }
    connector->ResetFeatures();
    const Nanos kv0 = connector->kv_cpu_nanos();
    const Nanos cpu0 = ThreadCpuNanos();
    uint64_t key = 0;
    for (int b = 0; b < cfg.batches; ++b) {
      kv::BatchRequest req;
      if (cfg.scan) {
        req.AddScan("cal/", "cal0", 100);
      } else {
        for (int r = 0; r < cfg.requests_per_batch; ++r) {
          const std::string k = "cal/" + std::to_string(key++ % 2000);
          if (cfg.write) {
            req.AddPut(k, rng.String(static_cast<size_t>(cfg.value_bytes)));
          } else {
            req.AddGet(k);
          }
        }
      }
      VELOCE_CHECK(connector->Send(req).ok());
    }
    *total_cpu = static_cast<double>(ThreadCpuNanos() - cpu0) / 1e9;
    const double kv_cpu =
        static_cast<double>(connector->kv_cpu_nanos() - kv0) / 1e9;
    *sql_cpu = *total_cpu - kv_cpu;
    *features = connector->features();
  };

  std::vector<std::array<double, 6>> rows;
  std::vector<double> cpu_secs;
  for (const Config& cfg : configs) {
    billing::IntervalFeatures features;
    double srvls_total = 0, srvls_sql = 0;
    run_config(cfg, sql::ProcessMode::kSeparateProcess, &features, &srvls_total,
               &srvls_sql);
    billing::IntervalFeatures dedicated_features;
    double dedicated_total = 0, dedicated_sql = 0;
    run_config(cfg, sql::ProcessMode::kColocated, &dedicated_features,
               &dedicated_total, &dedicated_sql);
    rows.push_back(FeatureVector(features));
    cpu_secs.push_back(std::max(0.0, dedicated_total - srvls_sql));
  }
  std::array<double, 6> coeff{};
  VELOCE_CHECK(SolveLeastSquares(rows, cpu_secs, &coeff));

  billing::EstimatedCpuModel model;
  for (int i = 0; i < 6; ++i) {
    // Flat sub-models from the solved per-unit costs (rate-dependence is
    // second-order at this scale; bench_fig5 demonstrates the curve).
    model.SetSubModel(static_cast<billing::Feature>(i),
                      billing::PiecewiseLinear({{1.0, coeff[static_cast<size_t>(i)]},
                                                {1e9, coeff[static_cast<size_t>(i)]}}));
  }
  std::printf("calibrated per-unit KV CPU costs:\n");
  for (int i = 0; i < 6; ++i) {
    std::printf("  %-15s %12.3f us/unit\n",
                std::string(billing::FeatureName(static_cast<billing::Feature>(i))).c_str(),
                coeff[static_cast<size_t>(i)] * 1e6);
  }
  return model;
}

// --- evaluation ---------------------------------------------------------------

struct Workload {
  std::string name;
  std::function<void(sql::Session*)> run;
};

std::vector<Workload> MakeWorkloads() {
  std::vector<Workload> out;
  // TPC-C variants (3).
  for (int w = 1; w <= 3; ++w) {
    out.push_back({"tpcc_w" + std::to_string(w), [w](sql::Session* s) {
                     workload::TpccWorkload::Options o;
                     o.warehouses = w;
                     o.districts_per_warehouse = 2;
                     o.customers_per_district = 10;
                     o.items = 30;
                     workload::TpccWorkload tpcc(o, 7 + static_cast<uint64_t>(w));
                     VELOCE_CHECK_OK(tpcc.Setup(s));
                     for (int i = 0; i < 60; ++i) VELOCE_CHECK_OK(tpcc.RunTransaction(s));
                   }});
  }
  // YCSB A-F plus two variants (8).
  using Mix = workload::YcsbWorkload::Mix;
  const std::pair<const char*, Mix> mixes[] = {
      {"ycsb_a", Mix::kA}, {"ycsb_b", Mix::kB}, {"ycsb_c", Mix::kC},
      {"ycsb_d", Mix::kD}, {"ycsb_e", Mix::kE}, {"ycsb_f", Mix::kF}};
  for (const auto& [name, mix] : mixes) {
    out.push_back({name, [mix](sql::Session* s) {
                     workload::YcsbWorkload::Options o;
                     o.mix = mix;
                     o.record_count = 200;
                     workload::YcsbWorkload ycsb(o, 21);
                     VELOCE_CHECK_OK(ycsb.Setup(s));
                     for (int i = 0; i < 150; ++i) VELOCE_CHECK_OK(ycsb.RunOp(s));
                   }});
  }
  out.push_back({"ycsb_a_uniform", [](sql::Session* s) {
                   workload::YcsbWorkload::Options o;
                   o.mix = Mix::kA;
                   o.record_count = 200;
                   o.zipf_theta = 0.5;
                   workload::YcsbWorkload ycsb(o, 22);
                   VELOCE_CHECK_OK(ycsb.Setup(s));
                   for (int i = 0; i < 150; ++i) VELOCE_CHECK_OK(ycsb.RunOp(s));
                 }});
  out.push_back({"ycsb_c_bigvals", [](sql::Session* s) {
                   workload::YcsbWorkload::Options o;
                   o.mix = Mix::kC;
                   o.record_count = 150;
                   o.field_bytes = 512;
                   workload::YcsbWorkload ycsb(o, 23);
                   VELOCE_CHECK_OK(ycsb.Setup(s));
                   for (int i = 0; i < 150; ++i) VELOCE_CHECK_OK(ycsb.RunOp(s));
                 }});
  // TPC-H (3): Q1 twice at different scales, Q9 (2 joins-heavy shapes).
  out.push_back({"tpch_q1", [](sql::Session* s) {
                   workload::TpchWorkload tpch({.lineitem_rows = 1500}, 9);
                   VELOCE_CHECK_OK(tpch.Setup(s));
                   for (int i = 0; i < 4; ++i) VELOCE_CHECK(tpch.RunQ1(s).ok());
                 }});
  out.push_back({"tpch_q1_large", [](sql::Session* s) {
                   workload::TpchWorkload tpch({.lineitem_rows = 3000}, 10);
                   VELOCE_CHECK_OK(tpch.Setup(s));
                   for (int i = 0; i < 3; ++i) VELOCE_CHECK(tpch.RunQ1(s).ok());
                 }});
  out.push_back({"tpch_q9", [](sql::Session* s) {
                   workload::TpchWorkload tpch({.lineitem_rows = 800}, 11);
                   VELOCE_CHECK_OK(tpch.Setup(s));
                   VELOCE_CHECK(tpch.RunQ9(s).ok());
                 }});
  // Imports (3).
  for (int bytes : {64, 512, 2048}) {
    out.push_back({"import_" + std::to_string(bytes) + "B", [bytes](sql::Session* s) {
                     VELOCE_CHECK_OK(workload::RunImport(s, "imp", 600, bytes, 31));
                   }});
  }
  // Hand-rolled SQL loops (6).
  out.push_back({"point_selects", [](sql::Session* s) {
                   VELOCE_CHECK(s->Execute("CREATE TABLE p (id INT PRIMARY KEY, v STRING)").ok());
                   for (int i = 0; i < 100; ++i) {
                     VELOCE_CHECK(s->Execute("INSERT INTO p VALUES (" + std::to_string(i) + ", 'v')").ok());
                   }
                   for (int i = 0; i < 600; ++i) {
                     VELOCE_CHECK(s->Execute("SELECT v FROM p WHERE id = " + std::to_string(i % 100)).ok());
                   }
                 }});
  out.push_back({"update_loop", [](sql::Session* s) {
                   VELOCE_CHECK(s->Execute("CREATE TABLE u (id INT PRIMARY KEY, v INT)").ok());
                   for (int i = 0; i < 50; ++i) {
                     VELOCE_CHECK(s->Execute("INSERT INTO u VALUES (" + std::to_string(i) + ", 0)").ok());
                   }
                   for (int i = 0; i < 400; ++i) {
                     VELOCE_CHECK(s->Execute("UPDATE u SET v = v + 1 WHERE id = " + std::to_string(i % 50)).ok());
                   }
                 }});
  out.push_back({"scan_heavy", [](sql::Session* s) {
                   VELOCE_CHECK_OK(workload::RunImport(s, "sc", 400, 256, 33));
                   for (int i = 0; i < 25; ++i) {
                     VELOCE_CHECK(s->Execute("SELECT COUNT(*) FROM sc").ok());
                   }
                 }});
  out.push_back({"wide_agg_scan", [](sql::Session* s) {
                   VELOCE_CHECK_OK(workload::RunImport(s, "wa", 500, 1024, 34));
                   for (int i = 0; i < 20; ++i) {
                     VELOCE_CHECK(s->Execute("SELECT COUNT(*), MIN(id), MAX(id) FROM wa").ok());
                   }
                 }});
  out.push_back({"txn_mix", [](sql::Session* s) {
                   VELOCE_CHECK(s->Execute("CREATE TABLE m (id INT PRIMARY KEY, v INT)").ok());
                   for (int i = 0; i < 50; ++i) {
                     VELOCE_CHECK(s->Execute("INSERT INTO m VALUES (" + std::to_string(i) + ", 0)").ok());
                   }
                   for (int i = 0; i < 120; ++i) {
                     VELOCE_CHECK(s->Execute("BEGIN").ok());
                     VELOCE_CHECK(s->Execute("SELECT v FROM m WHERE id = " + std::to_string(i % 50)).ok());
                     VELOCE_CHECK(s->Execute("UPDATE m SET v = v + 1 WHERE id = " + std::to_string(i % 50)).ok());
                     VELOCE_CHECK(s->Execute("COMMIT").ok());
                   }
                 }});
  out.push_back({"secondary_idx", [](sql::Session* s) {
                   VELOCE_CHECK(s->Execute("CREATE TABLE si (id INT PRIMARY KEY, grp INT, v STRING)").ok());
                   for (int i = 0; i < 200; ++i) {
                     VELOCE_CHECK(s->Execute("INSERT INTO si VALUES (" + std::to_string(i) + ", " +
                                             std::to_string(i % 10) + ", 'x')").ok());
                   }
                   VELOCE_CHECK(s->Execute("CREATE INDEX si_grp ON si (grp)").ok());
                   for (int i = 0; i < 200; ++i) {
                     VELOCE_CHECK(s->Execute("SELECT COUNT(*) FROM si WHERE grp = " +
                                             std::to_string(i % 10)).ok());
                   }
                 }});
  return out;
}

}  // namespace
}  // namespace veloce

int main() {
  using namespace veloce;
  bench::PrintHeader("Fig 11: estimated Serverless CPU vs actual Dedicated CPU");

  billing::EstimatedCpuModel model = Calibrate();

  std::vector<Workload> workloads = MakeWorkloads();
  std::printf("\nevaluating %zu held-out workloads:\n", workloads.size());
  std::printf("%-18s %14s %14s %10s\n", "workload", "actual CPU(s)",
              "estimated(s)", "est/actual");
  int within_20 = 0;
  for (const auto& workload : workloads) {
    // Actual: dedicated (colocated) run.
    double actual;
    {
      auto dedicated = bench::MakeSqlStack(sql::ProcessMode::kColocated);
      const Nanos cpu0 = ThreadCpuNanos();
      workload.run(dedicated->session);
      actual = static_cast<double>(ThreadCpuNanos() - cpu0) / 1e9;
    }
    // Estimated: serverless run; SQL CPU measured, KV CPU modeled.
    double estimated;
    {
      auto serverless = bench::MakeSqlStack(sql::ProcessMode::kSeparateProcess);
      sql::KvConnector* connector = serverless->node->connector();
      const Nanos cpu0 = ThreadCpuNanos();
      const Nanos kv0 = connector->kv_cpu_nanos();
      connector->ResetFeatures();
      workload.run(serverless->session);
      const double total = static_cast<double>(ThreadCpuNanos() - cpu0) / 1e9;
      const double kv_measured =
          static_cast<double>(connector->kv_cpu_nanos() - kv0) / 1e9;
      const double sql_measured = total - kv_measured;
      const double kv_estimated =
          model.EstimateKvCpuSeconds(connector->features(), /*secs=*/1.0);
      estimated = sql_measured + kv_estimated;
    }
    const double ratio = estimated / actual;
    if (ratio >= 0.8 && ratio <= 1.2) ++within_20;
    std::printf("%-18s %14.4f %14.4f %9.2f%s\n", workload.name.c_str(), actual,
                estimated, ratio, (ratio >= 0.8 && ratio <= 1.2) ? "" : "  *");
  }
  std::printf("\n%d/%zu workloads within +/-20%% (paper: ~80%%; the scan-heavy "
              "outliers overshoot because Serverless pays per-row marshaling "
              "that Dedicated avoids — the paper's largest outlier too)\n",
              within_20, workloads.size());
  return 0;
}
