// Runs the named "cluster weather" scenarios (default: all registered)
// and writes one BENCH_<scenario>.json snapshot each. Exit status is
// nonzero if any scenario's invariants fail.
//
//   bench_scenarios [names...] [--list] [--fast] [--seed=N] [--out=DIR]
//
//   --list     print registered scenario names and exit
//   --fast     scaled-down sizes (the CI smoke configuration)
//   --seed=N   master scenario seed (default 0xC10D); one seed reproduces
//              the whole event trace byte-for-byte
//   --out=DIR  directory for BENCH_*.json (default: current directory)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "scenario/scenarios.h"

int main(int argc, char** argv) {
  using namespace veloce;
  scenario::RegisterBuiltinScenarios();

  scenario::ScenarioOptions options;
  options.out_dir = ".";
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      for (const std::string& name : scenario::ScenarioNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--fast") {
      options.fast = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 0);
    } else if (arg.rfind("--out=", 0) == 0) {
      options.out_dir = arg.substr(6);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else {
      names.push_back(arg);
    }
  }
  if (names.empty()) names = scenario::ScenarioNames();

  std::printf("=== cluster weather scenarios (seed=%llu%s) ===\n",
              static_cast<unsigned long long>(options.seed),
              options.fast ? ", fast" : "");
  bool all_passed = true;
  for (const std::string& name : names) {
    auto result = scenario::RunScenario(name, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   result.status().ToString().c_str());
      all_passed = false;
      continue;
    }
    std::printf("%s\n", result->report.Summary().c_str());
    for (const auto& inv : result->report.invariants()) {
      if (!inv.passed) {
        std::printf("  FAILED invariant %s: measured=%g bound=%g %s\n",
                    inv.name.c_str(), inv.measured, inv.bound,
                    inv.detail.c_str());
      }
    }
    if (!result->report_path.empty()) {
      std::printf("  wrote %s (event log: %zu entries, fingerprint %016llx)\n",
                  result->report_path.c_str(),
                  result->event_log.empty()
                      ? 0
                      : static_cast<size_t>(
                            result->report.Metric("event_log_entries")),
                  static_cast<unsigned long long>(result->fingerprint));
    }
    all_passed = all_passed && result->passed;
  }
  return all_passed ? 0 : 1;
}
