// Reproduces Fig 9: connection migration due to rolling upgrades does not
// noticeably impact tenant throughput or latency, and aborts no
// transactions.
//
// A tenant with 3 SQL nodes and 24 long-lived connections runs a steady
// point-read/write mix. Mid-run, a rolling upgrade drains and replaces
// each node in turn; the proxy migrates every connection. We report
// per-interval throughput, statement latency, migrations, and errors.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "serverless/cluster.h"

int main() {
  using namespace veloce;
  bench::PrintHeader("Fig 9: impact of connection migration (rolling upgrade)");

  serverless::ServerlessCluster::Options opts;
  opts.kv.num_nodes = 3;
  serverless::ServerlessCluster cluster(opts);
  auto meta = cluster.CreateTenant("prod");
  VELOCE_CHECK(meta.ok());
  const kv::TenantId tenant = meta->id;

  // Provision 3 SQL nodes up front.
  for (int i = 0; i < 3; ++i) {
    bool done = false;
    cluster.pool()->Acquire(tenant, [&](StatusOr<sql::SqlNode*> n) {
      VELOCE_CHECK(n.ok());
      done = true;
    });
    cluster.loop()->Run();
    VELOCE_CHECK(done);
  }

  // 24 long-lived connections.
  std::vector<serverless::Proxy::Connection*> conns;
  for (int i = 0; i < 24; ++i) {
    auto conn = cluster.ConnectSync(tenant);
    VELOCE_CHECK(conn.ok());
    conns.push_back(*conn);
  }
  cluster.proxy()->RebalanceTenant(tenant);

  // Schema + data.
  VELOCE_CHECK_OK(conns[0]->session->Execute(
      "CREATE TABLE kvrows (id INT PRIMARY KEY, v INT)").status());
  for (int i = 0; i < 200; ++i) {
    VELOCE_CHECK_OK(conns[0]->session->Execute(
        "INSERT INTO kvrows VALUES (" + std::to_string(i) + ", 0)").status());
  }

  Random rng(5);
  auto run_interval = [&](int statements) {
    Histogram latency;
    uint64_t errors = 0;
    for (int i = 0; i < statements; ++i) {
      auto* conn = conns[rng.Uniform(conns.size())];
      const int key = static_cast<int>(rng.Uniform(200));
      const Nanos t0 = RealClock::Instance()->Now();
      Status s;
      if (rng.Bernoulli(0.2)) {
        s = conn->session->Execute("UPDATE kvrows SET v = v + 1 WHERE id = " +
                                   std::to_string(key)).status();
      } else {
        s = conn->session->Execute("SELECT v FROM kvrows WHERE id = " +
                                   std::to_string(key)).status();
      }
      latency.Record(RealClock::Instance()->Now() - t0);
      if (!s.ok()) ++errors;
      cluster.loop()->RunFor(10 * kMilli);  // pacing in sim time
    }
    return std::make_pair(latency, errors);
  };

  std::printf("%-22s %10s %12s %12s %10s %12s\n", "phase", "stmts", "p50", "p99",
              "errors", "migrations");
  const int stmts_per_interval = 400;
  uint64_t migrations_before = cluster.proxy()->total_migrations();

  auto report = [&](const char* phase, const Histogram& latency, uint64_t errors) {
    const uint64_t migs = cluster.proxy()->total_migrations() - migrations_before;
    migrations_before = cluster.proxy()->total_migrations();
    std::printf("%-22s %10d %12s %12s %10llu %12llu\n", phase, stmts_per_interval,
                Histogram::FormatNanos(latency.P50()).c_str(),
                Histogram::FormatNanos(latency.P99()).c_str(),
                static_cast<unsigned long long>(errors),
                static_cast<unsigned long long>(migs));
  };

  // Before the upgrade.
  auto [before_lat, before_err] = run_interval(stmts_per_interval);
  report("before upgrade", before_lat, before_err);

  // Rolling upgrade: drain each original node; the proxy migrates its
  // connections; a replacement node joins from the warm pool.
  auto nodes = cluster.pool()->NodesForTenant(tenant);
  for (size_t upgrade = 0; upgrade < nodes.size(); ++upgrade) {
    cluster.pool()->StartDraining(nodes[upgrade]);
    cluster.proxy()->RebalanceTenant(tenant);
    bool replaced = false;
    cluster.pool()->Acquire(tenant, [&](StatusOr<sql::SqlNode*> n) {
      VELOCE_CHECK(n.ok());
      replaced = true;
    });
    cluster.loop()->Run();
    VELOCE_CHECK(replaced);
    cluster.proxy()->RebalanceTenant(tenant);
    auto [lat, err] = run_interval(stmts_per_interval);
    report(("during upgrade " + std::to_string(upgrade + 1) + "/3").c_str(), lat, err);
  }

  // After.
  auto [after_lat, after_err] = run_interval(stmts_per_interval);
  report("after upgrade", after_lat, after_err);

  std::printf("\nshape check: errors/aborted txns = 0 in every phase; p50/p99 "
              "stable across the upgrade (paper: no noticeable impact); all %zu "
              "connections migrated at least once\n",
              conns.size());
  size_t migrated_conns = 0;
  for (auto* conn : conns) {
    if (conn->migrations > 0) ++migrated_conns;
  }
  std::printf("connections migrated: %zu/%zu\n", migrated_conns, conns.size());
  return 0;
}
