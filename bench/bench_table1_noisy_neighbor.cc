// Reproduces Table 1: p50/p99 latency and throughput of a well-behaved
// tenant sharing a cluster with three noisy tenants, under No Limits,
// admission control only, and admission control + per-tenant eCPU limits.

#include "bench/noisy_harness.h"

int main() {
  using namespace veloce;
  using bench::IsolationMode;

  std::printf("\n=== Table 1: well-behaved tenant vs noisy neighbors ===\n");
  std::printf("(3 noisy tenants in tight loops, test tenant with think time; "
              "2 min sim each)\n\n");
  std::printf("%-10s %16s %16s %16s\n", "", "No Limits", "AC only",
              "AC & eCPU Limits");

  struct Row {
    Nanos p50, p99;
    double tpm;
    int liveness_failures;
    double admitted, throttled, tokens;
  };
  std::vector<Row> rows;
  for (IsolationMode mode : {IsolationMode::kNoLimits, IsolationMode::kAcOnly,
                             IsolationMode::kAcPlusEcpu}) {
    bench::NoisyNeighborHarness harness(mode);
    bench::NoisyResult result = harness.Run(2 * kMinute);
    rows.push_back({result.test_latency.P50(), result.test_latency.P99(),
                    result.test_tpm, result.liveness_failures,
                    result.admitted_ops, result.wq_throttled,
                    result.ecpu_tokens_granted});
  }

  auto print_latency_row = [&](const char* label, Nanos Row::*field) {
    std::printf("%-10s", label);
    for (const Row& row : rows) {
      std::printf(" %16s", Histogram::FormatNanos(row.*field).c_str());
    }
    std::printf("\n");
  };
  print_latency_row("p50", &Row::p50);
  print_latency_row("p99", &Row::p99);
  std::printf("%-10s", "tpmC");
  for (const Row& row : rows) std::printf(" %16.1f", row.tpm);
  std::printf("\n%-10s", "liveness");
  for (const Row& row : rows) std::printf(" %16d", row.liveness_failures);
  std::printf("   (node liveness failures)\n");

  // Registry-sourced series (veloce_admission_* / veloce_billing_*), read
  // back through the shared MetricsRegistry.
  std::printf("%-10s", "admitted");
  for (const Row& row : rows) std::printf(" %16.0f", row.admitted);
  std::printf("   (veloce_admission_admitted_total)\n");
  std::printf("%-10s", "wq-thrtl");
  for (const Row& row : rows) std::printf(" %16.0f", row.throttled);
  std::printf("   (veloce_admission_wq_throttled_total)\n");
  std::printf("%-10s", "eCPU-tok");
  for (const Row& row : rows) std::printf(" %16.0f", row.tokens);
  std::printf("   (veloce_billing_tokens_granted_total)\n");

  std::printf("\nshape check (paper): p50 3.18s/0.19s/0.019s, p99 "
              "24.8s/0.98s/0.037s, tpmC 182/207/209 — each control layer "
              "cuts tail latency by an order of magnitude and throughput "
              "recovers slightly.\n");
  const bool ordered = rows[0].p99 > rows[1].p99 && rows[1].p99 > rows[2].p99 &&
                       rows[0].tpm <= rows[2].tpm + 30;
  std::printf("ordering holds: %s\n", ordered ? "YES ✓" : "NO ✗");
  return 0;
}
