// End-to-end observability demo: runs TPC-C-lite against a full
// ServerlessCluster, then dumps
//   (a) the shared MetricsRegistry (Prometheus text + JSON) — series from
//       every layer: storage, kv, admission, billing, sql, serverless, sim;
//   (b) the slowest requests from the TraceCollector, with per-stage
//       durations (marshal, admission_queue, replication, storage_*).

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "scenario/report.h"
#include "serverless/cluster.h"
#include "workload/tpcc.h"

int main() {
  using namespace veloce;

  serverless::ServerlessCluster cluster;
  auto tenant_or = cluster.CreateTenant("obs-demo");
  VELOCE_CHECK(tenant_or.ok());
  const kv::TenantId tenant = tenant_or->id;

  auto conn_or = cluster.ConnectSync(tenant);
  VELOCE_CHECK(conn_or.ok());
  sql::Session* session = (*conn_or)->session;

  workload::TpccWorkload tpcc({}, /*seed=*/42, cluster.obs());
  VELOCE_CHECK_OK(tpcc.Setup(session));

  // Phase 1: uncalibrated warm-up — the write token bucket admits freely.
  for (int i = 0; i < 150; ++i) (void)tpcc.RunTransaction(session);
  // Arm admission control from real engine counters (the 15 s stats
  // cadence), then keep going so WQ throttling and queue waits show up.
  cluster.CalibrateAdmission();
  for (int i = 0; i < 150; ++i) (void)tpcc.RunTransaction(session);

  // Billing: harvest SQL-node features into the meter and cut an interval
  // so the per-tenant veloce_billing_* gauges are emitted.
  cluster.HarvestUsage();
  (void)cluster.meter()->Cut(tenant);

  obs::MetricsRegistry* metrics = cluster.metrics();

  std::printf("=== Prometheus text exposition (shared registry) ===\n%s\n",
              metrics->ExportPrometheus().c_str());
  std::printf("=== JSON export (first 600 chars) ===\n%.600s...\n\n",
              metrics->ExportJson().c_str());

  // Coverage check: distinct series per module prefix.
  std::map<std::string, int> per_module;
  int total = 0;
  for (const auto& sample : metrics->Snapshot()) {
    // veloce_<module>_...
    const std::string name = sample.name;
    const size_t start = name.find('_');
    const size_t end = name.find('_', start + 1);
    if (start == std::string::npos || end == std::string::npos) continue;
    ++per_module[name.substr(start + 1, end - start - 1)];
    ++total;
  }
  std::printf("=== series per module ===\n");
  for (const auto& [module, count] : per_module) {
    std::printf("  %-12s %4d\n", module.c_str(), count);
  }
  std::printf("  %-12s %4d\n", "TOTAL", total);

  scenario::BenchReport report("obs_snapshot");
  report.AddParam("transactions", 300);
  report.AddMetric("series_total", static_cast<int64_t>(total));
  for (const auto& [module, count] : per_module) {
    report.AddMetric("series__" + module, static_cast<int64_t>(count));
  }

  const char* required[] = {"storage", "kv", "admission", "billing", "serverless"};
  report.AssertGe("series_total", total, 20,
                  "the shared registry covers every layer");
  for (const char* module : required) {
    report.AssertGe(std::string("series_") + module, per_module[module], 1,
                    std::string("module ") + module + " exports metrics");
  }
  std::printf(">=20 series across storage/kv/admission/billing/serverless: %s\n\n",
              report.passed() ? "YES" : "NO");

  std::printf("=== %llu traced statements; 5 slowest ===\n%s\n",
              static_cast<unsigned long long>(cluster.traces()->finished_total()),
              cluster.traces()->DumpSlowest(5).c_str());

  // The acceptance stages: marshal + admission_queue must appear.
  bool saw_marshal = false, saw_admission = false;
  for (const auto& trace : cluster.traces()->Slowest(50)) {
    for (const auto& event : trace.events) {
      if (event.name == "marshal") saw_marshal = true;
      if (event.name == "admission_queue") saw_admission = true;
    }
  }
  std::printf("traces carry marshal stage: %s, admission_queue stage: %s\n",
              saw_marshal ? "YES" : "NO", saw_admission ? "YES" : "NO");
  report.AddMetric("traced_statements",
                   static_cast<int64_t>(cluster.traces()->finished_total()));
  report.AssertTrue("traces_carry_marshal_stage", saw_marshal);
  report.AssertTrue("traces_carry_admission_queue_stage", saw_admission);

  auto path = report.WriteFile(".");
  VELOCE_CHECK(path.ok());
  std::printf("wrote %s\n%s\n", path->c_str(), report.Summary().c_str());
  return report.passed() ? 0 : 1;
}
