// Write-path microbenchmark for the concurrent LSM write path: group
// commit + immutable memtables + background flush/compaction.
//
// Compares, over the same workload (T writer threads, each committing
// fixed-size batches with WAL sync enabled):
//   sync_baseline   — group commit off, no background executor: every
//                     writer serializes the whole commit (WAL append +
//                     fsync + memtable insert) under the engine mutex,
//                     the pre-PR behavior
//   group_commit    — writers queue; the front writer leads, merges the
//                     group, and pays one WAL sync for everyone while the
//                     engine mutex is released
//   group_commit_bg — group commit plus a 2-worker thread pool draining
//                     memtable flushes and compactions off the commit path
// across {1, 2, 8} writer threads. WAL sync latency is made realistic
// (~30us per fsync, roughly an NVMe flush) via an Env wrapper, since an
// in-memory sync is otherwise free and group commit would have nothing
// to amortize.
//
// Emits BENCH_write_path.json (scenario::BenchReport schema); the headline
// `multi_writer_speedup` is group_commit_bg vs sync_baseline at 8 threads
// (acceptance gate >= 2x).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "scenario/report.h"
#include "storage/background.h"
#include "storage/engine.h"
#include "storage/env.h"

namespace veloce::storage {
namespace {

constexpr int kBatchesPerThread = 200;
constexpr int kOpsPerBatch = 4;
constexpr size_t kValueLen = 100;
constexpr auto kSyncLatency = std::chrono::microseconds(30);

/// WritableFile wrapper that charges a fixed latency per Sync, emulating a
/// device flush on top of the in-memory Env.
class SlowSyncFile : public WritableFile {
 public:
  explicit SlowSyncFile(std::unique_ptr<WritableFile> inner)
      : inner_(std::move(inner)) {}
  Status Append(Slice data) override { return inner_->Append(data); }
  Status Sync() override {
    std::this_thread::sleep_for(kSyncLatency);
    return inner_->Sync();
  }
  Status Close() override { return inner_->Close(); }
  uint64_t Size() const override { return inner_->Size(); }

 private:
  std::unique_ptr<WritableFile> inner_;
};

class SlowSyncEnv : public Env {
 public:
  SlowSyncEnv() : inner_(NewMemEnv()) {}
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override {
    std::unique_ptr<WritableFile> raw;
    VELOCE_RETURN_IF_ERROR(inner_->NewWritableFile(fname, &raw));
    *file = std::make_unique<SlowSyncFile>(std::move(raw));
    return Status::OK();
  }
  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* file) override {
    return inner_->NewRandomAccessFile(fname, file);
  }
  Status DeleteFile(const std::string& fname) override {
    return inner_->DeleteFile(fname);
  }
  bool FileExists(const std::string& fname) override {
    return inner_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* out) override {
    return inner_->GetChildren(dir, out);
  }
  Status CreateDirIfMissing(const std::string& dir) override {
    return inner_->CreateDirIfMissing(dir);
  }
  Status RenameFile(const std::string& src, const std::string& target) override {
    return inner_->RenameFile(src, target);
  }

 private:
  std::unique_ptr<Env> inner_;
};

std::string Key(int thread, int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "t%02d-key%06d", thread, i);
  return buf;
}

struct ModeResult {
  std::string mode;
  int threads = 0;
  double ops_per_sec = 0;
  uint64_t flushes = 0;
  uint64_t stalls = 0;
};

ModeResult RunMode(const std::string& mode, int threads) {
  SlowSyncEnv env;
  std::unique_ptr<ThreadPoolExecutor> pool;
  EngineOptions options;
  options.env = &env;
  options.sync_wal = true;
  options.memtable_bytes = 256 << 10;
  options.group_commit = mode != "sync_baseline";
  if (mode == "group_commit_bg") {
    pool = std::make_unique<ThreadPoolExecutor>(2);
    options.background_executor = pool.get();
  }
  auto engine = *Engine::Open(options);

  const std::string value(kValueLen, 'v');
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int b = 0; b < kBatchesPerThread; ++b) {
        WriteBatch batch;
        for (int op = 0; op < kOpsPerBatch; ++op) {
          batch.Put(Key(t, b * kOpsPerBatch + op), value);
        }
        VELOCE_CHECK_OK(engine->Write(batch));
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();

  const uint64_t total_ops =
      uint64_t{static_cast<uint64_t>(threads)} * kBatchesPerThread * kOpsPerBatch;
  VELOCE_CHECK(engine->LastSequence() == total_ops)
      << mode << "/" << threads << ": seq " << engine->LastSequence();
  // Spot-check durability-visible state before teardown.
  std::string got;
  VELOCE_CHECK_OK(engine->Get(Slice(Key(threads - 1, 0)), &got));

  ModeResult r;
  r.mode = mode;
  r.threads = threads;
  r.ops_per_sec = total_ops / (secs > 0 ? secs : 1e-9);
  r.flushes = engine->stats().num_flushes;
  r.stalls = engine->stats().write_stalls;
  return r;
}

}  // namespace
}  // namespace veloce::storage

int main() {
  using veloce::storage::ModeResult;
  using veloce::storage::RunMode;

  std::vector<ModeResult> results;
  double baseline_8t = 0;
  double bg_8t = 0;
  for (const char* mode : {"sync_baseline", "group_commit", "group_commit_bg"}) {
    for (const int threads : {1, 2, 8}) {
      ModeResult r = RunMode(mode, threads);
      std::printf("  %-16s threads=%d : %10.0f ops/sec  (flushes=%llu stalls=%llu)\n",
                  r.mode.c_str(), r.threads, r.ops_per_sec,
                  static_cast<unsigned long long>(r.flushes),
                  static_cast<unsigned long long>(r.stalls));
      if (r.threads == 8 && r.mode == "sync_baseline") baseline_8t = r.ops_per_sec;
      if (r.threads == 8 && r.mode == "group_commit_bg") bg_8t = r.ops_per_sec;
      results.push_back(std::move(r));
    }
  }

  const double speedup = baseline_8t > 0 ? bg_8t / baseline_8t : 0;
  std::printf("\nmulti-writer speedup (group_commit_bg vs sync_baseline, 8 threads): %.2fx\n",
              speedup);

  veloce::scenario::BenchReport report("write_path");
  report.AddParam("batches_per_thread", veloce::storage::kBatchesPerThread);
  report.AddParam("ops_per_batch", veloce::storage::kOpsPerBatch);
  report.AddParam("sync_latency_us",
                  static_cast<int64_t>(
                      std::chrono::duration_cast<std::chrono::microseconds>(
                          veloce::storage::kSyncLatency)
                          .count()));
  report.AddMetric("multi_writer_speedup", speedup);
  for (const auto& r : results) {
    const std::string cfg = r.mode + "_" + std::to_string(r.threads) + "t";
    report.AddMetric("ops_per_sec__" + cfg, r.ops_per_sec);
    report.AddMetric("flushes__" + cfg, r.flushes);
    report.AddMetric("stalls__" + cfg, r.stalls);
  }
  report.Gate("multi_writer_speedup", speedup, 2.0);

  auto path = report.WriteFile(".");
  VELOCE_CHECK(path.ok());
  std::printf("wrote %s\n", path->c_str());
  std::printf("%s\n", report.Summary().c_str());
  if (!report.passed()) {
    std::printf("WARNING: speedup below the 2x acceptance gate\n");
    return 1;
  }
  return 0;
}
