#ifndef VELOCE_BENCH_BENCH_UTIL_H_
#define VELOCE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "common/logging.h"
#include "common/sysinfo.h"
#include "kv/keys.h"
#include "sql/row.h"
#include "sql/sql_node.h"
#include "tenant/controller.h"

namespace veloce::bench {

/// A complete single-tenant SQL-over-KV stack for real-clock benches.
struct SqlStack {
  std::unique_ptr<kv::KVCluster> cluster;
  tenant::CertificateAuthority ca;
  std::unique_ptr<tenant::TenantController> controller;
  std::unique_ptr<tenant::AuthorizedKvService> service;
  std::unique_ptr<sql::SqlNode> node;
  sql::Session* session = nullptr;
  kv::TenantId tenant = 0;
};

inline std::unique_ptr<SqlStack> MakeSqlStack(sql::ProcessMode mode,
                                              int kv_nodes = 3) {
  auto stack = std::make_unique<SqlStack>();
  kv::KVClusterOptions opts;
  opts.num_nodes = kv_nodes;
  opts.replication_factor = kv_nodes < 3 ? kv_nodes : 3;
  stack->cluster = std::make_unique<kv::KVCluster>(opts);
  stack->controller =
      std::make_unique<tenant::TenantController>(stack->cluster.get(), &stack->ca);
  stack->service = std::make_unique<tenant::AuthorizedKvService>(stack->cluster.get(),
                                                                 &stack->ca);
  auto meta = stack->controller->CreateTenant("bench");
  VELOCE_CHECK(meta.ok());
  stack->tenant = meta->id;
  auto cert = stack->controller->IssueCert(stack->tenant);
  VELOCE_CHECK(cert.ok());
  sql::SqlNode::Options node_opts;
  node_opts.mode = mode;
  stack->node = std::make_unique<sql::SqlNode>(1, node_opts,
                                               stack->cluster->clock());
  VELOCE_CHECK_OK(stack->node->StartProcess());
  VELOCE_CHECK_OK(stack->node->StampTenant(stack->service.get(),
                                           stack->cluster.get(), *cert));
  auto session = stack->node->NewSession();
  VELOCE_CHECK(session.ok());
  stack->session = *session;
  return stack;
}

/// Splits the tenant's keyspace at each table boundary (catalog table ids
/// start at 100) and spreads leases across the KV nodes — the paper's
/// "ranges are scattered randomly across the cluster", which makes most
/// point lookups remote RPCs even in the Traditional deployment.
inline void ScatterRanges(SqlStack* stack, int num_tables) {
  for (int t = 0; t < num_tables; ++t) {
    const std::string key = kv::AddTenantPrefix(
        stack->tenant, sql::IndexPrefix(static_cast<sql::TableId>(100 + t),
                                        sql::kPrimaryIndexId));
    VELOCE_CHECK_OK(stack->cluster->SplitRange(key));
  }
  stack->cluster->BalanceLeases();
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline std::string FormatMs(Nanos ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace veloce::bench

#endif  // VELOCE_BENCH_BENCH_UTIL_H_
