#ifndef VELOCE_BENCH_BENCH_UTIL_H_
#define VELOCE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "common/logging.h"
#include "common/sysinfo.h"
#include "kv/keys.h"
#include "scenario/env_builder.h"
#include "sql/row.h"

namespace veloce::bench {

/// The construction logic lives in scenario::ScenarioEnvBuilder so the
/// benches, the scenario harness, and the integration tests all build
/// their stacks through one path; these aliases keep the bench-local
/// names the figure benches were written against.
using SqlStack = scenario::SqlStack;

inline std::unique_ptr<SqlStack> MakeSqlStack(sql::ProcessMode mode,
                                              int kv_nodes = 3) {
  return scenario::ScenarioEnvBuilder()
      .KvNodes(kv_nodes)
      .ProcessMode(mode)
      .BuildSqlStack();
}

/// Splits the tenant's keyspace at each table boundary and spreads leases
/// across the KV nodes (see scenario::ScatterRanges).
inline void ScatterRanges(SqlStack* stack, int num_tables) {
  scenario::ScatterRanges(stack, num_tables);
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline std::string FormatMs(Nanos ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace veloce::bench

#endif  // VELOCE_BENCH_BENCH_UTIL_H_
