// Reproduces Fig 6: CPU usage and latency of TPC-C and two TPC-H queries in
// Serverless vs Traditional deployments.
//
// The Traditional deployment colocates SQL and KV in one process; the
// Serverless deployment separates them, so every KV batch is marshaled
// through the wire codec. Expectation (paper Section 6.1):
//   * TPC-C (OLTP): similar CPU and latency in both modes — OLTP plans use
//     the same remote KV APIs either way.
//   * TPC-H Q1 (full scan + aggregate): ~2.3x more CPU in Serverless —
//     every scanned row crosses the process boundary.
//   * TPC-H Q9 (index-join heavy): similar efficiency — dominated by
//     per-row point lookups that cost the same RPCs in both modes.
//
// With --pushdown, Q1 also runs with the future-work row-filter push-down
// enabled (ablation; see DESIGN.md Section 6).

#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "workload/tpcc.h"
#include "workload/tpch.h"

namespace veloce {
namespace {

struct Measurement {
  double cpu_seconds = 0;
  Histogram latency;
};

Measurement RunTpcc(bench::SqlStack* stack, int txns) {
  workload::TpccWorkload::Options opts;
  opts.warehouses = 2;
  opts.districts_per_warehouse = 2;
  opts.customers_per_district = 20;
  opts.items = 50;
  workload::TpccWorkload tpcc(opts, 7);
  VELOCE_CHECK_OK(tpcc.Setup(stack->session));
  bench::ScatterRanges(stack, /*num_tables=*/7);
  Measurement m;
  const Nanos cpu0 = ThreadCpuNanos();
  for (int i = 0; i < txns; ++i) {
    const Nanos t0 = RealClock::Instance()->Now();
    VELOCE_CHECK_OK(tpcc.RunTransaction(stack->session));
    m.latency.Record(RealClock::Instance()->Now() - t0);
  }
  m.cpu_seconds = static_cast<double>(ThreadCpuNanos() - cpu0) / 1e9;
  return m;
}

Measurement RunTpchQuery(bench::SqlStack* stack, workload::TpchWorkload* tpch,
                         bool q1, int iterations) {
  Measurement m;
  const Nanos cpu0 = ThreadCpuNanos();
  for (int i = 0; i < iterations; ++i) {
    const Nanos t0 = RealClock::Instance()->Now();
    auto rs = q1 ? tpch->RunQ1(stack->session) : tpch->RunQ9(stack->session);
    VELOCE_CHECK(rs.ok()) << rs.status().ToString();
    m.latency.Record(RealClock::Instance()->Now() - t0);
  }
  m.cpu_seconds = static_cast<double>(ThreadCpuNanos() - cpu0) / 1e9;
  return m;
}

void PrintRow(const char* workload, const Measurement& traditional,
              const Measurement& serverless) {
  std::printf("%-10s %14.3f %14.3f %10.2fx %14s %14s\n", workload,
              traditional.cpu_seconds, serverless.cpu_seconds,
              serverless.cpu_seconds / traditional.cpu_seconds,
              Histogram::FormatNanos(traditional.latency.P50()).c_str(),
              Histogram::FormatNanos(serverless.latency.P50()).c_str());
}

}  // namespace
}  // namespace veloce

int main(int argc, char** argv) {
  using namespace veloce;
  bool pushdown = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--pushdown") == 0) pushdown = true;
  }

  bench::PrintHeader("Fig 6: Serverless vs Traditional efficiency");
  std::printf("%-10s %14s %14s %10s %14s %14s\n", "workload", "trad CPU(s)",
              "srvls CPU(s)", "ratio", "trad p50", "srvls p50");

  // --- TPC-C ---------------------------------------------------------------
  {
    auto traditional = bench::MakeSqlStack(sql::ProcessMode::kColocated);
    auto serverless = bench::MakeSqlStack(sql::ProcessMode::kSeparateProcess);
    const int txns = 300;
    Measurement t = RunTpcc(traditional.get(), txns);
    Measurement s = RunTpcc(serverless.get(), txns);
    PrintRow("TPC-C", t, s);
  }

  // --- TPC-H Q1 and Q9 -------------------------------------------------------
  workload::TpchWorkload::Options topts;
  topts.lineitem_rows = 4000;
  topts.orders = 800;
  {
    auto traditional = bench::MakeSqlStack(sql::ProcessMode::kColocated);
    auto serverless = bench::MakeSqlStack(sql::ProcessMode::kSeparateProcess);
    workload::TpchWorkload tpch_t(topts, 9), tpch_s(topts, 9);
    VELOCE_CHECK_OK(tpch_t.Setup(traditional->session));
    VELOCE_CHECK_OK(tpch_s.Setup(serverless->session));
    bench::ScatterRanges(traditional.get(), /*num_tables=*/6);
    bench::ScatterRanges(serverless.get(), /*num_tables=*/6);
    Measurement tq1 = RunTpchQuery(traditional.get(), &tpch_t, true, 10);
    Measurement sq1 = RunTpchQuery(serverless.get(), &tpch_s, true, 10);
    PrintRow("TPC-H Q1", tq1, sq1);
    Measurement tq9 = RunTpchQuery(traditional.get(), &tpch_t, false, 3);
    Measurement sq9 = RunTpchQuery(serverless.get(), &tpch_s, false, 3);
    PrintRow("TPC-H Q9", tq9, sq9);

    std::printf("\nexpected shape: TPC-C ratio ~1x, Q1 ratio >> 1x (paper: 2.3x), "
                "Q9 ratio ~1x\n");
  }

  if (pushdown) {
    std::printf("\n--pushdown requested: see bench_ablation_pushdown for the "
                "row-filter push-down ablation.\n");
  }
  return 0;
}
