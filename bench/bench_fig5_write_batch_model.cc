// Reproduces Fig 5: "Write batches per second determines CPU usage."
//
// The paper trains the estimated-CPU model's write-batch sub-model by
// varying only the write batch rate and observing that per-batch CPU cost
// falls as the rate rises (batching optimizations amortize fixed costs).
// Here the same effect is real and measurable: delivering a fixed row
// throughput in fewer, larger batches amortizes WAL framing, raft
// proposals, and range lookups. We sweep the batch rate needed to sustain
// a fixed row rate, measure CPU per batch, and fit the piecewise-linear
// sub-model the billing layer uses.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "billing/ecpu_model.h"
#include "common/sysinfo.h"
#include "kv/keys.h"

namespace veloce {
namespace {

struct SweepPoint {
  double batches_per_sec;   // batch rate at the fixed row throughput
  double cpu_per_batch_us;  // measured KV CPU per batch
  double batches_per_vcpu;  // batches one vCPU sustains at this shape
};

SweepPoint MeasureBatchShape(bench::SqlStack* stack, int requests_per_batch,
                             int total_rows, uint64_t* key_counter) {
  Random rng(42);
  const int batches = total_rows / requests_per_batch;
  const Nanos cpu_before = ThreadCpuNanos();
  for (int b = 0; b < batches; ++b) {
    kv::BatchRequest req;
    req.tenant_id = stack->tenant;
    req.ts = stack->cluster->Now();
    for (int r = 0; r < requests_per_batch; ++r) {
      req.AddPut(kv::AddTenantPrefix(stack->tenant,
                                     "fig5/" + std::to_string((*key_counter)++)),
                 rng.String(64));
    }
    auto resp = stack->cluster->Send(req);
    VELOCE_CHECK(resp.ok()) << resp.status().ToString();
  }
  const Nanos cpu = ThreadCpuNanos() - cpu_before;
  SweepPoint point;
  const double cpu_secs = static_cast<double>(cpu) / 1e9;
  point.cpu_per_batch_us = cpu_secs * 1e6 / batches;
  point.batches_per_vcpu = batches / cpu_secs;
  // Batch rate that delivers the fixed row throughput (rows/sec is pinned
  // by the sweep): normalize to 100K rows/sec as the reference load.
  point.batches_per_sec = 100000.0 / requests_per_batch;
  return point;
}

}  // namespace
}  // namespace veloce

int main() {
  using namespace veloce;
  bench::PrintHeader("Fig 5: write batches per second vs CPU usage");
  auto stack = bench::MakeSqlStack(sql::ProcessMode::kSeparateProcess);

  // Sweep batch sizes from 256 rows/batch (few big batches) to 1 row/batch
  // (many small batches) at a fixed total row count.
  const int sizes[] = {256, 128, 64, 32, 16, 8, 4, 2, 1};
  const int total_rows = 40000;
  uint64_t key_counter = 0;
  std::vector<SweepPoint> points;
  std::printf("%18s %22s %22s\n", "write batches/sec", "CPU per batch (us)",
              "batches per vCPU-sec");
  for (int size : sizes) {
    const SweepPoint p =
        MeasureBatchShape(stack.get(), size, total_rows, &key_counter);
    points.push_back(p);
    std::printf("%18.0f %22.2f %22.0f\n", p.batches_per_sec, p.cpu_per_batch_us,
                p.batches_per_vcpu);
  }

  // Fit the piecewise-linear sub-model (CPU seconds per batch vs rate) the
  // billing layer consumes — the curve of Fig 5.
  std::vector<billing::PiecewiseLinear::Point> samples;
  for (const auto& p : points) {
    samples.push_back({p.batches_per_sec, p.cpu_per_batch_us / 1e6});
  }
  billing::PiecewiseLinear fit = billing::PiecewiseLinear::Fit(samples, 4);
  std::printf("\nfitted piecewise-linear write-batch sub-model (rate -> s/batch):\n");
  for (const auto& knot : fit.points()) {
    std::printf("  %10.0f batches/s -> %8.2f us/batch\n", knot.x, knot.y * 1e6);
  }
  const double low_rate_cost = fit.Eval(500);
  const double high_rate_cost = fit.Eval(80000);
  std::printf("\nshape check: cost(500/s)=%.2fus vs cost(80K/s)=%.2fus — "
              "%s (paper: higher batch rates are more CPU-efficient)\n",
              low_rate_cost * 1e6, high_rate_cost * 1e6,
              low_rate_cost > high_rate_cost ? "DECREASING ✓" : "NOT DECREASING ✗");
  return 0;
}
